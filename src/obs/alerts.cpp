#include "obs/alerts.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/tsdb.hpp"
#include "obs/tsdb_query.hpp"
#include "util/error.hpp"

namespace failmine::obs {

namespace {

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

bool compare(double value, AlertOp op, double threshold) {
  switch (op) {
    case AlertOp::kGt: return value > threshold;
    case AlertOp::kGe: return value >= threshold;
    case AlertOp::kLt: return value < threshold;
    case AlertOp::kLe: return value <= threshold;
  }
  return false;
}

Gauge& firing_gauge() {
  static Gauge& g = metrics().gauge("obs.alerts.firing");
  return g;
}
Counter& evaluations_counter() {
  static Counter& c = metrics().counter("obs.alerts.evaluations");
  return c;
}
Counter& transitions_counter() {
  static Counter& c = metrics().counter("obs.alerts.transitions");
  return c;
}

/// Series the rule's metric selector matches in the current sample —
/// the rule's label groups this round. A blockless metric keeps the
/// legacy full-name-glob semantics (a plain name matches only itself).
std::vector<std::string> discover_groups(const AlertRule& rule,
                                         const MetricsSample& sample) {
  TsdbSelector sel;
  try {
    sel = parse_tsdb_selector(rule.metric);
  } catch (const failmine::ParseError&) {
    return {};  // malformed selector: fall through to the no-data group
  }
  const auto matches = [&](const std::string& name) {
    if (sel.has_block) return tsdb_selector_matches(sel, name);
    return tsdb_glob_match(rule.metric, name);
  };
  std::vector<std::string> out;
  switch (rule.fn) {
    case AlertFn::kValue:
      for (const auto& [name, value] : sample.counters)
        if (matches(name)) out.push_back(name);
      for (const auto& [name, value] : sample.gauges)
        if (matches(name)) out.push_back(name);
      break;
    case AlertFn::kRate:
      for (const auto& [name, value] : sample.counters)
        if (matches(name)) out.push_back(name);
      break;
    case AlertFn::kP50:
    case AlertFn::kP90:
    case AlertFn::kP99:
      for (const auto& [name, hist] : sample.histograms)
        if (matches(name)) out.push_back(name);
      break;
  }
  return out;
}

}  // namespace

std::string_view alert_fn_name(AlertFn fn) {
  switch (fn) {
    case AlertFn::kValue: return "value";
    case AlertFn::kRate: return "rate";
    case AlertFn::kP50: return "p50";
    case AlertFn::kP90: return "p90";
    case AlertFn::kP99: return "p99";
  }
  return "?";
}

std::string_view alert_op_name(AlertOp op) {
  switch (op) {
    case AlertOp::kGt: return ">";
    case AlertOp::kGe: return ">=";
    case AlertOp::kLt: return "<";
    case AlertOp::kLe: return "<=";
  }
  return "?";
}

std::string_view alert_state_name(AlertState state) {
  switch (state) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
    case AlertState::kResolved: return "resolved";
  }
  return "?";
}

std::string AlertRule::expression() const {
  std::string out(alert_fn_name(fn));
  out += '(';
  out += metric;
  if (window_ms > 0) {
    char wbuf[32];
    if (window_ms % 1000 == 0) {
      std::snprintf(wbuf, sizeof(wbuf), "[%llds]",
                    static_cast<long long>(window_ms / 1000));
    } else {
      std::snprintf(wbuf, sizeof(wbuf), "[%lldms]",
                    static_cast<long long>(window_ms));
    }
    out += wbuf;
  }
  out += ") ";
  out += alert_op_name(op);
  out += ' ';
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", threshold);
  out += buf;
  if (for_ms > 0) {
    std::snprintf(buf, sizeof(buf), " for %gs",
                  static_cast<double>(for_ms) / 1000.0);
    out += buf;
  }
  return out;
}

std::vector<AlertRule> parse_alert_rules(std::string_view text) {
  std::vector<AlertRule> rules;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  const auto fail = [&](const std::string& why) {
    throw failmine::ParseError("alert rule line " + std::to_string(line_no) +
                               ": " + why);
  };
  while (pos <= text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }

    AlertRule rule;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) fail("missing ':' after rule name");
    rule.name = std::string(trim(line.substr(0, colon)));
    if (rule.name.empty()) fail("empty rule name");
    std::string_view rest = trim(line.substr(colon + 1));

    const std::size_t open = rest.find('(');
    const std::size_t close = rest.find(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open)
      fail("expected fn(metric)");
    const std::string_view fn = trim(rest.substr(0, open));
    if (fn == "value") rule.fn = AlertFn::kValue;
    else if (fn == "rate") rule.fn = AlertFn::kRate;
    else if (fn == "p50") rule.fn = AlertFn::kP50;
    else if (fn == "p90") rule.fn = AlertFn::kP90;
    else if (fn == "p99") rule.fn = AlertFn::kP99;
    else fail("unknown fn '" + std::string(fn) +
              "' (value|rate|p50|p90|p99)");
    std::string_view metric = trim(rest.substr(open + 1, close - open - 1));
    if (!metric.empty() && metric.back() == ']') {
      const std::size_t bracket = metric.rfind('[');
      if (bracket == std::string_view::npos) fail("unbalanced ']' in metric");
      const std::string spec(
          trim(metric.substr(bracket + 1, metric.size() - bracket - 2)));
      std::size_t wparsed = 0;
      double wnum = 0.0;
      try {
        wnum = std::stod(spec, &wparsed);
      } catch (const std::exception&) {
        fail("unparseable window '" + spec + "'");
      }
      const std::string_view wunit = trim(std::string_view(spec).substr(wparsed));
      if (wunit == "s" || wunit.empty())
        rule.window_ms = static_cast<std::int64_t>(wnum * 1000.0);
      else if (wunit == "ms")
        rule.window_ms = static_cast<std::int64_t>(wnum);
      else if (wunit == "m")
        rule.window_ms = static_cast<std::int64_t>(wnum * 60'000.0);
      else
        fail("unknown window unit '" + std::string(wunit) + "' (ms|s|m)");
      if (rule.window_ms <= 0) fail("window must be positive");
      metric = trim(metric.substr(0, bracket));
    }
    rule.metric = std::string(metric);
    if (rule.metric.empty()) fail("empty metric name");
    rest = trim(rest.substr(close + 1));

    if (rest.rfind(">=", 0) == 0) { rule.op = AlertOp::kGe; rest = trim(rest.substr(2)); }
    else if (rest.rfind("<=", 0) == 0) { rule.op = AlertOp::kLe; rest = trim(rest.substr(2)); }
    else if (rest.rfind(">", 0) == 0) { rule.op = AlertOp::kGt; rest = trim(rest.substr(1)); }
    else if (rest.rfind("<", 0) == 0) { rule.op = AlertOp::kLt; rest = trim(rest.substr(1)); }
    else fail("expected comparison (> >= < <=)");

    std::size_t parsed = 0;
    try {
      rule.threshold = std::stod(std::string(rest), &parsed);
    } catch (const std::exception&) {
      fail("unparseable threshold");
    }
    rest = trim(rest.substr(parsed));

    if (!rest.empty()) {
      if (rest.rfind("for", 0) != 0) fail("trailing garbage '" +
                                          std::string(rest) + "'");
      rest = trim(rest.substr(3));
      double duration = 0.0;
      try {
        duration = std::stod(std::string(rest), &parsed);
      } catch (const std::exception&) {
        fail("unparseable 'for' duration");
      }
      const std::string_view unit = trim(rest.substr(parsed));
      if (unit == "s" || unit.empty())
        rule.for_ms = static_cast<std::int64_t>(duration * 1000.0);
      else if (unit == "ms")
        rule.for_ms = static_cast<std::int64_t>(duration);
      else
        fail("unknown duration unit '" + std::string(unit) + "' (s|ms)");
      if (rule.for_ms < 0) fail("'for' duration must be non-negative");
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

std::vector<AlertRule> load_alert_rules_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw failmine::ObsError("cannot open alert rules file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_alert_rules(ss.str());
}

std::vector<AlertRule> default_alert_rules() {
  // Built-in SLOs every stream run starts from: any drop burn is a
  // breach under the blocking policy, a stalled shard mirrors the
  // watchdog into the alert surface, and the shard-apply p99 guards
  // the per-batch latency budget.
  return parse_alert_rules(
      "stream-drops: rate(stream.records_dropped) > 0\n"
      "stream-shard-stalled: value(stream.stalled_shards) > 0\n"
      "stream-apply-p99: p99(stream.shard0.apply_us) > 100000 for 5s\n");
}

AlertEngine::AlertEngine(MetricsRegistry* registry) : registry_(registry) {}

AlertEngine::~AlertEngine() { stop(); }

void AlertEngine::set_rules(std::vector<AlertRule> rules) {
  const std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
  rules_.reserve(rules.size());
  for (AlertRule& rule : rules) {
    RuleState state;
    state.rule = std::move(rule);
    rules_.push_back(std::move(state));
  }
  firing_.store(0, std::memory_order_relaxed);
  firing_gauge().set(0.0);
}

void AlertEngine::add_rule(AlertRule rule) {
  const std::lock_guard<std::mutex> lock(mutex_);
  RuleState state;
  state.rule = std::move(rule);
  rules_.push_back(std::move(state));
}

std::size_t AlertEngine::rule_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rules_.size();
}

void AlertEngine::start(std::int64_t poll_ms) {
  if (poll_ms <= 0)
    throw failmine::DomainError("alert poll interval must be positive");
  if (running_.load(std::memory_order_relaxed)) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = false;
  }
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this, poll_ms] { loop(poll_ms); });
}

void AlertEngine::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_relaxed);
}

bool AlertEngine::running() const {
  return running_.load(std::memory_order_relaxed);
}

void AlertEngine::loop(std::int64_t poll_ms) {
  for (;;) {
    evaluate_now();
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_cv_.wait_for(lock, std::chrono::milliseconds(poll_ms),
                          [this] { return stop_; }))
      return;
  }
}

void AlertEngine::set_history(TsdbStore* history) {
  const std::lock_guard<std::mutex> lock(mutex_);
  history_ = history;
}

std::optional<double> AlertEngine::extract(const AlertRule& rule,
                                           const std::string& series,
                                           GroupState& group,
                                           const MetricsSample& sample,
                                           std::int64_t now_ms) const {
  // The synthetic no-data group ("") falls back to the rule's metric
  // spelling, so a plain-name rule whose instrument appears later
  // behaves exactly as before.
  const std::string& metric = series.empty() ? rule.metric : series;
  // With stored history attached, windowed rules read it exclusively —
  // an absent series means the metric never existed, the same "no
  // data" verdict the registry lookup would give.
  const bool history = history_ != nullptr && history_->has_data();
  const std::int64_t window =
      rule.window_ms > 0 ? rule.window_ms : kDefaultAlertWindowMs;
  switch (rule.fn) {
    case AlertFn::kValue: {
      for (const auto& [name, value] : sample.counters)
        if (name == metric) return static_cast<double>(value);
      for (const auto& [name, value] : sample.gauges)
        if (name == metric) return value;
      return std::nullopt;
    }
    case AlertFn::kRate: {
      if (history) {
        const std::int64_t t = history_->latest_ms();
        const auto inc = history_->increase_over(metric, t, window);
        if (!inc.has_value() || inc->covered_ms <= 0) return std::nullopt;
        return std::max(
            0.0, inc->increase /
                     (static_cast<double>(inc->covered_ms) / 1000.0));
      }
      for (const auto& [name, value] : sample.counters) {
        if (name != metric) continue;
        const double current = static_cast<double>(value);
        if (!group.has_prev || now_ms <= group.prev_ms) {
          group.has_prev = true;
          group.prev_counter = current;
          group.prev_ms = now_ms;
          return std::nullopt;  // no baseline yet
        }
        const double per_second =
            (current - group.prev_counter) /
            (static_cast<double>(now_ms - group.prev_ms) / 1000.0);
        group.prev_counter = current;
        group.prev_ms = now_ms;
        return std::max(0.0, per_second);
      }
      return std::nullopt;
    }
    case AlertFn::kP50:
    case AlertFn::kP90:
    case AlertFn::kP99: {
      const double q = rule.fn == AlertFn::kP50   ? 0.50
                       : rule.fn == AlertFn::kP90 ? 0.90
                                                  : 0.99;
      if (history) {
        // Windowed bucket deltas: abstains (nullopt) when the window
        // saw no observations, exactly like the empty-histogram case.
        return history_->windowed_quantile(metric, q, history_->latest_ms(),
                                           window);
      }
      for (const auto& [name, hist] : sample.histograms)
        if (name == metric) {
          if (hist.count == 0) return std::nullopt;  // no data, no verdict
          return histogram_quantile(hist, q);
        }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

void AlertEngine::evaluate_locked(std::int64_t now_ms) {
  const MetricsSample sample =
      (registry_ != nullptr ? *registry_ : metrics()).sample();
  std::size_t firing_count = 0;
  for (RuleState& rs : rules_) {
    // This round's label groups: freshly matched series plus every
    // group seen before (registry instruments never disappear, so a
    // breached-then-quiet twin keeps reporting its resolved state).
    std::vector<std::string> series = discover_groups(rs.rule, sample);
    for (const auto& [name, group] : rs.groups) {
      if (name.empty()) continue;
      if (std::find(series.begin(), series.end(), name) == series.end())
        series.push_back(name);
    }
    if (series.empty()) {
      series.push_back("");  // synthetic no-data group
    } else {
      rs.groups.erase("");  // real matches retire the synthetic group
    }

    for (const std::string& name : series) {
      const auto [it, inserted] = rs.groups.try_emplace(name);
      GroupState& g = it->second;
      if (inserted) g.state_since_ms = now_ms;
      const std::optional<double> value =
          extract(rs.rule, name, g, sample, now_ms);
      g.has_value = value.has_value();
      if (value) g.last_value = *value;
      const bool breach =
          value && compare(*value, rs.rule.op, rs.rule.threshold);

      AlertState next = g.state;
      switch (g.state) {
        case AlertState::kInactive:
        case AlertState::kResolved:
          if (breach) {
            g.pending_since_ms = now_ms;
            next = rs.rule.for_ms == 0 ? AlertState::kFiring
                                       : AlertState::kPending;
          }
          break;
        case AlertState::kPending:
          if (!breach)
            next = AlertState::kInactive;
          else if (now_ms - g.pending_since_ms >= rs.rule.for_ms)
            next = AlertState::kFiring;
          break;
        case AlertState::kFiring:
          if (!breach) next = AlertState::kResolved;
          break;
      }
      if (next != g.state) {
        g.state = next;
        g.state_since_ms = now_ms;
        transitions_counter().add();
        if (next == AlertState::kFiring)
          logger().warn("obs.alert_firing",
                        {Field("rule", rs.rule.name),
                         Field("series", name.empty() ? rs.rule.metric : name),
                         Field("value", g.last_value),
                         Field("threshold", rs.rule.threshold)});
        else if (next == AlertState::kResolved)
          logger().info("obs.alert_resolved",
                        {Field("rule", rs.rule.name),
                         Field("series", name.empty() ? rs.rule.metric : name)});
      }
      if (g.state == AlertState::kFiring) ++firing_count;
    }
  }
  firing_.store(firing_count, std::memory_order_relaxed);
  firing_gauge().set(static_cast<double>(firing_count));
  evaluations_counter().add();
}

void AlertEngine::evaluate_now() {
  const std::lock_guard<std::mutex> lock(mutex_);
  evaluate_locked(steady_now_ms());
}

std::vector<AlertStatus> AlertEngine::status() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::int64_t now_ms = steady_now_ms();
  std::vector<AlertStatus> out;
  out.reserve(rules_.size());
  for (const RuleState& rs : rules_) {
    if (rs.groups.empty()) {
      // Not yet evaluated: report the rule once, inactive, no data.
      AlertStatus status;
      status.rule = rs.rule;
      status.series = rs.rule.metric;
      out.push_back(std::move(status));
      continue;
    }
    for (const auto& [name, g] : rs.groups) {
      AlertStatus status;
      status.rule = rs.rule;
      status.series = name.empty() ? rs.rule.metric : name;
      status.state = g.state;
      status.has_value = g.has_value;
      status.last_value = g.last_value;
      status.since_ms = std::max<std::int64_t>(0, now_ms - g.state_since_ms);
      out.push_back(std::move(status));
    }
  }
  return out;
}

std::string AlertEngine::to_json() const {
  const std::vector<AlertStatus> statuses = status();
  std::string out = "{\"firing\":";
  out += std::to_string(firing());
  out += ",\"rules\":[";
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    const AlertStatus& s = statuses[i];
    if (i > 0) out += ',';
    out += "{\"name\":";
    append_json_string(out, s.rule.name);
    out += ",\"expr\":";
    append_json_string(out, s.rule.expression());
    out += ",\"series\":";
    append_json_string(out, s.series);
    out += ",\"state\":";
    append_json_string(out, std::string(alert_state_name(s.state)));
    out += ",\"value\":";
    out += s.has_value ? json_number(s.last_value) : "null";
    out += ",\"threshold\":";
    out += json_number(s.rule.threshold);
    out += ",\"for_ms\":";
    out += std::to_string(s.rule.for_ms);
    out += ",\"since_ms\":";
    out += std::to_string(s.since_ms);
    out += '}';
  }
  out += "]}\n";
  return out;
}

AlertEngine& alerts() {
  // Leaked intentionally (see obs::logger()).
  static AlertEngine* instance = new AlertEngine();
  return *instance;
}

}  // namespace failmine::obs
