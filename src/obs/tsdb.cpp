// failmine/obs/tsdb.cpp

#include "tsdb.hpp"

#include <pthread.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "json.hpp"
#include "labels.hpp"

namespace failmine::obs {

namespace {

constexpr std::size_t kPayloadBytes = 256;
constexpr std::uint32_t kPayloadBits = kPayloadBytes * 8;

std::int64_t wall_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::int64_t floor_bucket(std::int64_t t, std::int64_t res) {
  std::int64_t q = t / res;
  if (t % res != 0 && (t < 0) != (res < 0)) --q;
  return q * res;
}

/// Bucket series spelling for a scraped histogram: `le` always leads
/// the block (so prefix scans on `family.bucket{le="` find every label
/// variant), the instrument's own labels follow.
std::string bucket_series_name(const ParsedMetricName& parsed,
                               const std::string& le) {
  std::string out = parsed.family + ".bucket{le=\"" + le + "\"";
  for (const MetricLabel& label : parsed.labels)
    out += "," + label.key + "=\"" + escape_label_value(label.value) + "\"";
  out.push_back('}');
  return out;
}

std::string bucket_series_name(const ParsedMetricName& parsed, double bound) {
  char le[32];
  std::snprintf(le, sizeof(le), "%g", bound);
  return bucket_series_name(parsed, std::string(le));
}

}  // namespace

// ---------------------------------------------------------------------------
// GorillaChunk (plain-byte reference codec)
// ---------------------------------------------------------------------------

void GorillaChunk::append(std::int64_t t_ms, double value) {
  auto put = [this](bool b) {
    if ((bits_ & 7) == 0) bytes_.push_back(0);
    if (b) bytes_[bits_ >> 3] |= static_cast<std::uint8_t>(1u << (7 - (bits_ & 7)));
    ++bits_;
  };
  gorilla_encode(state_, t_ms, std::bit_cast<std::uint64_t>(value), put);
}

std::vector<TsdbPoint> GorillaChunk::decode() const {
  std::vector<TsdbPoint> out;
  out.reserve(state_.count);
  GorillaState st;
  std::uint64_t pos = 0;
  auto get = [&]() {
    const bool b = pos < bits_ &&
                   ((bytes_[pos >> 3] >> (7 - (pos & 7))) & 1u) != 0;
    ++pos;
    return b;
  };
  for (std::uint32_t i = 0; i < state_.count; ++i) {
    std::int64_t t = 0;
    std::uint64_t vb = 0;
    gorilla_decode(st, get, t, vb);
    out.push_back({t, std::bit_cast<double>(vb)});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pure range helpers
// ---------------------------------------------------------------------------

std::optional<double> tsdb_value_at(const std::vector<TsdbPoint>& points,
                                    std::int64_t t_ms,
                                    std::int64_t staleness_ms) {
  auto it = std::upper_bound(
      points.begin(), points.end(), t_ms,
      [](std::int64_t t, const TsdbPoint& p) { return t < p.t_ms; });
  if (it == points.begin()) return std::nullopt;
  const TsdbPoint& p = *(it - 1);
  if (staleness_ms > 0 && t_ms - p.t_ms > staleness_ms) return std::nullopt;
  return p.value;
}

std::optional<TsdbIncrease> tsdb_increase(const std::vector<TsdbPoint>& points,
                                          std::int64_t t_ms,
                                          std::int64_t window_ms) {
  const std::int64_t start = t_ms - window_ms;
  auto after = [&](std::int64_t t) {
    return static_cast<std::size_t>(
        std::upper_bound(points.begin(), points.end(), t,
                         [](std::int64_t x, const TsdbPoint& p) {
                           return x < p.t_ms;
                         }) -
        points.begin());
  };
  const std::size_t first_in = after(start);  // first index with t > start
  const std::size_t end = after(t_ms);        // first index with t > t_ms
  if (end == 0) return std::nullopt;          // nothing at or before t
  if (end <= first_in) {
    // No samples inside the window. With a baseline the series is known
    // flat through it; without one there is nothing to say.
    if (first_in == 0) return std::nullopt;
    return TsdbIncrease{0.0, window_ms};
  }
  std::size_t i0 = 0;
  std::int64_t covered = 0;
  if (first_in > 0) {
    i0 = first_in - 1;  // baseline sample at or before the window start
    covered = window_ms;
  } else {
    i0 = first_in;
    covered = t_ms - points[i0].t_ms;
  }
  double inc = 0.0;
  double prev = points[i0].value;
  for (std::size_t i = i0 + 1; i < end; ++i) {
    const double v = points[i].value;
    inc += v >= prev ? v - prev : v;  // drop = counter reset, restart at v
    prev = v;
  }
  return TsdbIncrease{inc, covered};
}

// ---------------------------------------------------------------------------
// Series internals
// ---------------------------------------------------------------------------

struct TsdbStore::Series {
  /// Reader-visible chunk: every field a racing reader touches is an
  /// atomic (payload included), so a torn read is impossible at the
  /// byte level; the per-series seqlock generation makes the multi-word
  /// copy consistent.
  struct Chunk {
    std::atomic<std::int64_t> t_first{0};
    std::atomic<std::int64_t> t_last{0};
    std::atomic<std::uint32_t> count{0};
    std::atomic<std::uint32_t> bits{0};
    std::array<std::atomic<std::uint8_t>, kPayloadBytes> payload{};
    GorillaState enc;  // writer-only
  };

  struct Ring {
    explicit Ring(std::size_t n) : chunks(n) {}
    std::vector<Chunk> chunks;  // sized once, never reallocated
    std::atomic<std::uint64_t> head{0};  // logical index of the open chunk
  };

  struct DsState {
    std::int64_t bucket = std::numeric_limits<std::int64_t>::min();
    std::int64_t last_t = 0;
    std::uint64_t last_bits = 0;
    bool any = false;
  };

  struct ChunkCopy {
    std::int64_t t_first = 0;
    std::int64_t t_last = 0;
    std::uint32_t count = 0;
    std::uint32_t bits = 0;
    std::array<std::uint8_t, kPayloadBytes> payload;
  };

  Series(std::string series_name, bool is_counter, const TsdbConfig& cfg)
      : name(std::move(series_name)),
        counter(is_counter),
        raw(cfg.raw_chunks),
        mid(cfg.mid_chunks),
        coarse(cfg.coarse_chunks),
        mid_res(cfg.mid_resolution_ms),
        coarse_res(cfg.coarse_resolution_ms) {}

  // -- writer side (serialized by the store's scrape mutex) -----------------

  /// Appends into a ring, sealing (and recycling the oldest chunk of)
  /// the ring when the open chunk cannot fit a worst-case sample.
  /// Returns the payload bits added; `resident_delta_bits` additionally
  /// accounts bits evicted by recycling.
  static std::uint32_t ring_append(Ring& r, std::int64_t t,
                                   std::uint64_t vbits,
                                   std::int64_t& resident_delta_bits) {
    std::uint64_t head = r.head.load(std::memory_order_relaxed);
    Chunk* c = &r.chunks[head % r.chunks.size()];
    if (c->count.load(std::memory_order_relaxed) > 0 &&
        c->bits.load(std::memory_order_relaxed) + kGorillaMaxSampleBits >
            kPayloadBits) {
      ++head;
      r.head.store(head, std::memory_order_relaxed);
      c = &r.chunks[head % r.chunks.size()];
      const std::uint32_t old_bits = c->bits.load(std::memory_order_relaxed);
      resident_delta_bits -= old_bits;
      for (std::size_t i = 0; i < (old_bits + 7u) / 8u; ++i) {
        c->payload[i].store(0, std::memory_order_relaxed);
      }
      c->count.store(0, std::memory_order_relaxed);
      c->bits.store(0, std::memory_order_relaxed);
      c->t_first.store(0, std::memory_order_relaxed);
      c->t_last.store(0, std::memory_order_relaxed);
      c->enc = GorillaState{};
    }
    std::uint32_t bits = c->bits.load(std::memory_order_relaxed);
    const std::uint32_t before = bits;
    auto put = [&](bool b) {
      if (b) {
        auto& byte = c->payload[bits >> 3];
        byte.store(static_cast<std::uint8_t>(
                       byte.load(std::memory_order_relaxed) |
                       (1u << (7 - (bits & 7)))),
                   std::memory_order_relaxed);
      }
      ++bits;
    };
    const bool first = c->enc.count == 0;
    gorilla_encode(c->enc, t, vbits, put);
    c->bits.store(bits, std::memory_order_relaxed);
    if (first) c->t_first.store(t, std::memory_order_relaxed);
    c->count.store(c->enc.count, std::memory_order_relaxed);
    c->t_last.store(t, std::memory_order_relaxed);
    resident_delta_bits += bits - before;
    return bits - before;
  }

  void ds_roll(Ring& r, DsState& st, std::int64_t res, std::int64_t t,
               std::uint64_t vbits, std::int64_t& resident_delta_bits) {
    const std::int64_t b = floor_bucket(t, res);
    if (st.any && b != st.bucket) {
      ring_append(r, st.last_t, st.last_bits, resident_delta_bits);
    }
    st.bucket = b;
    st.any = true;
    st.last_t = t;
    st.last_bits = vbits;
  }

  /// Single-writer append. Returns false (dropping the sample) when the
  /// timestamp does not advance.
  bool append(std::int64_t t, double value, std::int64_t& resident_delta_bits,
              std::uint32_t& raw_bits_added) {
    if (t <= last_raw_t) return false;
    const std::uint64_t vbits = std::bit_cast<std::uint64_t>(value);
    gen.fetch_add(1, std::memory_order_acquire);  // odd: write in flight
    raw_bits_added = ring_append(raw, t, vbits, resident_delta_bits);
    ds_roll(mid, mid_state, mid_res, t, vbits, resident_delta_bits);
    ds_roll(coarse, coarse_state, coarse_res, t, vbits, resident_delta_bits);
    gen.fetch_add(1, std::memory_order_release);  // even: quiescent
    last_raw_t = t;
    if (first_t.load(std::memory_order_relaxed) == 0) {
      first_t.store(t, std::memory_order_relaxed);
    }
    last_t.store(t, std::memory_order_relaxed);
    samples.fetch_add(1, std::memory_order_relaxed);
    resident_bits.fetch_add(
        static_cast<std::uint64_t>(resident_delta_bits),
        std::memory_order_relaxed);  // delta may be "negative" (wraps back)
    raw_bits_written.fetch_add(raw_bits_added, std::memory_order_relaxed);
    return true;
  }

  // -- reader side ----------------------------------------------------------

  static void copy_ring(const Ring& r, std::vector<ChunkCopy>& out) {
    out.clear();
    const std::uint64_t head = r.head.load(std::memory_order_relaxed);
    const std::uint64_t n = r.chunks.size();
    const std::uint64_t lo = head + 1 >= n ? head + 1 - n : 0;
    for (std::uint64_t i = lo; i <= head; ++i) {
      const Chunk& c = r.chunks[i % n];
      const std::uint32_t cnt = c.count.load(std::memory_order_relaxed);
      if (cnt == 0) continue;
      ChunkCopy cc;
      cc.t_first = c.t_first.load(std::memory_order_relaxed);
      cc.t_last = c.t_last.load(std::memory_order_relaxed);
      cc.count = cnt;
      cc.bits = std::min(c.bits.load(std::memory_order_relaxed), kPayloadBits);
      for (std::size_t b = 0; b < (cc.bits + 7u) / 8u; ++b) {
        cc.payload[b] = c.payload[b].load(std::memory_order_relaxed);
      }
      out.push_back(cc);
    }
  }

  void snapshot_rings(std::vector<ChunkCopy>& raw_c,
                      std::vector<ChunkCopy>& mid_c,
                      std::vector<ChunkCopy>& coarse_c) const {
    for (int attempt = 0; attempt < 4096; ++attempt) {
      const std::uint64_t g1 = gen.load(std::memory_order_acquire);
      if (g1 & 1) {
        std::this_thread::yield();
        continue;
      }
      copy_ring(raw, raw_c);
      copy_ring(mid, mid_c);
      copy_ring(coarse, coarse_c);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (gen.load(std::memory_order_relaxed) == g1) return;
    }
    // Writer livelock cannot happen at scrape rates; if we ever fall
    // through, the bounds-checked decoder below still cannot misbehave.
  }

  static void decode_chunk(const ChunkCopy& c, std::vector<TsdbPoint>& out) {
    GorillaState st;
    std::uint32_t pos = 0;
    auto get = [&]() {
      const bool b = pos < c.bits &&
                     ((c.payload[pos >> 3] >> (7 - (pos & 7))) & 1u) != 0;
      ++pos;
      return b;
    };
    for (std::uint32_t i = 0; i < c.count && pos < c.bits; ++i) {
      std::int64_t t = 0;
      std::uint64_t vb = 0;
      gorilla_decode(st, get, t, vb);
      if (pos > c.bits) break;  // torn-copy guard; consistent copies never hit
      out.push_back({t, std::bit_cast<double>(vb)});
    }
  }

  std::vector<TsdbPoint> read(std::int64_t from, std::int64_t to) const {
    std::vector<ChunkCopy> raw_c, mid_c, coarse_c;
    snapshot_rings(raw_c, mid_c, coarse_c);
    std::vector<TsdbPoint> raw_p, mid_p, coarse_p;
    for (const auto& c : raw_c) decode_chunk(c, raw_p);
    for (const auto& c : mid_c) decode_chunk(c, mid_p);
    for (const auto& c : coarse_c) decode_chunk(c, coarse_p);
    constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
    const std::int64_t raw_start = raw_p.empty() ? kMax : raw_p.front().t_ms;
    const std::int64_t mid_start =
        std::min(raw_start, mid_p.empty() ? kMax : mid_p.front().t_ms);
    std::vector<TsdbPoint> out;
    out.reserve(raw_p.size() + mid_p.size() + coarse_p.size());
    for (const auto& p : coarse_p) {
      if (p.t_ms < mid_start && p.t_ms >= from && p.t_ms <= to) out.push_back(p);
    }
    for (const auto& p : mid_p) {
      if (p.t_ms < raw_start && p.t_ms >= from && p.t_ms <= to) out.push_back(p);
    }
    for (const auto& p : raw_p) {
      if (p.t_ms >= from && p.t_ms <= to) out.push_back(p);
    }
    return out;
  }

  std::string name;
  bool counter;
  std::atomic<std::uint64_t> gen{0};
  Ring raw, mid, coarse;
  std::int64_t mid_res, coarse_res;
  DsState mid_state, coarse_state;
  std::int64_t last_raw_t = std::numeric_limits<std::int64_t>::min();
  std::atomic<std::int64_t> first_t{0};
  std::atomic<std::int64_t> last_t{0};
  std::atomic<std::uint64_t> samples{0};
  std::atomic<std::uint64_t> resident_bits{0};
  std::atomic<std::uint64_t> raw_bits_written{0};
};

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

TsdbStore::TsdbStore(TsdbConfig config)
    : config_(config),
      registry_(config.registry != nullptr ? config.registry : &metrics()) {
  if (config_.scrape_interval_ms <= 0) config_.scrape_interval_ms = 1000;
  if (config_.raw_chunks == 0) config_.raw_chunks = 1;
  if (config_.mid_chunks == 0) config_.mid_chunks = 1;
  if (config_.coarse_chunks == 0) config_.coarse_chunks = 1;
  scrape_interval_ms_.store(config_.scrape_interval_ms,
                            std::memory_order_relaxed);
}

TsdbStore::~TsdbStore() {
  if (running()) stop();
}

void TsdbStore::start(std::int64_t interval_ms) {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  if (interval_ms > 0) config_.scrape_interval_ms = interval_ms;
  scrape_interval_ms_.store(config_.scrape_interval_ms,
                            std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(wake_mutex_);
    stop_requested_ = false;
  }
  scrape_once();
  scraper_ = std::thread([this] {
    (void)::pthread_setname_np(::pthread_self(), "fm.tsdb");
    const auto interval =
        std::chrono::milliseconds(config_.scrape_interval_ms);
    std::unique_lock<std::mutex> lk(wake_mutex_);
    while (!stop_requested_) {
      if (wake_.wait_for(lk, interval, [this] { return stop_requested_; })) {
        break;
      }
      lk.unlock();
      scrape_once();
      lk.lock();
    }
  });
}

void TsdbStore::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lk(wake_mutex_);
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (scraper_.joinable()) scraper_.join();
  scrape_once();  // capture the end state
}

void TsdbStore::scrape_once() { scrape_once(wall_ms()); }

void TsdbStore::scrape_once(std::int64_t unix_ms) {
  std::lock_guard<std::mutex> lock(scrape_mutex_);
  const MetricsSample s = registry_->sample();
  for (const auto& [name, v] : s.counters) {
    append_sample(name, true, unix_ms, static_cast<double>(v));
  }
  for (const auto& [name, v] : s.gauges) {
    append_sample(name, false, unix_ms, v);
  }
  for (const auto& [name, h] : s.histograms) {
    // A labeled histogram keeps its labels on every sub-series:
    // `family.count{twin="t3"}`, `family.bucket{le="10",twin="t3"}`.
    ParsedMetricName parsed;
    if (!parse_metric_name(name, parsed)) {
      parsed.family = name;
      parsed.labels.clear();
    }
    const std::string block = label_block(parsed.labels);
    append_sample(parsed.family + ".count" + block, true, unix_ms,
                  static_cast<double>(h.count));
    append_sample(parsed.family + ".sum" + block, true, unix_ms, h.sum);
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      append_sample(bucket_series_name(parsed, h.upper_bounds[i]), true,
                    unix_ms, static_cast<double>(h.buckets[i]));
    }
    append_sample(bucket_series_name(parsed, std::string("+Inf")), true,
                  unix_ms, static_cast<double>(h.buckets.back()));
  }
  if (first_ms_.load(std::memory_order_relaxed) == 0) {
    first_ms_.store(unix_ms, std::memory_order_release);
  }
  if (unix_ms > latest_ms_.load(std::memory_order_relaxed)) {
    latest_ms_.store(unix_ms, std::memory_order_release);
  }
  scrapes_.fetch_add(1, std::memory_order_relaxed);

  // Self-metrics land in the scraped registry, so the store's own cost
  // shows up as history on the next scrape.
  const TsdbStats st = stats();
  registry_->gauge("tsdb.series").set(static_cast<double>(st.series));
  registry_->gauge("tsdb.bytes").set(static_cast<double>(st.resident_bytes));
  Counter& samples_c = registry_->counter("tsdb.samples");
  if (st.samples > samples_c.value()) samples_c.add(st.samples - samples_c.value());
  Counter& dropped_c = registry_->counter("tsdb.dropped");
  if (st.dropped > dropped_c.value()) dropped_c.add(st.dropped - dropped_c.value());
  Counter& dropped_series_c = registry_->counter("tsdb.dropped_series");
  if (st.dropped_series > dropped_series_c.value())
    dropped_series_c.add(st.dropped_series - dropped_series_c.value());
}

void TsdbStore::append_sample(const std::string& name, bool counter,
                              std::int64_t t_ms, double value) {
  bool budget_dropped = false;
  Series* series = nullptr;
  {
    std::lock_guard<std::mutex> lock(series_mutex_);
    auto it = series_.find(name);
    if (it != series_.end()) {
      series = it->second.get();
    } else if (series_.size() >= config_.max_series) {
      budget_dropped = true;
    } else {
      // Per-family cardinality budget: all label sets (bucket spellings
      // included) of one family share a fixed series allowance.
      const std::string_view family =
          std::string_view(name).substr(0, name.find('{'));
      auto fit = family_counts_.find(family);
      const std::size_t in_family = fit == family_counts_.end() ? 0 : fit->second;
      if (config_.max_label_sets_per_family > 0 &&
          in_family >= config_.max_label_sets_per_family) {
        budget_dropped = true;
      } else {
        auto owned = std::make_unique<Series>(name, counter, config_);
        series = owned.get();
        series_.emplace(name, std::move(owned));
        if (fit == family_counts_.end()) {
          family_counts_.emplace(std::string(family), 1);
        } else {
          ++fit->second;
        }
      }
    }
  }
  if (budget_dropped) {
    dropped_total_.fetch_add(1, std::memory_order_relaxed);
    dropped_series_total_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::int64_t resident_delta = 0;
  std::uint32_t raw_bits = 0;
  if (series->append(t_ms, value, resident_delta, raw_bits)) {
    samples_total_.fetch_add(1, std::memory_order_relaxed);
    resident_bits_.fetch_add(static_cast<std::uint64_t>(resident_delta),
                             std::memory_order_relaxed);
    raw_bits_.fetch_add(raw_bits, std::memory_order_relaxed);
  } else {
    dropped_total_.fetch_add(1, std::memory_order_relaxed);
  }
}

TsdbStore::Series* TsdbStore::find_series(std::string_view name) const {
  std::lock_guard<std::mutex> lock(series_mutex_);
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : it->second.get();
}

std::vector<TsdbPoint> TsdbStore::read_series(std::string_view name,
                                              std::int64_t from_ms,
                                              std::int64_t to_ms) const {
  const Series* s = find_series(name);
  if (s == nullptr) return {};
  return s->read(from_ms, to_ms);
}

std::optional<double> TsdbStore::value_at(std::string_view name,
                                          std::int64_t t_ms,
                                          std::int64_t staleness_ms) const {
  if (staleness_ms <= 0) staleness_ms = 5 * scrape_interval_ms();
  const auto pts =
      read_series(name, t_ms - staleness_ms, t_ms);
  return tsdb_value_at(pts, t_ms, staleness_ms);
}

std::optional<TsdbIncrease> TsdbStore::increase_over(
    std::string_view name, std::int64_t t_ms, std::int64_t window_ms) const {
  const auto pts = read_series(
      name, std::numeric_limits<std::int64_t>::min(), t_ms);
  return tsdb_increase(pts, t_ms, window_ms);
}

std::optional<double> TsdbStore::windowed_quantile(std::string_view base,
                                                   double q, std::int64_t t_ms,
                                                   std::int64_t window_ms) const {
  ParsedMetricName want;
  if (!parse_metric_name(base, want)) return std::nullopt;
  const std::string prefix = want.family + ".bucket{le=\"";
  std::vector<std::pair<double, std::string>> finite;
  std::string inf_name;
  {
    std::lock_guard<std::mutex> lock(series_mutex_);
    for (auto it = series_.lower_bound(prefix);
         it != series_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      ParsedMetricName got;
      if (!parse_metric_name(it->first, got)) continue;
      const std::string* le = got.find("le");
      if (le == nullptr) continue;
      // The bucket must belong to this base: its labels minus `le` are
      // exactly the base's labels (a bare base selects only unlabeled
      // buckets, a labeled base only its own twin's).
      std::vector<MetricLabel> rest;
      for (const MetricLabel& label : got.labels)
        if (label.key != "le") rest.push_back(label);
      if (!same_labels(std::move(rest), want.labels)) continue;
      if (*le == "+Inf") {
        inf_name = it->first;
      } else {
        finite.emplace_back(std::strtod(le->c_str(), nullptr), it->first);
      }
    }
  }
  if (finite.empty() && inf_name.empty()) return std::nullopt;
  std::sort(finite.begin(), finite.end());
  HistogramSample sample;
  std::uint64_t total = 0;
  auto bucket_delta = [&](const std::string& name) -> std::uint64_t {
    const auto inc = increase_over(name, t_ms, window_ms);
    if (!inc.has_value() || inc->increase <= 0) return 0;
    return static_cast<std::uint64_t>(std::llround(inc->increase));
  };
  for (const auto& [bound, name] : finite) {
    sample.upper_bounds.push_back(bound);
    const std::uint64_t d = bucket_delta(name);
    sample.buckets.push_back(d);
    total += d;
  }
  const std::uint64_t overflow =
      inf_name.empty() ? 0 : bucket_delta(inf_name);
  sample.buckets.push_back(overflow);
  total += overflow;
  if (total == 0) return std::nullopt;
  sample.count = total;
  return histogram_quantile(sample, q);
}

std::vector<std::string> TsdbStore::series_names() const {
  std::lock_guard<std::mutex> lock(series_mutex_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

std::vector<TsdbSeriesInfo> TsdbStore::series_info() const {
  std::lock_guard<std::mutex> lock(series_mutex_);
  std::vector<TsdbSeriesInfo> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) {
    TsdbSeriesInfo info;
    info.name = name;
    info.counter = s->counter;
    info.samples = s->samples.load(std::memory_order_relaxed);
    info.resident_bytes =
        (s->resident_bits.load(std::memory_order_relaxed) + 7) / 8;
    info.first_ms = s->first_t.load(std::memory_order_relaxed);
    info.last_ms = s->last_t.load(std::memory_order_relaxed);
    out.push_back(std::move(info));
  }
  return out;
}

TsdbStats TsdbStore::stats() const {
  TsdbStats st;
  {
    std::lock_guard<std::mutex> lock(series_mutex_);
    st.series = series_.size();
  }
  st.samples = samples_total_.load(std::memory_order_relaxed);
  st.dropped = dropped_total_.load(std::memory_order_relaxed);
  st.dropped_series = dropped_series_total_.load(std::memory_order_relaxed);
  st.resident_bytes = (resident_bits_.load(std::memory_order_relaxed) + 7) / 8;
  st.raw_bytes_written = (raw_bits_.load(std::memory_order_relaxed) + 7) / 8;
  st.scrapes = scrapes_.load(std::memory_order_relaxed);
  st.first_ms = first_ms();
  st.latest_ms = latest_ms();
  st.scrape_interval_ms = scrape_interval_ms();
  return st;
}

std::string TsdbStore::stats_json() const {
  const TsdbStats st = stats();
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"series\":%zu,\"samples\":%" PRIu64 ",\"dropped\":%" PRIu64
                ",\"dropped_series\":%" PRIu64
                ",\"resident_bytes\":%" PRIu64 ",\"raw_bytes_written\":%" PRIu64
                ",\"scrapes\":%" PRIu64
                ",\"scrape_interval_ms\":%" PRId64 ",\"first_unix_ms\":%" PRId64
                ",\"latest_unix_ms\":%" PRId64 "}",
                st.series, st.samples, st.dropped, st.dropped_series,
                st.resident_bytes,
                st.raw_bytes_written, st.scrapes, st.scrape_interval_ms,
                st.first_ms, st.latest_ms);
  return buf;
}

TsdbStore& tsdb() {
  static TsdbStore* store = new TsdbStore();  // leaked like metrics()
  return *store;
}

}  // namespace failmine::obs
