// failmine/obs/trace.hpp
//
// Lightweight wall-time tracing for the analysis pipeline.
//
// A Span is an RAII timer; nesting is tracked per thread so the exporter
// can reconstruct the phase tree:
//
//   void interruption_analysis() {
//     FAILMINE_TRACE_SPAN("e08.mtti");
//     ...
//   }
//
// Finished spans accumulate in the global TraceCollector (bounded — once
// the capacity is reached further spans are counted as dropped rather
// than growing without limit under benchmark loops). Exports: a
// chrome-trace JSON document (load it at chrome://tracing or
// https://ui.perfetto.dev) and an aggregated text summary.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace failmine::obs {

/// One completed span.
struct SpanRecord {
  std::string name;
  std::uint64_t start_us = 0;     ///< since the collector's epoch
  std::uint64_t duration_us = 0;  ///< wall time
  std::uint32_t thread_id = 0;    ///< dense per-process thread index
  std::uint32_t depth = 0;        ///< nesting depth on its thread (0 = root)
};

/// Aggregate of all spans sharing a name (for the text summary).
struct SpanAggregate {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t total_us = 0;
  std::uint64_t max_us = 0;
};

class Span;

/// Thread-safe store of finished spans.
class TraceCollector {
 public:
  /// Called (outside the collector lock, on the finishing thread) for
  /// every completed span while tracing is enabled — even spans past the
  /// retention capacity, so a flight recorder keeps seeing activity
  /// after the collector is full. A plain function pointer, stored
  /// atomically, so installation needs no lock.
  using SpanHook = void (*)(const SpanRecord&);

  TraceCollector();

  void set_span_hook(SpanHook hook) {
    span_hook_.store(hook, std::memory_order_release);
  }
  SpanHook span_hook() const {
    return span_hook_.load(std::memory_order_acquire);
  }

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Caps the number of retained spans (default 1<<20). Spans finished
  /// beyond the cap are counted in dropped().
  void set_capacity(std::size_t capacity);

  std::vector<SpanRecord> records() const;
  std::size_t size() const;
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Per-name aggregates, sorted by total time descending.
  std::vector<SpanAggregate> aggregates() const;

  /// Chrome-trace "traceEvents" document (complete "X" events).
  std::string to_chrome_json() const;
  /// Writes to_chrome_json() to `path`; throws ObsError on failure.
  void write_chrome_json(const std::string& path) const;
  /// Human-readable per-phase table from aggregates().
  std::string summary_text() const;

  void clear();

 private:
  friend class Span;
  std::uint64_t now_us() const;
  void record(SpanRecord record);

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{true};
  std::atomic<SpanHook> span_hook_{nullptr};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> records_;
  std::size_t capacity_ = 1 << 20;
  std::atomic<std::uint64_t> dropped_{0};
};

/// The process-wide collector used by FAILMINE_TRACE_SPAN.
TraceCollector& tracer();

/// Fixed-depth stack of the calling thread's *active* span names,
/// maintained by Span and readable from a signal handler running on the
/// same thread — the sampling profiler (obs/profile.hpp) tags every
/// sample with it. `labels[i]` points at the live Span's name for depth
/// i; entries at or above `depth` are stale. Ordering discipline: a
/// pointer is published before `depth` is raised and `depth` is lowered
/// before the name dies (with signal fences in between), so the handler
/// never observes a dangling pointer. Spans nested deeper than kMaxDepth
/// are simply not labelled.
struct SpanLabelStack {
  static constexpr std::uint32_t kMaxDepth = 8;
  const char* labels[kMaxDepth];
  std::atomic<std::uint32_t> depth;
};

/// The calling thread's label stack. Constant-initialized TLS, so it is
/// safe to read from a signal handler even on a thread that never opened
/// a span.
const SpanLabelStack& this_thread_span_labels() noexcept;

/// RAII span recording into tracer(). Construction/destruction cost is
/// two steady_clock reads when tracing is enabled, nothing otherwise.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Wall time since construction (works even when tracing is disabled).
  std::uint64_t elapsed_us() const;

 private:
  std::string name_;
  std::uint64_t start_us_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
  bool label_pushed_ = false;  ///< this span occupies a SpanLabelStack slot
};

#define FAILMINE_OBS_CONCAT2(a, b) a##b
#define FAILMINE_OBS_CONCAT(a, b) FAILMINE_OBS_CONCAT2(a, b)
/// Times the enclosing scope as one span named `name`.
#define FAILMINE_TRACE_SPAN(name) \
  ::failmine::obs::Span FAILMINE_OBS_CONCAT(failmine_trace_span_, __LINE__)(name)

}  // namespace failmine::obs
