// failmine/obs/tsdb.hpp
//
// Embedded compressed time-series store over the metrics registry.
//
// A background scraper thread samples every counter, gauge and
// histogram in a MetricsRegistry at a fixed interval into per-series
// append-only chunks. Samples are Gorilla-compressed — delta-of-delta
// timestamps and XOR'd value bits — so a steady counter costs ~2 bits
// per sample and an active one ~3-4 bytes. Each series keeps three
// fixed-size chunk rings at raw / 10 s / 1 m resolution (downsampling
// keeps the last value per aligned bucket), bounding memory while
// retaining hours of coarse history behind seconds of raw detail.
//
// Readers never block the writer: every reader-visible chunk field is
// an atomic and each series carries a seqlock generation (odd while an
// append is in flight), mirroring Histogram::ExemplarSlot — a racing
// reader copies the chunk bytes, re-checks the generation and retries,
// so concurrent scrape + query is tear-free and TSan-clean.
//
// Typical use:
//
//   obs::tsdb().start(1000);             // scrape the global registry at 1 Hz
//   ...
//   auto pts = obs::tsdb().read_series("stream.records_in", t0, t1);
//   auto inc = obs::tsdb().increase_over("stream.records_in", t1, 60'000);
//
// The query layer on top (value/rate/increase/aggregation/quantiles,
// /query and /series HTTP handlers, sparkline trend reports) lives in
// obs/tsdb_query.hpp.

#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "metrics.hpp"

namespace failmine::obs {

// ---------------------------------------------------------------------------
// Gorilla codec
// ---------------------------------------------------------------------------

/// Incremental encoder/decoder state for one compressed sample stream.
/// The same struct drives both directions; feed it samples (encode) or
/// bits (decode) in order, never mixed.
struct GorillaState {
  std::uint32_t count = 0;
  std::int64_t prev_t = 0;
  std::int64_t prev_delta = 0;
  std::uint64_t prev_bits = 0;
  int prev_leading = -1;  ///< <0 = no reusable leading/trailing window yet
  int prev_trailing = 0;
};

namespace tsdb_detail {

inline std::uint64_t zigzag64(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag64(std::uint64_t z) {
  return static_cast<std::int64_t>(z >> 1) ^
         -static_cast<std::int64_t>(z & 1);
}

template <class PutBit>
void put_bits(PutBit& put, std::uint64_t v, int n) {
  for (int i = n - 1; i >= 0; --i) put(((v >> i) & 1u) != 0);
}

template <class GetBit>
std::uint64_t get_bits(GetBit& get, int n) {
  std::uint64_t v = 0;
  for (int i = 0; i < n; ++i) v = (v << 1) | (get() ? 1u : 0u);
  return v;
}

}  // namespace tsdb_detail

/// Upper bound on the bit cost of one encoded sample (timestamp control
/// '1111' + 64-bit delta-of-delta, value control '11' + 5 + 6 + 64
/// meaningful bits). Chunk writers seal when fewer bits remain.
inline constexpr std::uint32_t kGorillaMaxSampleBits = 4 + 64 + 2 + 5 + 6 + 64;

/// Encodes one (timestamp, raw value bits) sample. `put` is invoked once
/// per output bit, most-significant first. The first sample of a stream
/// is stored raw (64 + 64 bits); later samples use:
///
///   timestamps — delta-of-delta bucketed as
///     '0'                 dod == 0
///     '10'  + 9-bit zz    |zigzag(dod)| < 2^9
///     '110' + 14-bit zz   < 2^14
///     '1110'+ 20-bit zz   < 2^20
///     '1111'+ 64-bit zz   otherwise
///   values — XOR vs previous value bits
///     '0'                  identical
///     '10' + meaningful    fits the previous leading/trailing window
///     '11' + 5-bit leading + 6-bit (meaningful-1) + meaningful bits
template <class PutBit>
void gorilla_encode(GorillaState& st, std::int64_t t_ms,
                    std::uint64_t value_bits, PutBit&& put) {
  using tsdb_detail::put_bits;
  using tsdb_detail::zigzag64;
  if (st.count == 0) {
    put_bits(put, static_cast<std::uint64_t>(t_ms), 64);
    put_bits(put, value_bits, 64);
    st.prev_t = t_ms;
    st.prev_delta = 0;
    st.prev_bits = value_bits;
    st.count = 1;
    return;
  }
  const std::int64_t delta = t_ms - st.prev_t;
  const std::int64_t dod = delta - st.prev_delta;
  if (dod == 0) {
    put(false);
  } else {
    const std::uint64_t zz = zigzag64(dod);
    if (zz < (1ull << 9)) {
      put(true); put(false);
      put_bits(put, zz, 9);
    } else if (zz < (1ull << 14)) {
      put(true); put(true); put(false);
      put_bits(put, zz, 14);
    } else if (zz < (1ull << 20)) {
      put(true); put(true); put(true); put(false);
      put_bits(put, zz, 20);
    } else {
      put(true); put(true); put(true); put(true);
      put_bits(put, zz, 64);
    }
  }
  st.prev_delta = delta;
  st.prev_t = t_ms;

  const std::uint64_t x = value_bits ^ st.prev_bits;
  if (x == 0) {
    put(false);
  } else {
    put(true);
    int leading = std::countl_zero(x);
    const int trailing = std::countr_zero(x);
    if (leading > 31) leading = 31;  // 5-bit field
    if (st.prev_leading >= 0 && leading >= st.prev_leading &&
        trailing >= st.prev_trailing) {
      put(false);
      const int n = 64 - st.prev_leading - st.prev_trailing;
      put_bits(put, x >> st.prev_trailing, n);
    } else {
      put(true);
      const int n = 64 - leading - trailing;  // 1..64; stored as n-1
      put_bits(put, static_cast<std::uint64_t>(leading), 5);
      put_bits(put, static_cast<std::uint64_t>(n - 1), 6);
      put_bits(put, x >> trailing, n);
      st.prev_leading = leading;
      st.prev_trailing = trailing;
    }
  }
  st.prev_bits = value_bits;
  ++st.count;
}

/// Decodes the next sample from a stream encoded by gorilla_encode.
/// `get` is invoked once per input bit and must yield the bits in the
/// order they were put.
template <class GetBit>
void gorilla_decode(GorillaState& st, GetBit&& get, std::int64_t& t_ms,
                    std::uint64_t& value_bits) {
  using tsdb_detail::get_bits;
  using tsdb_detail::unzigzag64;
  if (st.count == 0) {
    t_ms = static_cast<std::int64_t>(get_bits(get, 64));
    value_bits = get_bits(get, 64);
    st.prev_t = t_ms;
    st.prev_delta = 0;
    st.prev_bits = value_bits;
    st.count = 1;
    return;
  }
  std::int64_t dod = 0;
  if (get()) {
    int width = 0;
    if (!get()) {
      width = 9;
    } else if (!get()) {
      width = 14;
    } else if (!get()) {
      width = 20;
    } else {
      width = 64;
    }
    dod = unzigzag64(get_bits(get, width));
  }
  st.prev_delta += dod;
  st.prev_t += st.prev_delta;
  t_ms = st.prev_t;

  if (get()) {
    if (!get()) {
      const int n = 64 - st.prev_leading - st.prev_trailing;
      const std::uint64_t x = get_bits(get, n) << st.prev_trailing;
      st.prev_bits ^= x;
    } else {
      const int leading = static_cast<int>(get_bits(get, 5));
      const int n = static_cast<int>(get_bits(get, 6)) + 1;
      const int trailing = 64 - leading - n;
      const std::uint64_t x = get_bits(get, n) << trailing;
      st.prev_leading = leading;
      st.prev_trailing = trailing;
      st.prev_bits ^= x;
    }
  }
  value_bits = st.prev_bits;
  ++st.count;
}

// ---------------------------------------------------------------------------
// Points and pure range helpers
// ---------------------------------------------------------------------------

/// One decoded sample.
struct TsdbPoint {
  std::int64_t t_ms = 0;
  double value = 0.0;
};

/// Plain-byte Gorilla chunk: the reference codec used by unit tests and
/// anywhere a single-threaded compressed buffer is handy. The store's
/// internal chunks use the same encode/decode templates over atomic
/// payload bytes.
class GorillaChunk {
 public:
  void append(std::int64_t t_ms, double value);
  std::uint32_t count() const { return state_.count; }
  std::uint64_t size_bits() const { return bits_; }
  std::size_t size_bytes() const { return bytes_.size(); }
  std::vector<TsdbPoint> decode() const;

 private:
  GorillaState state_;
  std::vector<std::uint8_t> bytes_;
  std::uint64_t bits_ = 0;
};

/// Last sample at or before `t`, if one exists within `staleness_ms` of
/// it (0 = unbounded lookback). `points` must be time-sorted.
std::optional<double> tsdb_value_at(const std::vector<TsdbPoint>& points,
                                    std::int64_t t_ms,
                                    std::int64_t staleness_ms = 0);

struct TsdbIncrease {
  double increase = 0.0;        ///< reset-aware counter growth over the window
  std::int64_t covered_ms = 0;  ///< portion of the window with data
};

/// Reset-aware counter increase over the window (t - window_ms, t]. The
/// baseline is the last sample at or before the window start, so tiled
/// windows telescope exactly: summing increase over consecutive windows
/// reproduces v(last) - v(first baseline) when the counter never
/// resets. A decrease between adjacent samples is treated as a counter
/// reset and contributes the post-reset value. Returns nullopt when the
/// window contains no sample and no baseline exists.
std::optional<TsdbIncrease> tsdb_increase(const std::vector<TsdbPoint>& points,
                                          std::int64_t t_ms,
                                          std::int64_t window_ms);

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

struct TsdbConfig {
  std::int64_t scrape_interval_ms = 1000;
  std::size_t raw_chunks = 16;    ///< 256-byte payload chunks per series
  std::size_t mid_chunks = 8;     ///< 10 s downsample ring
  std::size_t coarse_chunks = 8;  ///< 1 m downsample ring
  std::int64_t mid_resolution_ms = 10'000;
  std::int64_t coarse_resolution_ms = 60'000;
  std::size_t max_series = 8192;  ///< further series are counted as dropped
  /// Cardinality budget per metric family: at most this many distinct
  /// series (label sets, bucket spellings included) may share one family
  /// name. Keeps a hostile or runaway label dimension from evicting the
  /// rest of the store; rejected series are accounted in
  /// `dropped_series`. 0 disables the per-family budget.
  std::size_t max_label_sets_per_family = 64;
  MetricsRegistry* registry = nullptr;  ///< nullptr = the global metrics()
};

struct TsdbStats {
  std::size_t series = 0;
  std::uint64_t samples = 0;  ///< raw samples appended over the store's life
  std::uint64_t dropped = 0;  ///< series-budget and non-monotonic drops
  /// Samples rejected because a series budget (global max_series or the
  /// per-family label-cardinality budget) refused to create their
  /// series; a strict subset of `dropped`.
  std::uint64_t dropped_series = 0;
  std::uint64_t resident_bytes = 0;      ///< compressed bytes currently held
  std::uint64_t raw_bytes_written = 0;   ///< cumulative raw-ring payload bytes
  std::uint64_t scrapes = 0;
  std::int64_t first_ms = 0;   ///< timestamp of the first scrape (0 = none)
  std::int64_t latest_ms = 0;  ///< timestamp of the newest scrape
  std::int64_t scrape_interval_ms = 0;
};

/// Per-series descriptor for /series.
struct TsdbSeriesInfo {
  std::string name;
  bool counter = false;  ///< scraped from a Counter (or histogram count/sum)
  std::uint64_t samples = 0;
  std::uint64_t resident_bytes = 0;
  std::int64_t first_ms = 0;
  std::int64_t last_ms = 0;
};

class TsdbStore {
 public:
  explicit TsdbStore(TsdbConfig config = {});
  ~TsdbStore();

  TsdbStore(const TsdbStore&) = delete;
  TsdbStore& operator=(const TsdbStore&) = delete;

  /// Starts the background scraper (idempotent). `interval_ms`
  /// overrides the configured scrape interval when > 0.
  void start(std::int64_t interval_ms = 0);
  void stop();  ///< takes a final scrape, then joins the scraper thread
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// True once at least one scrape has landed — manually driven stores
  /// (tests, benches with virtual clocks) count as live.
  bool has_data() const { return latest_ms() > 0; }

  /// Samples every instrument in the registry once, at wall-clock now
  /// or at an explicit virtual timestamp. Scrapes are serialized; a
  /// timestamp at or before a series' newest sample is dropped.
  void scrape_once();
  void scrape_once(std::int64_t unix_ms);

  /// All samples of `name` in [from_ms, to_ms], merged across the
  /// raw / 10 s / 1 m rings (coarse points only before the span the
  /// finer ring still covers), time-sorted. Empty if unknown.
  std::vector<TsdbPoint> read_series(std::string_view name,
                                     std::int64_t from_ms,
                                     std::int64_t to_ms) const;

  /// tsdb_value_at over the stored series; staleness defaults to 5
  /// scrape intervals.
  std::optional<double> value_at(std::string_view name, std::int64_t t_ms,
                                 std::int64_t staleness_ms = 0) const;

  /// tsdb_increase over the stored series at time `t_ms`.
  std::optional<TsdbIncrease> increase_over(std::string_view name,
                                            std::int64_t t_ms,
                                            std::int64_t window_ms) const;

  /// Quantile from *windowed* bucket deltas: for every stored series
  /// `base.bucket{le="..."}` computes the increase over
  /// (t - window_ms, t], assembles a HistogramSample from the deltas
  /// and runs histogram_quantile on it. Label-aware: a labeled base
  /// (`family{twin="t3"}`) selects only the bucket series whose labels
  /// minus `le` match the base's, and a bare base only the unlabeled
  /// buckets. Returns nullopt when no bucket series exist or the window
  /// saw no observations — callers should abstain rather than alert
  /// on 0.
  std::optional<double> windowed_quantile(std::string_view base, double q,
                                          std::int64_t t_ms,
                                          std::int64_t window_ms) const;

  std::vector<std::string> series_names() const;
  std::vector<TsdbSeriesInfo> series_info() const;

  TsdbStats stats() const;
  /// Stats as a JSON object (the CLI splices this into the snapshot).
  std::string stats_json() const;

  std::int64_t first_ms() const {
    return first_ms_.load(std::memory_order_acquire);
  }
  std::int64_t latest_ms() const {
    return latest_ms_.load(std::memory_order_acquire);
  }
  std::int64_t scrape_interval_ms() const {
    return scrape_interval_ms_.load(std::memory_order_relaxed);
  }

 private:
  struct Series;

  Series* find_series(std::string_view name) const;
  void append_sample(const std::string& name, bool counter, std::int64_t t_ms,
                     double value);

  TsdbConfig config_;
  MetricsRegistry* registry_;

  mutable std::mutex series_mutex_;
  std::map<std::string, std::unique_ptr<Series>, std::less<>> series_;
  /// Distinct series per family name (the part before any `{`), guarded
  /// by series_mutex_ — backs the per-family cardinality budget.
  std::map<std::string, std::size_t, std::less<>> family_counts_;

  std::mutex scrape_mutex_;  ///< serializes manual and thread scrapes
  std::atomic<std::int64_t> first_ms_{0};
  std::atomic<std::int64_t> latest_ms_{0};
  std::atomic<std::int64_t> scrape_interval_ms_{0};
  std::atomic<std::uint64_t> samples_total_{0};
  std::atomic<std::uint64_t> dropped_total_{0};
  std::atomic<std::uint64_t> dropped_series_total_{0};
  std::atomic<std::uint64_t> resident_bits_{0};
  std::atomic<std::uint64_t> raw_bits_{0};
  std::atomic<std::uint64_t> scrapes_{0};

  std::atomic<bool> running_{false};
  std::thread scraper_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
};

/// The process-wide store (scrapes the global metrics() registry).
/// Never started implicitly: callers opt in via start(). Intentionally
/// leaked, like metrics(), so exit paths cannot race teardown.
TsdbStore& tsdb();

}  // namespace failmine::obs
