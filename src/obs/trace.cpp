#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "obs/json.hpp"
#include "obs/profile.hpp"
#include "util/error.hpp"

namespace failmine::obs {

namespace {

std::uint32_t this_thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

/// Per-thread nesting depth of live spans.
thread_local std::uint32_t tls_span_depth = 0;

/// Signal-handler-visible stack of active span names (see trace.hpp).
/// constinit guarantees static TLS with no initialization guard, which
/// is what makes reading it from the SIGPROF handler safe.
constinit thread_local SpanLabelStack tls_span_labels{{}, {0}};

}  // namespace

const SpanLabelStack& this_thread_span_labels() noexcept {
  return tls_span_labels;
}

TraceCollector::TraceCollector() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t TraceCollector::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceCollector::set_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
}

void TraceCollector::record(SpanRecord record) {
  if (const SpanHook hook = span_hook()) hook(record);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (records_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  records_.push_back(std::move(record));
}

std::vector<SpanRecord> TraceCollector::records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::size_t TraceCollector::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::vector<SpanAggregate> TraceCollector::aggregates() const {
  std::vector<SpanAggregate> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const SpanRecord& r : records_) {
      auto it = std::find_if(out.begin(), out.end(), [&](const SpanAggregate& a) {
        return a.name == r.name;
      });
      if (it == out.end()) {
        out.push_back({r.name, 0, 0, 0});
        it = out.end() - 1;
      }
      ++it->calls;
      it->total_us += r.duration_us;
      it->max_us = std::max(it->max_us, r.duration_us);
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanAggregate& a, const SpanAggregate& b) {
    return a.total_us > b.total_us;
  });
  return out;
}

std::string TraceCollector::to_chrome_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& r : records_) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    append_json_string(out, r.name);
    out += ",\"cat\":\"failmine\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(r.start_us);
    out += ",\"dur\":";
    out += std::to_string(r.duration_us);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(r.thread_id);
    out += ",\"args\":{\"depth\":";
    out += std::to_string(r.depth);
    out += "}}";
  }
  out += "]}";
  return out;
}

void TraceCollector::write_chrome_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw failmine::ObsError("cannot open trace export file: " + path);
  out << to_chrome_json() << "\n";
  out.flush();
  if (!out) throw failmine::ObsError("write failed on trace export: " + path);
}

std::string TraceCollector::summary_text() const {
  const auto agg = aggregates();
  // The % column is the share of summed span time; nested spans are
  // counted in both themselves and their parents, so shares can exceed
  // what a flat profile would show.
  std::uint64_t grand_total = 0;
  for (const SpanAggregate& a : agg) grand_total += a.total_us;
  std::size_t capacity;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    capacity = capacity_;
  }
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-36s %8s %12s %12s %6s\n", "span",
                "calls", "total_ms", "max_ms", "%");
  out += line;
  for (const SpanAggregate& a : agg) {
    const double share =
        grand_total == 0
            ? 0.0
            : 100.0 * static_cast<double>(a.total_us) /
                  static_cast<double>(grand_total);
    std::snprintf(line, sizeof(line), "%-36s %8llu %12.3f %12.3f %6.1f\n",
                  a.name.c_str(), static_cast<unsigned long long>(a.calls),
                  static_cast<double>(a.total_us) / 1000.0,
                  static_cast<double>(a.max_us) / 1000.0, share);
    out += line;
  }
  if (const std::uint64_t d = dropped(); d > 0) {
    std::snprintf(line, sizeof(line),
                  "(%llu spans dropped past the %zu-span capacity)\n",
                  static_cast<unsigned long long>(d), capacity);
    out += line;
  }
  return out;
}

void TraceCollector::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

TraceCollector& tracer() {
  // Leaked intentionally (see obs::logger()).
  static TraceCollector* instance = new TraceCollector();
  return *instance;
}

Span::Span(std::string_view name) {
  TraceCollector& collector = tracer();
  start_us_ = collector.now_us();
  if (!collector.enabled()) return;
  name_ = std::string(name);
  depth_ = tls_span_depth++;
  active_ = true;
  // Any thread that opens spans becomes sampleable (no-op after the
  // first call on a thread).
  profile_attach_this_thread();
  SpanLabelStack& labels = tls_span_labels;
  const std::uint32_t d = labels.depth.load(std::memory_order_relaxed);
  if (d < SpanLabelStack::kMaxDepth) {
    labels.labels[d] = name_.c_str();
    std::atomic_signal_fence(std::memory_order_release);
    labels.depth.store(d + 1, std::memory_order_relaxed);
    label_pushed_ = true;
  }
}

Span::~Span() {
  if (!active_) return;
  if (label_pushed_) {
    // Retire the label before name_ is moved out below: once depth drops
    // the handler cannot read the (soon dangling) pointer.
    SpanLabelStack& labels = tls_span_labels;
    labels.depth.store(labels.depth.load(std::memory_order_relaxed) - 1,
                       std::memory_order_relaxed);
    std::atomic_signal_fence(std::memory_order_release);
  }
  TraceCollector& collector = tracer();
  SpanRecord record;
  record.name = std::move(name_);
  record.start_us = start_us_;
  record.duration_us = collector.now_us() - start_us_;
  record.thread_id = this_thread_index();
  record.depth = depth_;
  --tls_span_depth;
  collector.record(std::move(record));
}

std::uint64_t Span::elapsed_us() const { return tracer().now_us() - start_us_; }

}  // namespace failmine::obs
