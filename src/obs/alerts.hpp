// failmine/obs/alerts.hpp
//
// Declarative SLO/alert rules evaluated against the metrics registry.
//
// A rule names an instrument, an extraction function, a comparison and
// a threshold, optionally with a hold duration ("for"), in a one-line
// grammar (rule files and built-in defaults share it):
//
//   <name>: <fn>(<metric>[window]) <op> <threshold> [for <seconds>s]
//
//   fn  value  counter or gauge absolute value
//       rate   counter burn rate in events/second
//       p50 | p90 | p99
//              histogram quantile
//   op  >  >=  <  <=
//
//   # comments and blank lines are ignored
//   stream-drops: rate(stream.records_dropped[30s]) > 0
//   shard-apply-p99: p99(stream.shard0.apply_us) > 50000 for 10s
//
// With a time-series store attached (set_history(), the CLI wires the
// global obs::tsdb() when --tsdb is on), rate rules evaluate the
// reset-aware counter increase over the trailing window (default 60 s,
// kDefaultAlertWindowMs) of *stored history*, and quantile rules
// interpolate from windowed bucket deltas — so a latency spike moves
// p99 immediately instead of drowning in lifetime-cumulative buckets.
// Without history the legacy semantics apply: rate falls back to the
// delta between consecutive evaluations (the first evaluation has no
// baseline and never fires) and quantiles read the lifetime buckets.
// The [window] suffix is accepted either way but only meaningful with
// history.
//
// The engine samples the registry on a background thread (start(); the
// poll interval is configurable, tests run it synchronously with
// evaluate_now()) and walks each rule through the conventional state
// machine: inactive -> pending (condition true, hold not yet served) ->
// firing -> resolved (condition cleared after firing; a fresh breach
// re-enters pending). Missing instruments evaluate as "no data" and
// never fire.
//
// Rules are label-group aware: the metric is a tsdb selector, and every
// series it matches gets its own independent state machine ("group").
// `value(stream.stalled_shards{twin=~"*"}) > 0` therefore fires once
// per stalled twin while healthy twins stay inactive. A selector
// without a `{...}` block keeps the legacy full-name-glob semantics, so
// a plain metric name is exactly one group and nothing changes. A rule
// matching no series at all evaluates a single synthetic no-data group
// (so `GET /alerts` always shows at least one row per rule); firing()
// counts firing *groups*.
//
// Exposure: status() / to_json() back the telemetry server's
// `GET /alerts`; firing() is a lock-free count for the /healthz body's
// `alerts_firing` field; the engine also maintains the
// `obs.alerts.firing` gauge and `obs.alerts.evaluations` /
// `obs.alerts.transitions` counters, and logs every transition.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace failmine::obs {

class TsdbStore;

/// Window a history-backed rate/quantile rule evaluates over when the
/// rule does not name one with a [window] suffix.
inline constexpr std::int64_t kDefaultAlertWindowMs = 60'000;

enum class AlertFn { kValue, kRate, kP50, kP90, kP99 };
enum class AlertOp { kGt, kGe, kLt, kLe };
enum class AlertState { kInactive, kPending, kFiring, kResolved };

std::string_view alert_fn_name(AlertFn fn);
std::string_view alert_op_name(AlertOp op);
std::string_view alert_state_name(AlertState state);

struct AlertRule {
  std::string name;
  AlertFn fn = AlertFn::kValue;
  std::string metric;
  AlertOp op = AlertOp::kGt;
  double threshold = 0.0;
  std::int64_t for_ms = 0;  ///< hold duration before pending -> firing
  std::int64_t window_ms = 0;  ///< history window; 0 = kDefaultAlertWindowMs

  /// The rule's expression back in grammar form (minus the name).
  std::string expression() const;
};

/// One label group's live status as of the last evaluation. A rule
/// whose selector matches several series contributes several statuses.
struct AlertStatus {
  AlertRule rule;
  std::string series;  ///< the matched series (rule.metric when no match)
  AlertState state = AlertState::kInactive;
  bool has_value = false;   ///< false when the metric is absent / no rate yet
  double last_value = 0.0;  ///< extracted value at the last evaluation
  std::int64_t since_ms = 0;  ///< ms the group has been in this state
};

/// Parses the rule grammar above; throws ParseError naming the line on
/// malformed input.
std::vector<AlertRule> parse_alert_rules(std::string_view text);

/// Reads and parses a rule file; throws ObsError if unreadable.
std::vector<AlertRule> load_alert_rules_file(const std::string& path);

/// The built-in defaults a stream run starts with when no --alert-rules
/// file overrides them: drop burn rate, stalled shards, and sustained
/// ingest-ring saturation.
std::vector<AlertRule> default_alert_rules();

class AlertEngine {
 public:
  /// Evaluates against `registry`, or the process-global metrics()
  /// when null.
  explicit AlertEngine(MetricsRegistry* registry = nullptr);
  ~AlertEngine();

  AlertEngine(const AlertEngine&) = delete;
  AlertEngine& operator=(const AlertEngine&) = delete;

  /// Replaces the rule set (resets every rule's state).
  void set_rules(std::vector<AlertRule> rules);
  void add_rule(AlertRule rule);
  std::size_t rule_count() const;

  /// Attaches (or detaches, with nullptr) a time-series store. While
  /// the store has data, rate and quantile rules evaluate against its
  /// windowed history; see the header comment for the semantics.
  void set_history(TsdbStore* history);

  /// Spawns the background evaluation thread. Idempotent.
  void start(std::int64_t poll_ms = 1000);
  /// Stops and joins the thread. Idempotent; called by the destructor.
  void stop();
  bool running() const;

  /// One synchronous evaluation pass (what the thread runs per tick).
  /// Usable without start() — tests and one-shot checks drive it
  /// directly.
  void evaluate_now();

  /// Number of label groups currently firing (lock-free; safe from any
  /// thread, e.g. the /healthz handler).
  std::size_t firing() const {
    return firing_.load(std::memory_order_relaxed);
  }

  /// One entry per label group per rule, in rule order.
  std::vector<AlertStatus> status() const;

  /// {"firing":N,"rules":[{"name":...,"expr":...,"state":...,...},...]}
  std::string to_json() const;

 private:
  /// The state machine of one matched series. The map key is the series
  /// name; "" is the synthetic no-data group of an unmatched rule.
  struct GroupState {
    AlertState state = AlertState::kInactive;
    bool has_value = false;
    double last_value = 0.0;
    std::int64_t state_since_ms = 0;    ///< steady ms of last transition
    std::int64_t pending_since_ms = 0;  ///< steady ms the breach began
    bool has_prev = false;              ///< rate baseline captured
    double prev_counter = 0.0;
    std::int64_t prev_ms = 0;
  };

  struct RuleState {
    AlertRule rule;
    std::map<std::string, GroupState> groups;
  };

  void loop(std::int64_t poll_ms);
  std::optional<double> extract(const AlertRule& rule,
                                const std::string& series, GroupState& group,
                                const MetricsSample& sample,
                                std::int64_t now_ms) const;
  void evaluate_locked(std::int64_t now_ms);

  MetricsRegistry* registry_;
  TsdbStore* history_ = nullptr;  // guarded by mutex_
  mutable std::mutex mutex_;  // guards rules_ and the stop flag
  std::vector<RuleState> rules_;
  std::atomic<std::size_t> firing_{0};

  std::thread thread_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::atomic<bool> running_{false};
};

/// The process-wide engine the CLI and the telemetry server share.
AlertEngine& alerts();

}  // namespace failmine::obs
