#include "obs/session.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace failmine::obs {

ObsSession::ObsSession() {
  // Anchor process_start_time_seconds as early as possible (the gauge's
  // epoch is the first update_process_metrics() call).
  update_process_metrics();
  if (const char* env = std::getenv("FAILMINE_METRICS_OUT")) metrics_out_ = env;
  if (const char* env = std::getenv("FAILMINE_TRACE_OUT")) trace_out_ = env;
  if (const char* env = std::getenv("FAILMINE_FLIGHT_RECORDER"))
    set_flight_recorder(env);
  if (const char* env = std::getenv("FAILMINE_PROFILE")) set_profile_out(env);
}

ObsSession::ObsSession(int* argc, char** argv) : ObsSession() {
  int out = 1;  // keep argv[0]
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < *argc;
    if (std::strcmp(arg, "--log-level") == 0 && has_value) {
      set_log_level(argv[++i]);
    } else if (std::strcmp(arg, "--metrics-out") == 0 && has_value) {
      set_metrics_out(argv[++i]);
    } else if (std::strcmp(arg, "--trace-out") == 0 && has_value) {
      set_trace_out(argv[++i]);
    } else if (std::strcmp(arg, "--flight-recorder") == 0 && has_value) {
      set_flight_recorder(argv[++i]);
    } else if (std::strcmp(arg, "--profile-out") == 0 && has_value) {
      set_profile_out(argv[++i]);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  argv[out] = nullptr;
}

ObsSession::~ObsSession() {
  try {
    flush();
  } catch (const failmine::ObsError& e) {
    std::fprintf(stderr, "%s\n", e.what());
  }
}

void ObsSession::set_log_level(std::string_view name) {
  logger().set_level(log_level_from_name(name));
}

void ObsSession::set_metrics_out(std::string path) {
  metrics_out_ = std::move(path);
}

void ObsSession::set_trace_out(std::string path) { trace_out_ = std::move(path); }

void ObsSession::set_flight_recorder(const std::string& path) {
  flight_recorder_out_ = path;
  install_crash_dump(path);
}

void ObsSession::set_profile_out(const std::string& spec) {
  profile_ = std::make_unique<ProfileSession>(spec);
}

void ObsSession::flush() {
  if (flushed_) return;
  flushed_ = true;
  // Profile first: finish() bumps the obs.profile.* counters, which the
  // metrics export below should include.
  if (profile_) {
    const ProfileReport report = profile_->finish();
    if (report.samples > 0 || report.dropped > 0)
      std::fputs(report.span_table_text().c_str(), stderr);
    std::fprintf(stderr, "profile: folded stacks -> %s\n",
                 profile_->path().c_str());
  }
  update_process_metrics();  // final uptime reading for the export
  if (!metrics_out_.empty()) metrics().write_json(metrics_out_);
  if (!trace_out_.empty()) tracer().write_chrome_json(trace_out_);
}

}  // namespace failmine::obs
