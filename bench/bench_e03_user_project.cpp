// E03 — Fig: failures per user/project (concentration / Lorenz view).
// Paper claim (T-B): failures correlate with users and projects; a small
// population accounts for most failures.

#include <benchmark/benchmark.h>

#include "analysis/user_stats.hpp"
#include "stats/concentration.hpp"
#include "bench_common.hpp"

namespace {

using namespace failmine;

void print_group(const char* label,
                 const std::vector<analysis::GroupStats>& stats) {
  for (auto metric : {analysis::GroupMetric::kJobs,
                      analysis::GroupMetric::kFailures,
                      analysis::GroupMetric::kCoreHours}) {
    const auto c = analysis::concentration(stats, metric);
    const char* metric_name = metric == analysis::GroupMetric::kJobs ? "jobs"
                              : metric == analysis::GroupMetric::kFailures
                                  ? "failures"
                                  : "core-hours";
    std::printf("%-8s %-10s gini=%.3f top1=%5.1f%% top10=%5.1f%% half@%zu/%zu\n",
                label, metric_name, c.gini, 100.0 * c.top1_share,
                100.0 * c.top10_share, c.groups_for_half, c.group_count);
  }
}

void print_table() {
  const auto& engine = bench::query_engine();
  bench::print_header("E03", "failure concentration across users/projects",
                      "Fig: failures per user and per project (CDF / Lorenz)");
  std::printf("backend: %s\n", bench::backend_name());
  const auto users = engine.per_user_stats();
  const auto projects = engine.per_project_stats();
  print_group("user", users);
  print_group("project", projects);

  // Lorenz curve of failures per user (deciles) — the figure's series.
  const auto lorenz = stats::lorenz_curve(
      analysis::metric_column(users, analysis::GroupMetric::kFailures));
  std::printf("\nLorenz curve of failures per user (population share -> failure share):\n");
  for (double p = 0.1; p <= 1.0001; p += 0.1) {
    // Find the curve point at population share p.
    double share = 0.0;
    for (const auto& pt : lorenz) {
      if (pt.population_share <= p + 1e-12) share = pt.value_share;
    }
    std::printf("  %3.0f%% -> %5.1f%%\n", 100.0 * p, 100.0 * share);
  }
}

void BM_PerUserStats(benchmark::State& state) {
  const auto& engine = bench::query_engine();
  for (auto _ : state) {
    auto stats = engine.per_user_stats();
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_PerUserStats)->Unit(benchmark::kMillisecond);

void BM_Concentration(benchmark::State& state) {
  const auto stats = bench::query_engine().per_user_stats();
  for (auto _ : state) {
    auto c = analysis::concentration(stats, analysis::GroupMetric::kFailures);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_Concentration);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
