// X02 (extension) — WARN -> FATAL lead-time analysis.
// How much warning does the RAS stream give before an interruption, and
// which warning messages are the best precursors?

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"
#include "core/lead_time.hpp"

namespace {

using namespace failmine;

void print_table() {
  bench::print_header("X02", "warning lead time before interruptions",
                      "extension: precursor WARNs of filtered FATAL clusters");

  for (std::int64_t horizon : predict::kLeadTimeHorizonsSeconds) {
    const auto r = bench::lead_times_at(horizon);
    std::printf("horizon %6llds: coverage %5.1f%%  median lead %7.0fs  "
                "mean %7.0fs\n",
                static_cast<long long>(horizon), 100.0 * r.coverage,
                r.median_lead_seconds, r.mean_lead_seconds);
  }

  const auto r =
      bench::lead_times_at(predict::kDefaultPrecursorHorizonSeconds);
  std::map<std::string, int> by_message;
  for (const auto& p : r.per_interruption)
    if (p.lead_seconds) ++by_message[p.warn_message_id];
  std::printf("\nprecursor WARN message ids (%llds horizon):\n",
              static_cast<long long>(predict::kDefaultPrecursorHorizonSeconds));
  for (const auto& [msg, count] : by_message)
    std::printf("  %s  %d\n", msg.c_str(), count);
  std::printf("interruptions without any precursor: %llu of %zu\n",
              static_cast<unsigned long long>(r.without_precursor),
              r.per_interruption.size());
}

void BM_LeadTimes(benchmark::State& state) {
  const auto& a = bench::analyzer();
  const auto& clusters = bench::interruption_clusters();
  for (auto _ : state) {
    auto r = core::warning_lead_times(a.ras(), clusters);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LeadTimes)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
