// E08 — Fig/Table: MTTI and MTBF.
// Paper claim (T-E): after similarity-based filtering the mean time to
// interruption is about 3.5 days; raw (unfiltered) counting would
// underestimate it by an order of magnitude.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/mtti.hpp"

namespace {

using namespace failmine;

void print_table() {
  const auto& a = bench::analyzer();
  bench::print_header("E08", "mean time to interruption",
                      "Fig/Table: MTTI raw vs filtered (paper: ~3.5 days)");
  const auto raw = core::raw_mtti(a.ras(), raslog::Severity::kFatal,
                                  a.window_begin(), a.window_end());
  const auto filtered = a.interruption_analysis(core::FilterConfig{});
  const double s = bench::dataset_config().scale;

  std::printf("%-28s %12s %20s\n", "variant", "count", "MTTI (days)");
  std::printf("%-28s %12llu %12.3f (x%.3g scale = %.2f)\n", "raw FATAL events",
              static_cast<unsigned long long>(raw.interruptions),
              raw.mtti_days, s, raw.mtti_days * s);
  std::printf("%-28s %12llu %12.3f (x%.3g scale = %.2f; paper 3.5)\n",
              "filtered interruptions",
              static_cast<unsigned long long>(filtered.mtti.interruptions),
              filtered.mtti.mtti_days, s, filtered.mtti.mtti_days * s);
  std::printf("filtering reduction: %.1fx\n",
              filtered.filter.reduction_factor());
  if (!filtered.mtti.intervals_days.empty()) {
    std::printf("interval stats (days): mean=%.2f median=%.2f\n",
                filtered.mtti.mean_interval_days,
                filtered.mtti.median_interval_days);
  }
}

void BM_FilteredMtti(benchmark::State& state) {
  const auto& a = bench::analyzer();
  for (auto _ : state) {
    auto r = a.interruption_analysis(core::FilterConfig{});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FilteredMtti)->Unit(benchmark::kMillisecond);

void BM_RawMtti(benchmark::State& state) {
  const auto& a = bench::analyzer();
  for (auto _ : state) {
    auto r = core::raw_mtti(a.ras(), raslog::Severity::kFatal,
                            a.window_begin(), a.window_end());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RawMtti)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
