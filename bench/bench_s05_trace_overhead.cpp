// S05 — causal-tracing + alerting overhead: streaming pipeline
// throughput with trace sampling off vs sampling 1-in-100 records while
// the alert engine evaluates the default rules in the background.
//
// The tracer's budget is "one hash and one branch" on the non-sampled
// path: maybe_begin() hashes the record sequence and bails, every stage
// guards on `record.trace != 0`, and only the ~1% of sampled records
// touch the slot atomics and the stage histograms (plus the exemplar
// seqlock). The table reports records/sec for both modes and the
// relative overhead; the run FAILS (exit 1) when the traced replay is
// more than 5% slower, so a regression that makes the hot path
// expensive (an allocation, a lock, unconditional stamping) cannot land
// silently.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "obs/alerts.hpp"
#include "obs/causal.hpp"
#include "sim/replay.hpp"
#include "stream/pipeline.hpp"

namespace {

using namespace failmine;

constexpr double kMaxOverhead = 0.05;  // 5% budget at 1% sampling

const std::vector<stream::StreamRecord>& replay() {
  static const std::vector<stream::StreamRecord> records = [] {
    FAILMINE_TRACE_SPAN("bench.replay_build");
    return sim::build_replay(bench::dataset());
  }();
  return records;
}

stream::StreamConfig make_config(bool traced) {
  stream::StreamConfig config;
  config.machine = bench::dataset_config().machine;
  config.shard_count = 4;
  config.policy = stream::BackpressurePolicy::kBlock;
  config.max_lateness_seconds = 0;  // replay is already event-time ordered
  config.trace_sample_period = traced ? 100 : 0;
  return config;
}

/// One full replay; when `traced` is set, 1-in-100 records carry a
/// causal trace stamped at all five stages AND the alert engine
/// evaluates the default rule set every 50 ms. Returns records/sec.
double run_pipeline(bool traced) {
  if (traced) {
    obs::alerts().set_rules(obs::default_alert_rules());
    obs::alerts().start(/*poll_ms=*/50);
  }

  stream::StreamPipeline pipeline(make_config(traced));
  const auto start = std::chrono::steady_clock::now();
  std::vector<stream::StreamRecord> batch;
  const auto& records = replay();
  for (std::size_t i = 0; i < records.size();) {
    const std::size_t n = std::min<std::size_t>(1024, records.size() - i);
    batch.assign(records.begin() + i, records.begin() + i + n);
    pipeline.push_batch(std::move(batch));
    i += n;
  }
  pipeline.finish();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto snap = pipeline.snapshot();
  if (traced) {
    obs::alerts().stop();
    if (obs::causal_tracer().sampled() == 0) {
      std::fprintf(stderr, "FATAL: traced replay sampled no records\n");
      std::exit(1);
    }
  }
  if (snap.records_dropped != 0) {
    std::fprintf(stderr, "FATAL: blocking policy dropped records\n");
    std::exit(1);
  }
  return static_cast<double>(snap.records_in) / secs;
}

void print_table() {
  bench::print_header("S05", "causal tracing + alerting overhead",
                      "pipeline records/sec with 1% trace sampling and the "
                      "alert engine active vs both off");
  // Warm both paths once (simulator + histogram creation), then
  // interleave the modes and take the best of five each: a replay run is
  // short, so a single scheduler hiccup can cost more than the whole
  // tracing budget — best-of-N compares the two modes at their
  // undisturbed speed.
  (void)run_pipeline(false);
  (void)run_pipeline(true);
  double off = 0.0, on = 0.0;
  for (int round = 0; round < 5; ++round) {
    off = std::max(off, run_pipeline(false));
    on = std::max(on, run_pipeline(true));
  }
  const double overhead = (off - on) / off;
  std::printf("%-12s %14s\n", "mode", "records/s");
  std::printf("%-12s %14.0f\n", "trace off", off);
  std::printf("%-12s %14.0f\n", "trace 1%", on);
  std::printf("overhead: %.2f%% (budget %.0f%%)\n", 100.0 * overhead,
              100.0 * kMaxOverhead);
  if (overhead > kMaxOverhead) {
    std::fprintf(stderr,
                 "FATAL: tracing overhead %.2f%% exceeds the %.0f%% budget\n",
                 100.0 * overhead, 100.0 * kMaxOverhead);
    std::exit(1);
  }
}

void BM_StreamReplayTraceOff(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_pipeline(false));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(replay().size()));
}
BENCHMARK(BM_StreamReplayTraceOff)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_StreamReplayTraceOn(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_pipeline(true));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(replay().size()));
}
BENCHMARK(BM_StreamReplayTraceOn)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
