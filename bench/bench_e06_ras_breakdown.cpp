// E06 — Table: RAS event counts by severity, component and category.
// Context for takeaway T-D: the raw RAS stream is INFO-dominated with a
// thin FATAL tail concentrated in a few components.

#include <benchmark/benchmark.h>

#include "analysis/ras_breakdown.hpp"
#include "bench_common.hpp"
#include "raslog/message_catalog.hpp"

namespace {

using namespace failmine;

void print_table() {
  const auto b = bench::query_engine().ras_breakdown();
  bench::print_header("E06", "RAS event breakdown",
                      "Table: events by severity x component x category");
  std::printf("backend: %s\n", bench::backend_name());
  const auto& sev = b.by_severity;
  const double total = static_cast<double>(b.total_events);
  std::printf("severity   INFO=%llu (%.2f%%)  WARN=%llu (%.2f%%)  FATAL=%llu (%.3f%%)\n",
              static_cast<unsigned long long>(sev[0]), 100.0 * sev[0] / total,
              static_cast<unsigned long long>(sev[1]), 100.0 * sev[1] / total,
              static_cast<unsigned long long>(sev[2]), 100.0 * sev[2] / total);

  std::printf("\n%-12s %10s %10s %10s\n", "component", "INFO", "WARN", "FATAL");
  for (const auto& [component, counts] : b.by_component)
    std::printf("%-12s %10llu %10llu %10llu\n",
                raslog::component_name(component).c_str(),
                static_cast<unsigned long long>(counts[0]),
                static_cast<unsigned long long>(counts[1]),
                static_cast<unsigned long long>(counts[2]));
  std::printf("\n%-12s %10s %10s %10s\n", "category", "INFO", "WARN", "FATAL");
  for (const auto& [category, counts] : b.by_category)
    std::printf("%-12s %10llu %10llu %10llu\n",
                raslog::category_name(category).c_str(),
                static_cast<unsigned long long>(counts[0]),
                static_cast<unsigned long long>(counts[1]),
                static_cast<unsigned long long>(counts[2]));
}

void BM_RasBreakdown(benchmark::State& state) {
  const auto& engine = bench::query_engine();
  for (auto _ : state) {
    auto b = engine.ras_breakdown();
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_RasBreakdown)->Unit(benchmark::kMillisecond);

void BM_FilterFatal(benchmark::State& state) {
  const auto& log = bench::dataset().ras_log;
  for (auto _ : state) {
    auto fatal = log.filter_severity(raslog::Severity::kFatal);
    benchmark::DoNotOptimize(fatal);
  }
}
BENCHMARK(BM_FilterFatal)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
