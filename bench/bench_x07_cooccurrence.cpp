// X07 (extension) — error-propagation channels between RAS categories.
// For every ordered category pair: how much likelier is a follower event
// within 10 minutes on the same midplane than its base rate predicts?

#include <benchmark/benchmark.h>

#include "analysis/cooccurrence.hpp"
#include "bench_common.hpp"

namespace {

using namespace failmine;

void print_table() {
  const auto& log = bench::dataset().ras_log;
  bench::print_header("X07", "category co-occurrence (error propagation)",
                      "extension: lift matrix of WARN+/FATAL event pairs");
  // The window comes from the shared constant so the offline lift matrix
  // and the online predictor measure propagation over the same horizon.
  const auto r =
      analysis::category_cooccurrence(log, bench::cooccurrence_config());
  std::printf("qualifying events (WARN+): %llu over %.0f days\n",
              static_cast<unsigned long long>(r.qualifying_events),
              r.span_seconds / 86400.0);

  std::printf("\nlift matrix (row triggers column; >1 = propagation):\n%-11s",
              "");
  for (auto c : raslog::kAllCategories)
    std::printf(" %8.8s", raslog::category_name(c).c_str());
  std::printf("\n");
  for (std::size_t a = 0; a < analysis::kCategoryCount; ++a) {
    std::printf("%-11s",
                raslog::category_name(raslog::kAllCategories[a]).c_str());
    for (std::size_t b = 0; b < analysis::kCategoryCount; ++b)
      std::printf(" %8.2f", r.lift[a][b]);
    std::printf("\n");
  }

  std::printf("\nstrongest channels (lift >= 2, >= 5 observations):\n");
  for (const auto& ch : analysis::top_channels(r)) {
    std::printf("  %-10s -> %-10s lift=%7.1f (n=%llu)\n",
                raslog::category_name(ch.trigger).c_str(),
                raslog::category_name(ch.follower).c_str(), ch.lift,
                static_cast<unsigned long long>(ch.count));
  }
}

void BM_Cooccurrence(benchmark::State& state) {
  const auto& log = bench::dataset().ras_log;
  const auto config = bench::cooccurrence_config();
  for (auto _ : state) {
    auto r = analysis::category_cooccurrence(log, config);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Cooccurrence)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
