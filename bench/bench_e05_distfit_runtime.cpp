// E05 — Table: best-fit distribution of failed-job execution lengths per
// exit-code class.
// Paper claim (T-C): the best-fit family depends on the error type —
// Weibull, Pareto, inverse Gaussian and Erlang/exponential all appear.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/distfit_study.hpp"
#include "distfit/fit.hpp"

namespace {

using namespace failmine;

void print_table() {
  const auto& a = bench::analyzer();
  bench::print_header("E05", "distribution fit of failed-job execution length",
                      "Table: best-fit family per exit-code class (T-C)");
  const auto rows = a.runtime_distribution_study(40);
  std::printf("%-20s %7s | %-16s %8s | %-16s | %-16s\n", "exit class", "n",
              "best (KS)", "D", "best (AIC)", "best (BIC)");
  for (const auto& row : rows) {
    const auto& ks_fit = row.fits[row.best_by_ks];
    std::printf("%-20s %7zu | %-16s %8.4f | %-16s | %-16s\n",
                joblog::exit_class_name(row.exit_class).c_str(),
                row.sample_size,
                distfit::family_name(ks_fit.family).c_str(),
                ks_fit.ks.statistic,
                distfit::family_name(row.fits[row.best_by_aic].family).c_str(),
                distfit::family_name(row.fits[row.best_by_bic].family).c_str());
    // Full candidate ranking for the figure's per-class panel.
    for (const auto& fit : row.fits) {
      std::printf("    %-16s D=%.4f  logL=%.1f  AIC=%.1f",
                  distfit::family_name(fit.family).c_str(), fit.ks.statistic,
                  fit.log_lik, fit.aic);
      for (const auto& p : fit.dist->params())
        std::printf("  %s=%.4g", p.name.c_str(), p.value);
      std::printf("\n");
    }
  }
  // Joint system-failure sample (small per-class counts at reduced scale).
  std::vector<double> sys;
  for (auto cls : {joblog::ExitClass::kSystemHardware,
                   joblog::ExitClass::kSystemSoftware,
                   joblog::ExitClass::kSystemIo}) {
    const auto part = core::runtime_sample(a.jobs(), cls);
    sys.insert(sys.end(), part.begin(), part.end());
  }
  if (sys.size() >= 30) {
    const auto row = core::fit_sample(sys);
    std::printf("%-20s %7zu | %-16s %8.4f |\n", "SYSTEM_* (joint)",
                row.sample_size,
                distfit::family_name(row.fits[row.best_by_ks].family).c_str(),
                row.fits[row.best_by_ks].ks.statistic);
  }
}

void BM_FitStudy(benchmark::State& state) {
  const auto& a = bench::analyzer();
  for (auto _ : state) {
    auto rows = a.runtime_distribution_study(40);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_FitStudy)->Unit(benchmark::kMillisecond);

void BM_FitWeibullOnly(benchmark::State& state) {
  const auto& a = bench::analyzer();
  const auto sample =
      core::runtime_sample(a.jobs(), joblog::ExitClass::kUserAppError);
  for (auto _ : state) {
    auto fit = distfit::fit_weibull(sample);
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(BM_FitWeibullOnly)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
