// E09 — Fig: spatial locality of fatal RAS events.
// Paper claim (T-D): RAS events affecting jobs have a strong locality
// feature — a small fraction of hardware absorbs most fatal events.

#include <benchmark/benchmark.h>

#include "analysis/locality.hpp"
#include "analysis/torus_locality.hpp"
#include "bench_common.hpp"

namespace {

using namespace failmine;

void print_table() {
  const auto& log = bench::dataset().ras_log;
  const auto& machine = bench::dataset_config().machine;
  bench::print_header("E09", "spatial locality of fatal events",
                      "Fig: fatal-event share per rack/midplane/board");
  std::printf("%-12s %8s %8s %8s %8s %10s %7s\n", "level", "hit", "total",
              "top1", "top5", "top10pct", "gini");
  for (auto level : {topology::Level::kRack, topology::Level::kMidplane,
                     topology::Level::kNodeBoard}) {
    const auto s = analysis::locality_summary(log, machine, level);
    std::printf("%-12s %8zu %8zu %7.1f%% %7.1f%% %9.1f%% %7.3f\n",
                topology::level_name(level).c_str(), s.components_hit,
                s.components_total, 100.0 * s.top1_share, 100.0 * s.top5_share,
                100.0 * s.top10pct_share, s.gini);
  }
  std::printf("\nhottest 10 boards by fatal events:\n");
  const auto hot = analysis::events_per_component(
      log, topology::Level::kNodeBoard, raslog::Severity::kFatal);
  for (std::size_t i = 0; i < std::min<std::size_t>(10, hot.size()); ++i)
    std::printf("  %-14s %6llu\n", hot[i].location.to_string().c_str(),
                static_cast<unsigned long long>(hot[i].events));
  util::Rng rng(bench::dataset_config().seed);
  const auto torus = analysis::torus_locality(log, machine, rng);
  std::printf("\n5D-torus view: %zu located fatals, mean pair distance %.2f "
              "hops vs %.2f baseline (ratio %.3f; < 1 = clustered)\n",
              torus.located_events, torus.mean_pair_distance,
              torus.baseline_distance, torus.clustering_ratio);
  std::printf("weak boards injected by the fault model: %zu (%.1f%% of %zu)\n",
              static_cast<std::size_t>(
                  bench::dataset_config().weak_board_fraction * 1536),
              100.0 * bench::dataset_config().weak_board_fraction,
              analysis::components_at_level(machine,
                                            topology::Level::kNodeBoard));
}

void BM_LocalitySummary(benchmark::State& state) {
  const auto& log = bench::dataset().ras_log;
  const auto& machine = bench::dataset_config().machine;
  for (auto _ : state) {
    auto s = analysis::locality_summary(log, machine,
                                        topology::Level::kNodeBoard);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_LocalitySummary)->Unit(benchmark::kMillisecond);

void BM_EventsPerComponent(benchmark::State& state) {
  const auto& log = bench::dataset().ras_log;
  for (auto _ : state) {
    auto counts = analysis::events_per_component(
        log, topology::Level::kRack, raslog::Severity::kInfo);
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_EventsPerComponent)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
