// E10 — Fig: correlation of job-affecting RAS events with users and
// core-hours.
// Paper claim (T-D): RAS events affecting job executions exhibit a high
// correlation with users and core-hours.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/attribution.hpp"
#include "stats/correlation.hpp"

namespace {

using namespace failmine;

void print_table() {
  const auto& a = bench::analyzer();
  bench::print_header("E10", "RAS events vs user activity",
                      "Fig: attributed events vs per-user core-hours/jobs");
  const auto c = a.ras_user_correlations();
  std::printf("users with activity: %zu\n", c.users);
  std::printf("%-44s %8s\n", "pair (Spearman rank correlation)", "rho");
  std::printf("%-44s %8.3f\n", "attributed events  vs core-hours",
              c.events_vs_core_hours);
  std::printf("%-44s %8.3f\n", "attributed events  vs job count",
              c.events_vs_jobs);
  std::printf("%-44s %8.3f\n", "attributed FATALs  vs core-hours",
              c.fatals_vs_core_hours);

  // Top-user table: the figure's scatter, reduced to its extremes.
  const auto input = core::user_event_correlation_input(
      a.jobs(), a.ras(), a.machine());
  std::vector<std::size_t> order(input.user_ids.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return input.events_per_user[x] > input.events_per_user[y];
  });
  std::printf("\ntop 8 users by attributed events:\n");
  std::printf("  %-8s %10s %10s %14s\n", "user", "events", "jobs",
              "core-hours");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, order.size()); ++i) {
    const std::size_t r = order[i];
    std::printf("  %-8u %10.0f %10.0f %14.3e\n", input.user_ids[r],
                input.events_per_user[r], input.jobs_per_user[r],
                input.core_hours_per_user[r]);
  }
}

void BM_BuildAttributionIndex(benchmark::State& state) {
  const auto& a = bench::analyzer();
  for (auto _ : state) {
    core::AttributionIndex index(a.jobs(), a.machine());
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_BuildAttributionIndex)->Unit(benchmark::kMillisecond);

void BM_AttributeAllEvents(benchmark::State& state) {
  const auto& a = bench::analyzer();
  const core::AttributionIndex index(a.jobs(), a.machine());
  for (auto _ : state) {
    auto stats = index.attribute_all(a.ras());
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_AttributeAllEvents)->Unit(benchmark::kMillisecond);

void BM_UserCorrelations(benchmark::State& state) {
  const auto& a = bench::analyzer();
  for (auto _ : state) {
    auto c = a.ras_user_correlations();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_UserCorrelations)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
