// E04 — Fig: failure rate vs job execution structure.
// Paper claim (T-B): job failures correlate with the execution structure —
// number of tasks, scale (node count) and core-hours.

#include <benchmark/benchmark.h>

#include "analysis/structure.hpp"
#include "bench_common.hpp"

namespace {

using namespace failmine;

void print_buckets(const char* title,
                   const std::vector<analysis::StructureBucket>& buckets) {
  std::printf("\n%s (Spearman trend rho = %.3f)\n", title,
              analysis::bucket_trend(buckets));
  std::printf("  %-22s %10s %10s %9s\n", "bucket", "jobs", "failures", "rate");
  for (const auto& b : buckets) {
    if (b.jobs == 0) continue;
    std::printf("  %-22s %10llu %10llu %8.2f%%\n", b.label.c_str(),
                static_cast<unsigned long long>(b.jobs),
                static_cast<unsigned long long>(b.failures),
                100.0 * b.failure_rate());
  }
}

void print_table() {
  const auto& a = bench::analyzer();
  bench::print_header("E04", "failure rate vs job structure",
                      "Fig: failure rate vs scale / #tasks / core-hours");
  print_buckets("by allocation scale", analysis::failure_rate_by_scale(a.jobs()));
  print_buckets("by task count",
                analysis::failure_rate_by_task_count(a.jobs(), 8));
  print_buckets("by consumed core-hours",
                analysis::failure_rate_by_core_hours(a.jobs(), a.machine(), 8));
}

void BM_StructureByScale(benchmark::State& state) {
  const auto& a = bench::analyzer();
  for (auto _ : state) {
    auto b = analysis::failure_rate_by_scale(a.jobs());
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_StructureByScale)->Unit(benchmark::kMillisecond);

void BM_StructureByCoreHours(benchmark::State& state) {
  const auto& a = bench::analyzer();
  for (auto _ : state) {
    auto b = analysis::failure_rate_by_core_hours(a.jobs(), a.machine(), 8);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_StructureByCoreHours)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
