// E01 — Table 1: data-source summary.
// Paper claim (T-F): 2001 days of observation, 32.44 B core-hours, four
// joined log sources.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace failmine;

void print_table() {
  const auto& a = bench::analyzer();
  const auto s = a.dataset_summary();
  bench::print_header("E01", "data-source summary",
                      "Table 1 (dataset overview); abstract totals");
  std::printf("%-28s %16s %18s\n", "metric", "measured", "paper-scale equiv");
  std::printf("%-28s %16.1f %18s\n", "observation span (days)", s.span_days,
              "2001");
  std::printf("%-28s %16llu %18.0f\n", "jobs (scheduling log)",
              static_cast<unsigned long long>(s.jobs),
              bench::to_paper_scale(static_cast<double>(s.jobs)));
  std::printf("%-28s %16llu %18.0f\n", "tasks (runjob log)",
              static_cast<unsigned long long>(s.tasks),
              bench::to_paper_scale(static_cast<double>(s.tasks)));
  std::printf("%-28s %16llu %18.0f\n", "RAS events",
              static_cast<unsigned long long>(s.ras_events),
              bench::to_paper_scale(static_cast<double>(s.ras_events)));
  std::printf("%-28s %16llu %18s\n", "  of which INFO",
              static_cast<unsigned long long>(s.ras_by_severity[0]), "-");
  std::printf("%-28s %16llu %18s\n", "  of which WARN",
              static_cast<unsigned long long>(s.ras_by_severity[1]), "-");
  std::printf("%-28s %16llu %18s\n", "  of which FATAL",
              static_cast<unsigned long long>(s.ras_by_severity[2]), "-");
  std::printf("%-28s %16llu %18.0f\n", "I/O (Darshan) records",
              static_cast<unsigned long long>(s.io_records),
              bench::to_paper_scale(static_cast<double>(s.io_records)));
  std::printf("%-28s %16.3e %18.3e   (paper: 3.244e+10)\n",
              "total core-hours", s.total_core_hours,
              bench::to_paper_scale(s.total_core_hours));
}

void BM_DatasetSummary(benchmark::State& state) {
  const auto& a = bench::analyzer();
  for (auto _ : state) {
    auto s = a.dataset_summary();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_DatasetSummary);

void BM_SimulateTrace(benchmark::State& state) {
  auto config = failmine::sim::SimConfig::test_scale();
  for (auto _ : state) {
    auto r = failmine::sim::simulate(config);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SimulateTrace)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
