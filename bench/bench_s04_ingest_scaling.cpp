// S04 — batch ingest scaling: rows/sec loading all four CSV logs with
// the serial line-oriented reader vs the parallel mmap ingest engine at
// 1, 2, 4 and 8 worker threads.
//
// The dataset is written to disk once (a larger default scale than the
// other benches — the point is parsing throughput on a paper-sized
// trace, around a million CSV rows at the default 0.2). Each
// configuration reloads every log from disk; the table reports rows/sec
// and the speedup over the serial reader, and asserts that every
// configuration parses exactly the same number of records (the engines
// must be indistinguishable in output). On hosts with at least four
// hardware threads the mmap engine at 4 threads must beat the serial
// reader by >= 2.5x; on smaller hosts the gate is reported but not
// enforced (there is no parallelism to win).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "ingest/loader.hpp"
#include "iolog/io_record.hpp"
#include "joblog/job.hpp"
#include "raslog/event.hpp"
#include "sim/simulator.hpp"
#include "tasklog/task.hpp"

namespace {

using namespace failmine;

const sim::SimConfig& s04_config() {
  static const sim::SimConfig config = [] {
    sim::SimConfig c;
    // FAILMINE_BENCH_SCALE still applies, but the S04 default is 2x the
    // common bench scale: ingest throughput needs row counts big enough
    // that per-file setup (open, mmap, chunk planning) is noise.
    c.scale = 0.2;
    if (const char* env = std::getenv("FAILMINE_BENCH_SCALE"))
      c.scale = bench::parse_bench_scale(env, c.scale);
    return c;
  }();
  return config;
}

/// Simulates once and writes the four logs to a temp directory.
const std::string& dataset_dir() {
  static const std::string dir = [] {
    FAILMINE_TRACE_SPAN("bench.dataset_build");
    const auto path =
        std::filesystem::temp_directory_path() /
        ("failmine_bench_s04_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path);
    const sim::SimResult trace = sim::simulate(s04_config());
    sim::write_dataset(trace, path.string());
    return path.string();
  }();
  return dir;
}

struct LoadResult {
  std::size_t rows = 0;
  double seconds = 0.0;
};

/// Loads all four logs with the given engine/threads; returns the total
/// record count and wall time.
LoadResult run_load(unsigned threads, ingest::Engine engine) {
  ingest::LoadOptions options;
  options.threads = threads;
  const std::string& dir = dataset_dir();
  const auto start = std::chrono::steady_clock::now();
  const auto ras =
      raslog::RasLog::read_csv(dir + "/ras.csv", s04_config().machine, options,
                               engine);
  const auto jobs = joblog::JobLog::read_csv(dir + "/jobs.csv", options, engine);
  const auto tasks =
      tasklog::TaskLog::read_csv(dir + "/tasks.csv", options, engine);
  const auto io = iolog::IoLog::read_csv(dir + "/io.csv", options, engine);
  LoadResult r;
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  r.rows = ras.size() + jobs.size() + tasks.size() + io.size();
  return r;
}

void print_table() {
  bench::print_header("S04", "parallel mmap ingest scaling",
                      "rows/sec, serial reader vs mmap engine at 1-8 threads");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("host concurrency: %u hardware threads\n", hw);
  std::printf("dataset: %s (scale %.3g)\n", dataset_dir().c_str(),
              s04_config().scale);
  std::printf("%-14s %10s %10s %12s %9s\n", "engine", "rows", "secs",
              "rows/s", "speedup");

  const LoadResult serial = run_load(1, ingest::Engine::kSerial);
  const double serial_rate =
      static_cast<double>(serial.rows) / serial.seconds;
  std::printf("%-14s %10zu %10.3f %12.0f %8.2fx\n", "serial", serial.rows,
              serial.seconds, serial_rate, 1.0);

  double speedup_at_4 = 0.0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const LoadResult r = run_load(threads, ingest::Engine::kMapped);
    if (r.rows != serial.rows) {
      std::fprintf(stderr,
                   "FATAL: mmap@%u parsed %zu rows, serial parsed %zu\n",
                   threads, r.rows, serial.rows);
      std::exit(1);
    }
    const double rate = static_cast<double>(r.rows) / r.seconds;
    const double speedup = rate / serial_rate;
    if (threads == 4) speedup_at_4 = speedup;
    std::printf("mmap@%-9u %10zu %10.3f %12.0f %8.2fx\n", threads, r.rows,
                r.seconds, rate, speedup);
  }

  // Scaling gate: only meaningful where the hardware has the cores.
  if (hw >= 4) {
    if (speedup_at_4 < 2.5) {
      std::fprintf(stderr,
                   "FATAL: mmap@4 speedup %.2fx < 2.5x gate (%u hardware "
                   "threads)\n",
                   speedup_at_4, hw);
      std::exit(1);
    }
    std::printf("gate: mmap@4 speedup %.2fx >= 2.5x  OK\n", speedup_at_4);
  } else {
    std::printf("gate: skipped (%u hardware threads < 4; mmap@4 measured "
                "%.2fx)\n",
                hw, speedup_at_4);
  }
}

void BM_IngestSerial(benchmark::State& state) {
  std::size_t rows = 0;
  for (auto _ : state) {
    const LoadResult r = run_load(1, ingest::Engine::kSerial);
    rows = r.rows;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_IngestSerial)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_IngestMapped(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  std::size_t rows = 0;
  for (auto _ : state) {
    const LoadResult r = run_load(threads, ingest::Engine::kMapped);
    rows = r.rows;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_IngestMapped)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::filesystem::remove_all(dataset_dir());
  return 0;
}
