// S03 — sampling profiler overhead: streaming pipeline throughput with
// the in-process CPU profiler off vs capturing at 99 Hz (the default
// production rate, deliberately offset from 100 Hz timer harmonics).
//
// The profiler's budget is "always-on cheap": per-thread CPU-time
// timers only fire while a thread is actually burning cycles, the
// signal handler walks frame pointers into a preallocated ring without
// taking locks or allocating, and symbolization is deferred to stop().
// The table reports records/sec for both modes and the relative
// overhead; the run FAILS (exit 1) when the profiled replay is more
// than 5% slower, so a regression that makes capture expensive (say, a
// lock or allocation sneaking into the handler) cannot land silently.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "obs/profile.hpp"
#include "sim/replay.hpp"
#include "stream/pipeline.hpp"

namespace {

using namespace failmine;

constexpr double kMaxOverhead = 0.05;  // 5% throughput budget at 99 Hz

const std::vector<stream::StreamRecord>& replay() {
  static const std::vector<stream::StreamRecord> records = [] {
    FAILMINE_TRACE_SPAN("bench.replay_build");
    return sim::build_replay(bench::dataset());
  }();
  return records;
}

stream::StreamConfig make_config() {
  stream::StreamConfig config;
  config.machine = bench::dataset_config().machine;
  config.shard_count = 4;
  config.policy = stream::BackpressurePolicy::kBlock;
  config.max_lateness_seconds = 0;  // replay is already event-time ordered
  return config;
}

/// One full replay; when `profiled` is set, the sampling profiler
/// captures at the default 99 Hz for the whole run. Returns records/sec.
double run_pipeline(bool profiled) {
  if (profiled) {
    obs::ProfileConfig config;
    config.hz = 99;
    if (!obs::Profiler::instance().start(config)) {
      std::fprintf(stderr, "FATAL: profiler failed to start\n");
      std::exit(1);
    }
  }

  stream::StreamPipeline pipeline(make_config());
  const auto start = std::chrono::steady_clock::now();
  std::vector<stream::StreamRecord> batch;
  const auto& records = replay();
  for (std::size_t i = 0; i < records.size();) {
    const std::size_t n = std::min<std::size_t>(1024, records.size() - i);
    batch.assign(records.begin() + i, records.begin() + i + n);
    pipeline.push_batch(std::move(batch));
    i += n;
  }
  pipeline.finish();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto snap = pipeline.snapshot();
  if (profiled) {
    const obs::ProfileReport report = obs::Profiler::instance().stop();
    if (report.samples == 0) {
      std::fprintf(stderr, "FATAL: profiled replay captured no samples\n");
      std::exit(1);
    }
  }
  if (snap.records_dropped != 0) {
    std::fprintf(stderr, "FATAL: blocking policy dropped records\n");
    std::exit(1);
  }
  return static_cast<double>(snap.records_in) / secs;
}

void print_table() {
  bench::print_header("S03", "sampling profiler overhead",
                      "pipeline records/sec with the 99 Hz CPU profiler "
                      "capturing vs off");
  // Warm both paths once (simulator + handler install + symbol tables),
  // then interleave the modes and take the best of five each: a replay
  // run is short, so a single scheduler hiccup can cost more than the
  // whole profiling budget — best-of-N compares the two modes at their
  // undisturbed speed.
  (void)run_pipeline(false);
  (void)run_pipeline(true);
  double off = 0.0, on = 0.0;
  for (int round = 0; round < 5; ++round) {
    off = std::max(off, run_pipeline(false));
    on = std::max(on, run_pipeline(true));
  }
  const double overhead = (off - on) / off;
  std::printf("%-12s %14s\n", "mode", "records/s");
  std::printf("%-12s %14.0f\n", "profile off", off);
  std::printf("%-12s %14.0f\n", "profile on", on);
  std::printf("overhead: %.2f%% (budget %.0f%%)\n", 100.0 * overhead,
              100.0 * kMaxOverhead);
  if (overhead > kMaxOverhead) {
    std::fprintf(stderr,
                 "FATAL: profiling overhead %.2f%% exceeds the %.0f%% budget\n",
                 100.0 * overhead, 100.0 * kMaxOverhead);
    std::exit(1);
  }
}

void BM_StreamReplayProfileOff(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_pipeline(false));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(replay().size()));
}
BENCHMARK(BM_StreamReplayProfileOff)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_StreamReplayProfileOn(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_pipeline(true));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(replay().size()));
}
BENCHMARK(BM_StreamReplayProfileOn)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
