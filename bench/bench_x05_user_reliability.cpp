// X05 (extension) — user-perceived reliability.
// The machine-level MTTI is not what a user experiences: interruption
// exposure follows node-time. This bench reports per-user system-kill
// rates and the exposure/kill correlation.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/user_reliability.hpp"
#include "util/strings.hpp"

namespace {

using namespace failmine;

void print_table() {
  const auto& a = bench::analyzer();
  bench::print_header("X05", "user-perceived reliability",
                      "extension: per-user system-kill exposure");
  const auto study = core::user_reliability_study(a.jobs(), a.machine());
  std::printf("users: %zu, of which %llu experienced a system kill\n",
              study.users.size(),
              static_cast<unsigned long long>(study.users_with_kills));
  std::printf("machine-wide exposure per kill: %.3e node-days\n",
              study.machine_node_days_per_kill);
  std::printf("exposure vs kills Spearman rho: %.3f\n",
              study.exposure_kill_correlation);
  std::printf("core-hours lost to system kills: %.3e\n",
              study.total_lost_core_hours);

  std::printf("\ntop 10 users by exposure:\n");
  std::printf("  %-8s %8s %10s %14s %8s %12s\n", "user", "jobs", "kills",
              "node-days", "lost%", "nd/kill");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, study.users.size());
       ++i) {
    const auto& u = study.users[i];
    std::printf("  %-8u %8llu %10llu %14.3e %7.2f%% %12s\n", u.user_id,
                static_cast<unsigned long long>(u.jobs),
                static_cast<unsigned long long>(u.system_kills), u.node_days,
                100.0 * u.loss_fraction(),
                u.system_kills > 0
                    ? util::format_double(u.node_days_between_kills, 0).c_str()
                    : "inf");
  }
}

void BM_UserReliability(benchmark::State& state) {
  const auto& a = bench::analyzer();
  for (auto _ : state) {
    auto study = core::user_reliability_study(a.jobs(), a.machine());
    benchmark::DoNotOptimize(study);
  }
}
BENCHMARK(BM_UserReliability)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
