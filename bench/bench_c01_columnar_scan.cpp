// C01: columnar scan kernels vs the row-oriented scans at 100M rows.
//
// Not a paper experiment — this is the performance gate for the
// columnar record store (ROADMAP item 1). It generates a synthetic
// 100M-row job stream (sim/synthetic.hpp) into BOTH representations,
// runs the E02 exit breakdown and the E03 per-user aggregation on each,
// checks the columnar results are bit-identical to the row results
// (exact counts AND exact f64 sums — the kernels promise the same
// accumulation order), and requires the columnar scans to be at least
// 5x faster. Either failure is fatal: a silent parity break or a
// performance regression exits 1 so CI catches it.
//
// Row count: FAILMINE_C01_ROWS=<N> (default 100,000,000). The stored
// bytes/row of each representation are reported alongside the speedups
// because the speedup IS the memory-traffic ratio: E02 touches 9 bytes
// per row of the column store vs a ~112-byte JobRecord stride.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "analysis/user_stats.hpp"
#include "bench_common.hpp"
#include "columnar/analyses.hpp"
#include "columnar/builder.hpp"
#include "columnar/table.hpp"
#include "core/joint_analyzer.hpp"
#include "sim/synthetic.hpp"
#include "topology/machine.hpp"

namespace {

using namespace failmine;

std::uint64_t c01_rows() {
  static const std::uint64_t rows = [] {
    constexpr std::uint64_t kDefault = 100'000'000;
    if (const char* env = std::getenv("FAILMINE_C01_ROWS")) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0' && n > 0) return static_cast<std::uint64_t>(n);
      std::fprintf(stderr, "C01: ignoring bad FAILMINE_C01_ROWS=%s\n", env);
    }
    return kDefault;
  }();
  return rows;
}

sim::SyntheticJobStreamConfig stream_config() {
  sim::SyntheticJobStreamConfig config;
  config.rows = c01_rows();
  return config;
}

const topology::MachineConfig& machine() {
  static const topology::MachineConfig config{};
  return config;
}

const std::vector<joblog::JobRecord>& row_jobs() {
  static const std::vector<joblog::JobRecord> jobs = [] {
    FAILMINE_TRACE_SPAN("c01.build_rows");
    std::vector<joblog::JobRecord> v;
    v.reserve(c01_rows());
    sim::generate_job_stream(stream_config(),
                             [&](const joblog::JobRecord& j) { v.push_back(j); });
    return v;
  }();
  return jobs;
}

const columnar::JobTable& columnar_jobs() {
  static const columnar::JobTable table = [] {
    FAILMINE_TRACE_SPAN("c01.build_columnar");
    columnar::JobTableBuilder b;
    b.reserve(c01_rows());
    sim::generate_job_stream(stream_config(),
                             [&](const joblog::JobRecord& j) { b.add(j); });
    std::vector<columnar::JobTableBuilder> chunks;
    chunks.push_back(std::move(b));
    return columnar::JobTableBuilder::merge(std::move(chunks));
  }();
  return table;
}

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "C01 FATAL: %s\n", what);
  std::exit(1);
}

/// Wall time of the best of `reps` runs of `fn` (cold caches dominate
/// run 1; the best run is the steady-state scan cost).
template <class Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    if (dt.count() < best) best = dt.count();
  }
  return best;
}

void check_e02_parity(const core::ExitBreakdown& row,
                      const core::ExitBreakdown& col) {
  if (row.total_jobs != col.total_jobs) fail("E02 total_jobs mismatch");
  if (row.total_failures != col.total_failures)
    fail("E02 total_failures mismatch");
  if (row.user_caused_share != col.user_caused_share)
    fail("E02 user_caused_share mismatch");
  if (row.system_caused_share != col.system_caused_share)
    fail("E02 system_caused_share mismatch");
  if (row.rows.size() != col.rows.size()) fail("E02 row count mismatch");
  for (std::size_t i = 0; i < row.rows.size(); ++i) {
    const core::ExitBreakdownRow& a = row.rows[i];
    const core::ExitBreakdownRow& b = col.rows[i];
    if (a.exit_class != b.exit_class) fail("E02 exit_class mismatch");
    if (a.jobs != b.jobs) fail("E02 per-class jobs mismatch");
    if (a.core_hours != b.core_hours)
      fail("E02 per-class core_hours mismatch (f64 bit parity)");
    if (a.share_of_jobs != b.share_of_jobs) fail("E02 share_of_jobs mismatch");
    if (a.share_of_failures != b.share_of_failures)
      fail("E02 share_of_failures mismatch");
  }
}

void check_e03_parity(const std::vector<analysis::GroupStats>& row,
                      const std::vector<analysis::GroupStats>& col) {
  if (row.size() != col.size()) fail("E03 group count mismatch");
  for (std::size_t i = 0; i < row.size(); ++i) {
    const analysis::GroupStats& a = row[i];
    const analysis::GroupStats& b = col[i];
    if (a.group_id != b.group_id) fail("E03 group_id mismatch");
    if (a.jobs != b.jobs) fail("E03 jobs mismatch");
    if (a.failures != b.failures) fail("E03 failures mismatch");
    if (a.user_caused_failures != b.user_caused_failures)
      fail("E03 user_caused_failures mismatch");
    if (a.system_caused_failures != b.system_caused_failures)
      fail("E03 system_caused_failures mismatch");
    if (a.core_hours != b.core_hours)
      fail("E03 core_hours mismatch (f64 bit parity)");
    if (a.failed_core_hours != b.failed_core_hours)
      fail("E03 failed_core_hours mismatch (f64 bit parity)");
  }
}

void print_table() {
  const std::uint64_t n = c01_rows();
  std::printf("\n================================================================\n");
  std::printf("C01  columnar scan kernels vs row scans\n");
  std::printf("gate: columnar >= 5x on E02 and E03, bit-exact results\n");
  std::printf("rows: %llu (FAILMINE_C01_ROWS to override)\n",
              static_cast<unsigned long long>(n));
  std::printf("================================================================\n");

  const std::vector<joblog::JobRecord>& rows = row_jobs();
  const columnar::JobTable& table = columnar_jobs();
  if (rows.size() != n || table.rows() != n) fail("build row-count mismatch");

  const double row_bytes_per_row =
      static_cast<double>(rows.capacity() * sizeof(joblog::JobRecord)) /
      static_cast<double>(n);
  const double col_bytes_per_row =
      static_cast<double>(table.bytes()) / static_cast<double>(n);
  std::printf("\nstored bytes/row   row: %6.1f   columnar: %6.1f   (%.1fx smaller)\n",
              row_bytes_per_row, col_bytes_per_row,
              row_bytes_per_row / col_bytes_per_row);

  constexpr int kReps = 3;
  core::ExitBreakdown e02_row, e02_col;
  std::vector<analysis::GroupStats> e03_row, e03_col;

  const double t_e02_row =
      best_seconds(kReps, [&] { e02_row = core::exit_breakdown(rows, machine()); });
  const double t_e02_col = best_seconds(
      kReps, [&] { e02_col = columnar::exit_breakdown(table, machine()); });
  const double t_e03_row =
      best_seconds(kReps, [&] { e03_row = analysis::per_user_stats(rows, machine()); });
  const double t_e03_col = best_seconds(
      kReps, [&] { e03_col = columnar::per_user_stats(table, machine()); });

  check_e02_parity(e02_row, e02_col);
  check_e03_parity(e03_row, e03_col);
  std::printf("parity: E02 and E03 columnar results bit-identical to row results\n");

  const double ns = 1e9 / static_cast<double>(n);
  const double s_e02 = t_e02_row / t_e02_col;
  const double s_e03 = t_e03_row / t_e03_col;
  std::printf("\n%-22s %12s %12s %10s\n", "scan", "row", "columnar", "speedup");
  std::printf("%-22s %9.2f ns %9.2f ns %9.2fx\n", "E02 exit breakdown",
              t_e02_row * ns, t_e02_col * ns, s_e02);
  std::printf("%-22s %9.2f ns %9.2f ns %9.2fx\n", "E03 per-user stats",
              t_e03_row * ns, t_e03_col * ns, s_e03);
  std::printf("(per-row cost; best of %d runs each)\n", kReps);

  if (s_e02 < 5.0) fail("E02 columnar speedup below 5x gate");
  if (s_e03 < 5.0) fail("E03 columnar speedup below 5x gate");
  std::printf("gate: PASS (>= 5.0x on both scans)\n");
}

void BM_ColumnarExitBreakdown(benchmark::State& state) {
  const columnar::JobTable& table = columnar_jobs();
  for (auto _ : state) {
    core::ExitBreakdown b = columnar::exit_breakdown(table, machine());
    benchmark::DoNotOptimize(b);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(table.rows()));
}
BENCHMARK(BM_ColumnarExitBreakdown)->Unit(benchmark::kMillisecond);

void BM_ColumnarPerUserStats(benchmark::State& state) {
  const columnar::JobTable& table = columnar_jobs();
  for (auto _ : state) {
    std::vector<analysis::GroupStats> s =
        columnar::per_user_stats(table, machine());
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(table.rows()));
}
BENCHMARK(BM_ColumnarPerUserStats)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
