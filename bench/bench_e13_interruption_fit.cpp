// E13 — Fig/Table: distribution fit of the intervals between filtered
// system interruptions.
// Paper claim (T-C, interruption intervals): the best-fitting families
// include Weibull, Pareto, inverse Gaussian and Erlang/exponential.
// Idle-uniform interruptions over a long window should look close to
// exponential/Weibull-shape~1.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/distfit_study.hpp"

namespace {

using namespace failmine;

void print_table() {
  const auto& a = bench::analyzer();
  bench::print_header("E13", "interruption-interval distribution fit",
                      "Fig: inter-interruption times after filtering (T-C)");
  const auto row = a.interruption_interval_fit(core::FilterConfig{});
  std::printf("intervals: %zu\n", row.sample_size);
  std::printf("%-18s %8s %10s %10s %10s   params\n", "family", "KS D",
              "p-value", "AIC", "BIC");
  for (const auto& fit : row.fits) {
    std::printf("%-18s %8.4f %10.3g %10.1f %10.1f  ",
                distfit::family_name(fit.family).c_str(), fit.ks.statistic,
                fit.ks.p_value, fit.aic, fit.bic);
    for (const auto& p : fit.dist->params())
      std::printf(" %s=%.4g", p.name.c_str(), p.value);
    std::printf("\n");
  }
  std::printf("best by KS:  %s\n",
              distfit::family_name(row.fits[row.best_by_ks].family).c_str());
  std::printf("best by AIC: %s\n",
              distfit::family_name(row.fits[row.best_by_aic].family).c_str());
  std::printf("best by BIC: %s\n",
              distfit::family_name(row.fits[row.best_by_bic].family).c_str());
}

void BM_IntervalFit(benchmark::State& state) {
  const auto& a = bench::analyzer();
  for (auto _ : state) {
    auto row = a.interruption_interval_fit(core::FilterConfig{});
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_IntervalFit)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
