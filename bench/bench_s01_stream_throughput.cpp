// S01 — streaming ingestion throughput: records/sec through the full
// pipeline (ingest ring -> watermark reorder -> router -> shard workers)
// for 1 vs N shards, under the lossless blocking backpressure policy.
//
// The shard workers carry the per-record aggregate cost (exit-class
// accounting, GK quantile insert, space-saving updates), so on a
// multi-core host throughput should scale with the shard count until the
// single router thread saturates. The table reports the measured
// records/sec per shard count, the speedup over one shard, and asserts
// zero drops (blocking producers must never lose records).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "sim/replay.hpp"
#include "stream/pipeline.hpp"

namespace {

using namespace failmine;

const std::vector<stream::StreamRecord>& replay() {
  static const std::vector<stream::StreamRecord> records = [] {
    FAILMINE_TRACE_SPAN("bench.replay_build");
    return sim::build_replay(bench::dataset());
  }();
  return records;
}

stream::StreamConfig make_config(std::size_t shards) {
  stream::StreamConfig config;
  config.machine = bench::dataset_config().machine;
  config.shard_count = shards;
  config.policy = stream::BackpressurePolicy::kBlock;
  config.max_lateness_seconds = 0;  // replay is already event-time ordered
  return config;
}

/// One full pipeline run; returns the final snapshot for the drop check.
stream::StreamSnapshot run_pipeline(std::size_t shards) {
  stream::StreamPipeline pipeline(make_config(shards));
  std::vector<stream::StreamRecord> batch;
  const auto& records = replay();
  for (std::size_t i = 0; i < records.size();) {
    const std::size_t n = std::min<std::size_t>(1024, records.size() - i);
    batch.assign(records.begin() + i, records.begin() + i + n);
    pipeline.push_batch(std::move(batch));
    i += n;
  }
  pipeline.finish();
  return pipeline.snapshot();
}

void print_table() {
  bench::print_header("S01", "streaming pipeline throughput",
                      "records/sec for 1 vs N shard workers (blocking policy)");
  std::printf("host concurrency: %u hardware threads\n",
              std::thread::hardware_concurrency());
  std::printf("%-8s %14s %14s %10s %8s\n", "shards", "records", "records/s",
              "speedup", "drops");
  double base_rate = 0.0;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const auto start = std::chrono::steady_clock::now();
    const auto snap = run_pipeline(shards);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double rate = static_cast<double>(snap.records_in) / secs;
    if (shards == 1) base_rate = rate;
    std::printf("%-8zu %14llu %14.0f %9.2fx %8llu\n", shards,
                static_cast<unsigned long long>(snap.records_in), rate,
                rate / base_rate,
                static_cast<unsigned long long>(snap.records_dropped));
    if (snap.records_dropped != 0) {
      std::fprintf(stderr, "FATAL: blocking policy dropped records\n");
      std::exit(1);
    }
  }
}

void BM_StreamPipeline(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto snap = run_pipeline(shards);
    benchmark::DoNotOptimize(snap);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(replay().size()));
}
BENCHMARK(BM_StreamPipeline)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_RingBuffer(benchmark::State& state) {
  // Raw queue cost floor: one producer, one consumer, no analysis work.
  for (auto _ : state) {
    stream::RingBuffer<int> ring(1 << 12, stream::BackpressurePolicy::kBlock);
    std::thread consumer([&] {
      std::vector<int> out;
      out.reserve(256);
      while (ring.pop_batch(out, 256) > 0) out.clear();
    });
    std::vector<int> batch;
    for (int i = 0; i < 1 << 16; i += 256) {
      batch.assign(256, i);
      ring.push_batch(std::move(batch));
    }
    ring.close();
    consumer.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (1 << 16));
}
BENCHMARK(BM_RingBuffer)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
