// E12 — Fig: I/O behaviour of failed vs successful jobs (Darshan join).
// The paper contrasts the I/O volumes of the two populations; failed jobs
// record less written output (lost final checkpoints).

#include <benchmark/benchmark.h>

#include "analysis/io_behavior.hpp"
#include "bench_common.hpp"
#include "stats/ecdf.hpp"

namespace {

using namespace failmine;

void print_table() {
  const auto& a = bench::analyzer();
  bench::print_header("E12", "I/O behaviour of failed vs successful jobs",
                      "Fig: per-job bytes read/written by outcome");
  const auto c = analysis::compare_io(a.jobs(), a.io());
  std::printf("%-26s %16s %16s\n", "metric", "successful", "failed");
  std::printf("%-26s %16llu %16llu\n", "jobs",
              static_cast<unsigned long long>(c.successful.jobs_total),
              static_cast<unsigned long long>(c.failed.jobs_total));
  std::printf("%-26s %15.1f%% %15.1f%%\n", "Darshan coverage",
              100.0 * c.successful.coverage, 100.0 * c.failed.coverage);
  std::printf("%-26s %16.3e %16.3e\n", "median bytes read",
              c.successful.median_read_bytes, c.failed.median_read_bytes);
  std::printf("%-26s %16.3e %16.3e\n", "median bytes written",
              c.successful.median_write_bytes, c.failed.median_write_bytes);
  std::printf("%-26s %16.3e %16.3e\n", "mean bytes written",
              c.successful.mean_write_bytes, c.failed.mean_write_bytes);
  std::printf("failed/successful median write ratio: %.2f (< 1: lost checkpoints)\n",
              c.write_median_ratio());

  // ECDF deciles of written bytes, the figure's two curves.
  const auto ok = analysis::write_bytes_sample(a.jobs(), a.io(), false);
  const auto bad = analysis::write_bytes_sample(a.jobs(), a.io(), true);
  const stats::Ecdf f_ok(ok), f_bad(bad);
  std::printf("\nwritten-bytes quantiles (successful | failed):\n");
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99})
    std::printf("  p%-4.0f %12.3e | %12.3e\n", 100.0 * p, f_ok.quantile(p),
                f_bad.quantile(p));
}

void BM_CompareIo(benchmark::State& state) {
  const auto& a = bench::analyzer();
  for (auto _ : state) {
    auto c = analysis::compare_io(a.jobs(), a.io());
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CompareIo)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
