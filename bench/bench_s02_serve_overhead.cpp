// S02 — telemetry serving overhead: streaming pipeline throughput with
// the embedded HTTP endpoint off vs on (scraped at ~1 Hz, the cadence a
// Prometheus scrape job would use).
//
// The instrumentation budget for the serve subsystem is "free at replay
// speed": the /metrics renderer samples the registry under one short
// lock hold and the handler pool runs off the hot path, so a live
// scraper must not cost measurable pipeline throughput. The table
// reports records/sec for both modes and the relative overhead; the run
// FAILS (exit 1) when the scraped run is more than 3% slower, so a
// regression that drags the endpoint into the hot path cannot land
// silently.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/serve.hpp"
#include "sim/replay.hpp"
#include "stream/pipeline.hpp"

namespace {

using namespace failmine;

constexpr double kMaxOverhead = 0.03;  // 3% throughput budget for serving

const std::vector<stream::StreamRecord>& replay() {
  static const std::vector<stream::StreamRecord> records = [] {
    FAILMINE_TRACE_SPAN("bench.replay_build");
    return sim::build_replay(bench::dataset());
  }();
  return records;
}

stream::StreamConfig make_config() {
  stream::StreamConfig config;
  config.machine = bench::dataset_config().machine;
  config.shard_count = 4;
  config.policy = stream::BackpressurePolicy::kBlock;
  config.max_lateness_seconds = 0;  // replay is already event-time ordered
  return config;
}

/// One full replay; when `serve` is set, a TelemetryServer runs for the
/// duration and a client thread scrapes /metrics + /healthz at ~1 Hz.
/// Returns records/sec.
double run_pipeline(bool serve) {
  stream::StreamPipeline pipeline(make_config());

  std::unique_ptr<obs::TelemetryServer> server;
  std::thread scraper;
  std::atomic<bool> stop_scraper{false};
  std::atomic<std::uint64_t> scrapes{0};
  if (serve) {
    server = std::make_unique<obs::TelemetryServer>();
    server->set_snapshot_handler(
        [&pipeline] { return pipeline.snapshot().to_json(); });
    server->set_health_handler([&pipeline] { return pipeline.healthy(); });
    server->start();
    scraper = std::thread([&, port = server->port()] {
      while (!stop_scraper.load(std::memory_order_relaxed)) {
        if (obs::http_get(port, "/metrics").status == 200 &&
            obs::http_get(port, "/healthz").status == 200)
          scrapes.fetch_add(1, std::memory_order_relaxed);
        for (int i = 0; i < 100 && !stop_scraper.load(); ++i)
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<stream::StreamRecord> batch;
  const auto& records = replay();
  for (std::size_t i = 0; i < records.size();) {
    const std::size_t n = std::min<std::size_t>(1024, records.size() - i);
    batch.assign(records.begin() + i, records.begin() + i + n);
    pipeline.push_batch(std::move(batch));
    i += n;
  }
  pipeline.finish();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto snap = pipeline.snapshot();
  if (serve) {
    stop_scraper.store(true);
    scraper.join();
    server->stop();
    if (scrapes.load() == 0) {
      std::fprintf(stderr, "FATAL: scraper never completed a scrape\n");
      std::exit(1);
    }
  }
  if (snap.records_dropped != 0) {
    std::fprintf(stderr, "FATAL: blocking policy dropped records\n");
    std::exit(1);
  }
  return static_cast<double>(snap.records_in) / secs;
}

void print_table() {
  bench::print_header("S02", "telemetry serving overhead",
                      "pipeline records/sec with /metrics scraped at 1 Hz "
                      "vs unobserved");
  // Warm both paths once (simulator + lazy instrument creation), then
  // interleave the modes and take the best of five each: a replay run is
  // short, so on a small host a single scheduler hiccup can cost more
  // than the whole serving budget — best-of-N compares the two modes at
  // their undisturbed speed.
  (void)run_pipeline(false);
  (void)run_pipeline(true);
  double off = 0.0, on = 0.0;
  for (int round = 0; round < 5; ++round) {
    off = std::max(off, run_pipeline(false));
    on = std::max(on, run_pipeline(true));
  }
  const double overhead = (off - on) / off;
  std::printf("%-12s %14s\n", "mode", "records/s");
  std::printf("%-12s %14.0f\n", "serve off", off);
  std::printf("%-12s %14.0f\n", "serve on", on);
  std::printf("overhead: %.2f%% (budget %.0f%%)\n", 100.0 * overhead,
              100.0 * kMaxOverhead);
  if (overhead > kMaxOverhead) {
    std::fprintf(stderr,
                 "FATAL: serving overhead %.2f%% exceeds the %.0f%% budget\n",
                 100.0 * overhead, 100.0 * kMaxOverhead);
    std::exit(1);
  }
}

void BM_StreamReplayServeOff(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_pipeline(false));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(replay().size()));
}
BENCHMARK(BM_StreamReplayServeOff)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_StreamReplayServeOn(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_pipeline(true));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(replay().size()));
}
BENCHMARK(BM_StreamReplayServeOn)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
