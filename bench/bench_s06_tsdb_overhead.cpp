// S06 — embedded time-series store overhead and fidelity: streaming
// pipeline throughput with the tsdb scraper off vs scraping every
// registry instrument at 1 Hz, plus a virtual-clock fidelity pass over
// a full replay.
//
// Three gates (exit 1 on violation, so regressions cannot land
// silently):
//
//   1. overhead   — the scraped replay may be at most 5% slower than
//                   the bare one (best-of-5, interleaved, like S05);
//   2. footprint  — the compressed store must average < 2 bytes per
//                   raw sample at a 1 s scrape over the whole replay;
//   3. fidelity   — rate()/increase() over tiled 1 m windows of
//                   `stream.records_processed` must reconcile EXACTLY
//                   with the cumulative counter: Gorilla compression is
//                   lossless and the windowed math telescopes, so the
//                   sum of windowed increases equals the final counter
//                   delta bit-for-bit.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/tsdb.hpp"
#include "sim/replay.hpp"
#include "stream/pipeline.hpp"

namespace {

using namespace failmine;

constexpr double kMaxOverhead = 0.05;       // 5% budget at a 1 s scrape
constexpr double kMaxBytesPerSample = 2.0;  // compressed footprint gate

const std::vector<stream::StreamRecord>& replay() {
  static const std::vector<stream::StreamRecord> records = [] {
    FAILMINE_TRACE_SPAN("bench.replay_build");
    return sim::build_replay(bench::dataset());
  }();
  return records;
}

stream::StreamConfig make_config() {
  stream::StreamConfig config;
  config.machine = bench::dataset_config().machine;
  config.shard_count = 4;
  config.policy = stream::BackpressurePolicy::kBlock;
  config.max_lateness_seconds = 0;  // replay is already event-time ordered
  config.trace_sample_period = 0;
  return config;
}

/// One full replay; with `scraped` the global store samples every
/// instrument at 1 Hz in the background. Returns records/sec.
double run_pipeline(bool scraped) {
  if (scraped) obs::tsdb().start(/*interval_ms=*/1000);

  stream::StreamPipeline pipeline(make_config());
  const auto start = std::chrono::steady_clock::now();
  std::vector<stream::StreamRecord> batch;
  const auto& records = replay();
  for (std::size_t i = 0; i < records.size();) {
    const std::size_t n = std::min<std::size_t>(1024, records.size() - i);
    batch.assign(records.begin() + i, records.begin() + i + n);
    pipeline.push_batch(std::move(batch));
    i += n;
  }
  pipeline.finish();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (scraped) obs::tsdb().stop();
  const auto snap = pipeline.snapshot();
  if (snap.records_dropped != 0) {
    std::fprintf(stderr, "FATAL: blocking policy dropped records\n");
    std::exit(1);
  }
  return static_cast<double>(snap.records_in) / secs;
}

/// Virtual-clock fidelity pass: a private store scrapes the global
/// registry once per pushed batch at a synthetic 1 s cadence, so the
/// stored history is deterministic regardless of wall-clock speed.
/// Checks the footprint and exact-reconciliation gates.
void run_fidelity_pass() {
  constexpr std::int64_t kT0 = 1'700'000'040'000;
  constexpr std::int64_t kWindowMs = 60'000;
  const double counter_before = static_cast<double>(
      obs::metrics().counter("stream.records_processed").value());

  obs::TsdbStore store;  // defaults scrape the global metrics()
  std::int64_t t = kT0;
  store.scrape_once(t);  // baseline before any traffic

  stream::StreamPipeline pipeline(make_config());
  std::vector<stream::StreamRecord> batch;
  const auto& records = replay();
  for (std::size_t i = 0; i < records.size();) {
    const std::size_t n = std::min<std::size_t>(1024, records.size() - i);
    batch.assign(records.begin() + i, records.begin() + i + n);
    pipeline.push_batch(std::move(batch));
    i += n;
    store.scrape_once(t += 1000);
  }
  pipeline.finish();
  store.scrape_once(t += 1000);  // end state after the drain

  const auto stats = store.stats();
  const double bytes_per_sample =
      static_cast<double>(stats.raw_bytes_written) /
      static_cast<double>(stats.samples);

  // Tile 1 m windows over the whole span (rounded up to a whole number
  // of windows past the newest sample; empty trailing windows
  // contribute 0 by the telescoping baseline rule).
  const std::int64_t span = t - kT0;
  const std::int64_t windows = (span + kWindowMs - 1) / kWindowMs;
  double tiled = 0.0;
  for (std::int64_t w = 1; w <= windows; ++w) {
    const auto inc = store.increase_over("stream.records_processed",
                                         kT0 + w * kWindowMs, kWindowMs);
    if (inc) tiled += inc->increase;
  }
  const double counter_after = static_cast<double>(
      obs::metrics().counter("stream.records_processed").value());
  const double expect = counter_after - counter_before;

  std::printf("fidelity: %zu series, %llu samples, %.3f B/sample "
              "(budget %.1f)\n",
              stats.series, static_cast<unsigned long long>(stats.samples),
              bytes_per_sample, kMaxBytesPerSample);
  std::printf("reconcile: sum(increase[1m]) = %.0f, counter delta = %.0f, "
              "replayed = %zu\n",
              tiled, expect, records.size());
  if (bytes_per_sample >= kMaxBytesPerSample) {
    std::fprintf(stderr,
                 "FATAL: %.3f bytes/sample exceeds the %.1f budget\n",
                 bytes_per_sample, kMaxBytesPerSample);
    std::exit(1);
  }
  if (tiled != expect) {  // exact: lossless codec + telescoping windows
    std::fprintf(stderr,
                 "FATAL: windowed increases (%.6f) do not reconcile with "
                 "the cumulative counter (%.6f)\n",
                 tiled, expect);
    std::exit(1);
  }
}

void print_table() {
  bench::print_header("S06", "time-series store overhead",
                      "pipeline records/sec with the 1 Hz tsdb scraper on "
                      "vs off, plus compression/fidelity gates");
  // Warm both paths once, then interleave best-of-5 (see S05 for why).
  (void)run_pipeline(false);
  (void)run_pipeline(true);
  double off = 0.0, on = 0.0;
  for (int round = 0; round < 5; ++round) {
    off = std::max(off, run_pipeline(false));
    on = std::max(on, run_pipeline(true));
  }
  const double overhead = (off - on) / off;
  std::printf("%-12s %14s\n", "mode", "records/s");
  std::printf("%-12s %14.0f\n", "scrape off", off);
  std::printf("%-12s %14.0f\n", "scrape 1s", on);
  std::printf("overhead: %.2f%% (budget %.0f%%)\n", 100.0 * overhead,
              100.0 * kMaxOverhead);
  if (overhead > kMaxOverhead) {
    std::fprintf(stderr,
                 "FATAL: tsdb scrape overhead %.2f%% exceeds the %.0f%% "
                 "budget\n",
                 100.0 * overhead, 100.0 * kMaxOverhead);
    std::exit(1);
  }
  run_fidelity_pass();
}

void BM_StreamReplayScrapeOff(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_pipeline(false));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(replay().size()));
}
BENCHMARK(BM_StreamReplayScrapeOff)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_StreamReplayScrapeOn(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_pipeline(true));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(replay().size()));
}
BENCHMARK(BM_StreamReplayScrapeOn)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
