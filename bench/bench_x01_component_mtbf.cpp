// X01 (extension) — MTBF by component/category and system availability.
// Extends E08 along the paper's RAS discussion: which subsystems drive
// the interruption rate, and what the interruptions cost in availability.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/mtbf.hpp"

namespace {

using namespace failmine;

void print_table() {
  const auto& a = bench::analyzer();
  bench::print_header("X01", "MTBF by component/category + availability",
                      "extension of E08 (per-subsystem interruption rates)");
  const auto filtered = a.interruption_analysis(core::FilterConfig{});
  const auto begin = a.window_begin();
  const auto end = a.window_end();
  const double s = bench::dataset_config().scale;

  std::printf("%-12s %14s %16s %8s\n", "component", "interruptions",
              "MTBF (paper d)", "share");
  for (const auto& [component, row] :
       core::mtbf_by_component(filtered.filter.clusters, begin, end)) {
    std::printf("%-12s %14llu %16.1f %7.1f%%\n",
                raslog::component_name(component).c_str(),
                static_cast<unsigned long long>(row.interruptions),
                row.mtbf_days * s, 100.0 * row.share);
  }
  std::printf("\n%-12s %14s %16s %8s\n", "category", "interruptions",
              "MTBF (paper d)", "share");
  for (const auto& [category, row] :
       core::mtbf_by_category(filtered.filter.clusters, begin, end)) {
    std::printf("%-12s %14llu %16.1f %7.1f%%\n",
                raslog::category_name(category).c_str(),
                static_cast<unsigned long long>(row.interruptions),
                row.mtbf_days * s, 100.0 * row.share);
  }

  std::printf("\navailability (MTTR sweep, midplane blast radius):\n");
  std::printf("  %-12s %14s %14s\n", "MTTR (h)", "lost mp-hours",
              "availability");
  for (double mttr : {1.0, 4.0, 8.0, 24.0}) {
    core::AvailabilityConfig config;
    config.mean_repair_hours = mttr;
    const auto r = core::estimate_availability(
        filtered.filter.clusters, a.machine(), begin, end, config);
    std::printf("  %-12.1f %14.1f %13.5f%%\n", mttr, r.lost_midplane_hours,
                100.0 * r.availability);
  }
  std::printf("(note: at scale %.3g the trace has 1/%.0f of the paper's\n"
              " interruptions, so trace availability is optimistic by the\n"
              " same factor; MTBF columns above are already rescaled)\n",
              s, 1.0 / s);
}

void BM_MtbfByComponent(benchmark::State& state) {
  const auto& a = bench::analyzer();
  const auto filtered = a.interruption_analysis(core::FilterConfig{});
  for (auto _ : state) {
    auto rows = core::mtbf_by_component(filtered.filter.clusters,
                                        a.window_begin(), a.window_end());
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_MtbfByComponent);

void BM_Availability(benchmark::State& state) {
  const auto& a = bench::analyzer();
  const auto filtered = a.interruption_analysis(core::FilterConfig{});
  for (auto _ : state) {
    auto r = core::estimate_availability(filtered.filter.clusters, a.machine(),
                                         a.window_begin(), a.window_end());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Availability);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
