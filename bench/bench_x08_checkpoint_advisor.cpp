// X08 (extension) — checkpoint-interval advisor.
// Converts the measured system hazard into Young/Daly-optimal checkpoint
// intervals per allocation size, with the expected waste at the optimum
// versus running a long job bare.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/checkpoint.hpp"

namespace {

using namespace failmine;

void print_table() {
  const auto& a = bench::analyzer();
  bench::print_header("X08", "checkpoint-interval advisor",
                      "extension: Young/Daly optima from the measured hazard");
  const auto hazard = core::estimate_hazard(a.jobs());
  std::printf("measured hazard: %llu system kills over %.3e node-seconds "
              "= %.3e per node-second\n",
              static_cast<unsigned long long>(hazard.system_kills),
              hazard.node_seconds, hazard.per_node_second);
  std::printf("(checkpoint write assumed %.0f s; bare-run comparison at "
              "%.0f h)\n\n",
              predict::kCheckpointWriteSeconds,
              predict::kReferenceRuntimeSeconds / 3600.0);

  const auto& advice = bench::checkpoint_advice();
  std::printf("%-10s %14s %16s %12s %12s\n", "nodes", "job MTBF (h)",
              "ckpt every (h)", "waste@opt", "waste bare");
  for (const auto& row : advice) {
    std::printf("%-10u %14.1f %16.2f %11.2f%% %11.2f%%\n", row.nodes,
                row.job_mtbf_hours, row.optimal_interval_hours,
                100.0 * row.waste_at_optimum, 100.0 * row.waste_without);
  }
  std::printf("\nReading: the optimal interval shrinks as sqrt(1/nodes).\n"
              "At this hazard the crossover sits around 2k-4k nodes: below\n"
              "it a 48 h bare run loses less than the checkpoint overhead\n"
              "costs; above it checkpointing wins decisively (full-machine\n"
              "jobs: ~26%% expected loss bare vs ~7%% checkpointed).\n");
}

void BM_RecommendCheckpoints(benchmark::State& state) {
  const auto& a = bench::analyzer();
  for (auto _ : state) {
    auto advice = core::recommend_checkpoints(
        a.jobs(), predict::kCheckpointWriteSeconds,
        predict::kReferenceRuntimeSeconds);
    benchmark::DoNotOptimize(advice);
  }
}
BENCHMARK(BM_RecommendCheckpoints)->Unit(benchmark::kMillisecond);

void BM_DalyInterval(benchmark::State& state) {
  double mtbf = 1e5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::daly_interval(600.0, mtbf));
    mtbf += 1.0;
  }
}
BENCHMARK(BM_DalyInterval);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
