// X03 (extension) — bootstrap confidence intervals on the headline
// statistics: how much would the point estimates move under
// re-observation of the same system?

#include <benchmark/benchmark.h>

#include "analysis/user_stats.hpp"
#include "bench_common.hpp"
#include "core/distfit_study.hpp"
#include "stats/bootstrap.hpp"

namespace {

using namespace failmine;

void print_ci(const char* label, const stats::BootstrapResult& r,
              double rescale = 1.0) {
  std::printf("%-38s %10.4g  [%10.4g, %10.4g]  se=%.3g\n", label,
              r.point_estimate * rescale, r.lower * rescale,
              r.upper * rescale, r.standard_error * rescale);
}

void print_table() {
  const auto& a = bench::analyzer();
  const double s = bench::dataset_config().scale;
  bench::print_header("X03", "bootstrap confidence intervals",
                      "extension: 95% CIs on MTTI interval mean, Gini, medians");
  util::Rng rng(4242);
  constexpr std::size_t kReps = 1000;

  std::printf("%-38s %10s  %24s\n", "statistic (95% CI, 1000 reps)", "point",
              "interval");

  // Mean inter-interruption interval (paper-scale days).
  const auto filtered = a.interruption_analysis(core::FilterConfig{});
  if (filtered.mtti.intervals_days.size() >= 5) {
    const auto ci = stats::bootstrap_mean(filtered.mtti.intervals_days, kReps,
                                          0.95, rng);
    print_ci("mean interruption interval (d)", ci, s);
  }

  // Gini of failures per user.
  const auto users = analysis::per_user_stats(a.jobs(), a.machine());
  const auto failures =
      analysis::metric_column(users, analysis::GroupMetric::kFailures);
  print_ci("gini of failures per user",
           stats::bootstrap_gini(failures, kReps, 0.95, rng));

  // Median execution length of app-error failures (seconds).
  const auto app_sample =
      core::runtime_sample(a.jobs(), joblog::ExitClass::kUserAppError);
  print_ci("median app-error runtime (s)",
           stats::bootstrap_median(app_sample, kReps, 0.95, rng));

  // Median written bytes of failed jobs would need the io join; median
  // user-kill runtime instead exercises the heavy-tailed class.
  const auto kill_sample =
      core::runtime_sample(a.jobs(), joblog::ExitClass::kUserKill);
  print_ci("median user-kill runtime (s)",
           stats::bootstrap_median(kill_sample, kReps, 0.95, rng));
}

void BM_Bootstrap1000OnIntervals(benchmark::State& state) {
  const auto& a = bench::analyzer();
  const auto filtered = a.interruption_analysis(core::FilterConfig{});
  util::Rng rng(1);
  for (auto _ : state) {
    auto ci =
        stats::bootstrap_mean(filtered.mtti.intervals_days, 1000, 0.95, rng);
    benchmark::DoNotOptimize(ci);
  }
}
BENCHMARK(BM_Bootstrap1000OnIntervals)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
