// X04 (extension) — queue wait-time characterization of the scheduling
// log: wait vs allocation size, per queue, and failed vs successful jobs.

#include <benchmark/benchmark.h>

#include "analysis/queue_wait.hpp"
#include "bench_common.hpp"

namespace {

using namespace failmine;

void print_table() {
  const auto& a = bench::analyzer();
  bench::print_header("X04", "queue wait times",
                      "extension: scheduling-log wait characterization");
  std::printf("by allocation size (Spearman size-vs-median-wait rho = %.3f):\n",
              analysis::wait_scale_trend(a.jobs()));
  std::printf("  %-10s %8s %10s %10s %10s\n", "nodes", "jobs", "mean (s)",
              "median", "p90");
  for (const auto& [nodes, w] : analysis::wait_by_scale(a.jobs()))
    std::printf("  %-10u %8llu %10.0f %10.0f %10.0f\n", nodes,
                static_cast<unsigned long long>(w.jobs), w.mean_wait_seconds,
                w.median_wait_seconds, w.p90_wait_seconds);

  std::printf("\nby queue:\n");
  for (const auto& [queue, w] : analysis::wait_by_queue(a.jobs()))
    std::printf("  %-18s jobs=%-8llu median=%.0fs p90=%.0fs\n", queue.c_str(),
                static_cast<unsigned long long>(w.jobs),
                w.median_wait_seconds, w.p90_wait_seconds);

  const auto outcome = analysis::wait_by_outcome(a.jobs());
  std::printf("\nby outcome: successful median=%.0fs, failed median=%.0fs\n",
              outcome.successful.median_wait_seconds,
              outcome.failed.median_wait_seconds);
}

void BM_WaitByScale(benchmark::State& state) {
  const auto& a = bench::analyzer();
  for (auto _ : state) {
    auto w = analysis::wait_by_scale(a.jobs());
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_WaitByScale)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
