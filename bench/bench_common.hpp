// Shared infrastructure for the experiment harness.
//
// Every bench binary regenerates one table/figure of the paper (see
// DESIGN.md's per-experiment index): it first prints the table the paper
// reports, then runs google-benchmark timings of the underlying analysis
// so the cost of each pipeline stage is tracked too.
//
// The dataset is a deterministic simulated Mira trace at 1/10 paper
// scale (override with FAILMINE_BENCH_SCALE=<float> in the environment;
// scale 1.0 regenerates the paper-sized trace, ~500k jobs / ~5M events).

#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/joint_analyzer.hpp"
#include "sim/simulator.hpp"

namespace failmine::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("FAILMINE_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) return s;
  }
  return 0.1;
}

inline const sim::SimConfig& dataset_config() {
  static const sim::SimConfig config = [] {
    sim::SimConfig c;
    c.scale = bench_scale();
    return c;
  }();
  return config;
}

inline const sim::SimResult& dataset() {
  static const sim::SimResult result = sim::simulate(dataset_config());
  return result;
}

inline const core::JointAnalyzer& analyzer() {
  static const core::JointAnalyzer instance(
      dataset().job_log, dataset().task_log, dataset().ras_log,
      dataset().io_log, dataset_config().machine);
  return instance;
}

inline void print_header(const char* experiment, const char* title,
                         const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s  %s\n", experiment, title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("trace: scale=%.3g seed=%llu (%d days)\n", dataset_config().scale,
              static_cast<unsigned long long>(dataset_config().seed),
              dataset_config().observation_days);
  std::printf("================================================================\n");
}

/// Rescales a trace-level count to its paper-scale equivalent.
inline double to_paper_scale(double measured) {
  return measured / dataset_config().scale;
}

}  // namespace failmine::bench
