// Shared infrastructure for the experiment harness.
//
// Every bench binary regenerates one table/figure of the paper (see
// DESIGN.md's per-experiment index): it first prints the table the paper
// reports, then runs google-benchmark timings of the underlying analysis
// so the cost of each pipeline stage is tracked too.
//
// The dataset is a deterministic simulated Mira trace at 1/10 paper
// scale (override with FAILMINE_BENCH_SCALE=<float> in the environment;
// scale 1.0 regenerates the paper-sized trace, ~500k jobs / ~5M events).

#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "analysis/cooccurrence.hpp"
#include "columnar/builder.hpp"
#include "columnar/engine.hpp"
#include "core/checkpoint.hpp"
#include "core/joint_analyzer.hpp"
#include "core/lead_time.hpp"
#include "obs/log.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "predict/config.hpp"
#include "sim/simulator.hpp"

namespace failmine::bench {

/// Per-binary observability bootstrap for the bench mains. Construct it
/// first thing in main(), BEFORE benchmark::Initialize, so the shared
/// obs flags (--log-level, --metrics-out, --trace-out, --profile-out)
/// are stripped from argv before google-benchmark rejects them. On
/// destruction it prints the per-phase wall-time breakdown of everything
/// traced during the run (dataset build, each analysis span, benchmark
/// iterations) and writes the JSON exports if requested. Setting
/// FAILMINE_PROFILE=out.folded[:HZ] in the environment (handled by the
/// wrapped obs::ObsSession) CPU-profiles the whole bench run and writes
/// flamegraph-ready folded stacks next to the table output.
/// Backend switch for the experiment benches: --columnar (stripped from
/// argv by ObsSession before google-benchmark sees it) or
/// FAILMINE_COLUMNAR=1 in the environment runs the shared analyses on
/// the SoA tables and vectorized kernels instead of the row containers.
inline bool& columnar_backend() {
  static bool enabled = [] {
    const char* env = std::getenv("FAILMINE_COLUMNAR");
    return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
  }();
  return enabled;
}

inline const char* backend_name() {
  return columnar_backend() ? "columnar" : "row";
}

class ObsSession {
 public:
  ObsSession(int* argc, char** argv) : inner_(argc, argv) {
    // Strip --columnar here (google-benchmark rejects unknown flags).
    for (int i = 1; i < *argc;) {
      if (std::strcmp(argv[i], "--columnar") == 0) {
        columnar_backend() = true;
        for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
        --*argc;
      } else {
        ++i;
      }
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  ~ObsSession() {
    std::printf("\nphase timings (wall time per traced span):\n%s",
                obs::tracer().summary_text().c_str());
    // inner_ flushes --metrics-out / --trace-out afterwards.
  }

 private:
  obs::ObsSession inner_;
};

/// Parses `text` as the bench scale. Returns the fallback — warning via
/// the obs logger — on anything that is not a fully-consumed, finite,
/// positive number ("0.5x", "", "abc", "-1", "inf"); std::atof would
/// silently turn those into garbage scales or 0.
inline double parse_bench_scale(const char* text, double fallback) {
  char* end = nullptr;
  const double s = std::strtod(text, &end);
  if (end == text || *end != '\0' || !std::isfinite(s) || s <= 0) {
    obs::logger().warn("bench.scale_rejected",
                       {obs::Field("value", text),
                        obs::Field("fallback", fallback)});
    return fallback;
  }
  return s;
}

inline double bench_scale() {
  constexpr double kDefaultScale = 0.1;
  if (const char* env = std::getenv("FAILMINE_BENCH_SCALE"))
    return parse_bench_scale(env, kDefaultScale);
  return kDefaultScale;
}

/// Ingest options for benches that load datasets from disk. Defaults to
/// the parallel mmap engine at hardware concurrency; override the worker
/// count with FAILMINE_INGEST_THREADS=<N> (1 = serial reader).
inline ingest::LoadOptions ingest_options() {
  ingest::LoadOptions options;
  if (const char* env = std::getenv("FAILMINE_INGEST_THREADS")) {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && n >= 0)
      options.threads = static_cast<unsigned>(n);
    else
      obs::logger().warn("bench.ingest_threads_rejected",
                         {obs::Field("value", env)});
  }
  return options;
}

inline const sim::SimConfig& dataset_config() {
  static const sim::SimConfig config = [] {
    sim::SimConfig c;
    c.scale = bench_scale();
    return c;
  }();
  return config;
}

inline const sim::SimResult& dataset() {
  static const sim::SimResult result = [] {
    FAILMINE_TRACE_SPAN("bench.dataset_build");
    return sim::simulate(dataset_config());
  }();
  return result;
}

inline const core::JointAnalyzer& analyzer() {
  static const core::JointAnalyzer instance = [] {
    FAILMINE_TRACE_SPAN("bench.analyzer_build");
    return core::JointAnalyzer(dataset().job_log, dataset().task_log,
                               dataset().ras_log, dataset().io_log,
                               dataset_config().machine);
  }();
  return instance;
}

/// The SoA twin of dataset(): the simulated logs rebuilt as sealed
/// columnar tables (single-chunk builders — determinism is trivial).
inline const columnar::ColumnarDataset& columnar_dataset() {
  static const columnar::ColumnarDataset tables = [] {
    FAILMINE_TRACE_SPAN("bench.columnar_build");
    const auto& d = dataset();
    columnar::ColumnarDataset out;
    {
      columnar::JobTableBuilder b;
      b.reserve(d.job_log.size());
      for (const auto& j : d.job_log.jobs()) b.add(j);
      std::vector<columnar::JobTableBuilder> chunks;
      chunks.push_back(std::move(b));
      out.jobs = columnar::JobTableBuilder::merge(std::move(chunks));
    }
    {
      columnar::TaskTableBuilder b;
      b.reserve(d.task_log.size());
      for (const auto& t : d.task_log.tasks()) b.add(t);
      std::vector<columnar::TaskTableBuilder> chunks;
      chunks.push_back(std::move(b));
      out.tasks = columnar::TaskTableBuilder::merge(std::move(chunks));
    }
    {
      columnar::RasTableBuilder b(dataset_config().machine);
      b.reserve(d.ras_log.size());
      for (const auto& e : d.ras_log.events()) b.add(e);
      std::vector<columnar::RasTableBuilder> chunks;
      chunks.push_back(std::move(b));
      out.ras = columnar::RasTableBuilder::merge(std::move(chunks));
    }
    {
      columnar::IoTableBuilder b;
      b.reserve(d.io_log.size());
      for (const auto& r : d.io_log.records()) b.add(r);
      std::vector<columnar::IoTableBuilder> chunks;
      chunks.push_back(std::move(b));
      out.io = columnar::IoTableBuilder::merge(std::move(chunks));
    }
    return out;
  }();
  return tables;
}

/// The representation-agnostic query surface for the E-benches: the
/// backend picked by --columnar / FAILMINE_COLUMNAR, identical results
/// either way (columnar parity contract).
inline const columnar::QueryEngine& query_engine() {
  static const columnar::QueryEngine engine = [] {
    if (columnar_backend())
      return columnar::QueryEngine(columnar_dataset(),
                                   dataset_config().machine);
    return columnar::QueryEngine(dataset().job_log, dataset().task_log,
                                 dataset().ras_log, dataset().io_log,
                                 dataset_config().machine);
  }();
  return engine;
}

// ---- shared analysis fragments ----------------------------------------
// The X02 / X07 / X08 tables and the P01 online-prediction scoreboard
// all measure the same quantities; these helpers keep the inputs (and
// their caching) in one place so the offline references and the
// streaming results stay comparable. The canonical horizons / window /
// checkpoint-cost constants live in predict/config.hpp.

/// The default-filtered interruption clusters of the bench trace
/// (deduplicated FATALs — the denominator of X02 and P01).
inline const std::vector<core::EventCluster>& interruption_clusters() {
  static const std::vector<core::EventCluster> clusters = [] {
    FAILMINE_TRACE_SPAN("bench.interruption_filter");
    return analyzer().interruption_analysis(core::FilterConfig{})
        .filter.clusters;
  }();
  return clusters;
}

/// Offline WARN->FATAL lead times at one horizon (the X02 rows and the
/// parity reference of bench_p01 / the stream parity test).
inline core::LeadTimeResult lead_times_at(std::int64_t horizon_seconds) {
  core::LeadTimeConfig config;
  config.horizon_seconds = horizon_seconds;
  return core::warning_lead_times(analyzer().ras(), interruption_clusters(),
                                  config);
}

/// The co-occurrence configuration X07 reports with (window from the
/// canonical constant, everything else default).
inline analysis::CooccurrenceConfig cooccurrence_config() {
  analysis::CooccurrenceConfig config;
  config.window_seconds = predict::kCooccurrenceWindowSeconds;
  return config;
}

/// The X08 checkpoint-advisor table at the canonical write cost and
/// reference runtime (also the static baseline of P01's policy
/// scoreboard).
inline const std::vector<core::CheckpointAdvice>& checkpoint_advice() {
  static const std::vector<core::CheckpointAdvice> advice = [] {
    FAILMINE_TRACE_SPAN("bench.checkpoint_advice");
    return core::recommend_checkpoints(analyzer().jobs(),
                                       predict::kCheckpointWriteSeconds,
                                       predict::kReferenceRuntimeSeconds);
  }();
  return advice;
}

inline void print_header(const char* experiment, const char* title,
                         const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s  %s\n", experiment, title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("trace: scale=%.3g seed=%llu (%d days)\n", dataset_config().scale,
              static_cast<unsigned long long>(dataset_config().seed),
              dataset_config().observation_days);
  std::printf("================================================================\n");
}

/// Rescales a trace-level count to its paper-scale equivalent.
inline double to_paper_scale(double measured) {
  return measured / dataset_config().scale;
}

}  // namespace failmine::bench
