// X06 (extension) — reliability trend over the system lifetime.
// Monthly interruption and failure series with fitted linear trends: was
// the 2001-day system stationary, aging, or improving?

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/trend.hpp"

namespace {

using namespace failmine;

void print_trend(const char* label, const core::TrendResult& r) {
  std::printf("%-22s months=%zu mean/month=%.1f slope=%.3f/month "
              "(relative %.4f) R2=%.3f\n",
              label, r.monthly_counts.size(), r.mean_per_month, r.fit.slope,
              r.relative_slope, r.fit.r_squared);
}

void print_table() {
  const auto& a = bench::analyzer();
  bench::print_header("X06", "reliability trend over the 2001 days",
                      "extension: monthly interruption/failure series + trend");
  const auto origin = bench::dataset_config().observation_start;
  const auto end = bench::dataset_config().observation_end();
  const auto filtered = a.interruption_analysis(core::FilterConfig{});

  const auto itrend =
      core::interruption_trend(filtered.filter.clusters, origin, end);
  const auto ftrend = core::failure_trend(a.jobs(), origin, end);
  print_trend("interruptions", itrend);
  print_trend("failed jobs", ftrend);

  std::printf("\nfailed jobs per quarter:\n");
  for (std::size_t m = 0; m + 2 < ftrend.monthly_counts.size(); m += 3) {
    const std::uint64_t q = ftrend.monthly_counts[m] +
                            ftrend.monthly_counts[m + 1] +
                            ftrend.monthly_counts[m + 2];
    std::printf("  Q%02zu %6llu ", m / 3 + 1,
                static_cast<unsigned long long>(q));
    const int bars = static_cast<int>(q / 40);
    for (int b = 0; b < bars && b < 40; ++b) std::printf("#");
    std::printf("\n");
  }
  std::printf("\nReading: the simulated system is stationary by design "
              "(relative slope ~= 0); on an aging machine this bench is\n"
              "where the drift would appear.\n");
}

void BM_InterruptionTrend(benchmark::State& state) {
  const auto& a = bench::analyzer();
  const auto filtered = a.interruption_analysis(core::FilterConfig{});
  const auto origin = bench::dataset_config().observation_start;
  const auto end = bench::dataset_config().observation_end();
  for (auto _ : state) {
    auto t = core::interruption_trend(filtered.filter.clusters, origin, end);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_InterruptionTrend);

void BM_FailureTrend(benchmark::State& state) {
  const auto& a = bench::analyzer();
  const auto origin = bench::dataset_config().observation_start;
  const auto end = bench::dataset_config().observation_end();
  for (auto _ : state) {
    auto t = core::failure_trend(a.jobs(), origin, end);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_FailureTrend)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
