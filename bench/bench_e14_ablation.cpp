// E14 — Ablation: sensitivity of the filtered MTTI to the similarity
// filter's parameters (DESIGN.md design-choice ablation).
// Sweeps the temporal window and the spatial radius; also compares
// message-id-strict matching.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/mtti.hpp"

namespace {

using namespace failmine;

void print_table() {
  const auto& a = bench::analyzer();
  const double s = bench::dataset_config().scale;
  bench::print_header("E14", "filter-parameter ablation",
                      "sensitivity of MTTI to window / radius / message match");

  std::printf("temporal window sweep (radius=midplane):\n");
  std::printf("  %-10s %14s %18s\n", "window", "interruptions",
              "MTTI (paper-scale d)");
  for (std::int64_t window : {60, 300, 900, 1800, 3600, 7200, 21600}) {
    core::FilterConfig config;
    config.window_seconds = window;
    const auto r = a.interruption_analysis(config);
    std::printf("  %8llds %14llu %18.2f\n", static_cast<long long>(window),
                static_cast<unsigned long long>(r.mtti.interruptions),
                r.mtti.mtti_days * s);
  }

  std::printf("\nspatial radius sweep (window=900s):\n");
  std::printf("  %-14s %14s %18s\n", "radius", "interruptions",
              "MTTI (paper-scale d)");
  for (auto level : {topology::Level::kRack, topology::Level::kMidplane,
                     topology::Level::kNodeBoard,
                     topology::Level::kComputeCard}) {
    core::FilterConfig config;
    config.spatial_level = level;
    const auto r = a.interruption_analysis(config);
    std::printf("  %-14s %14llu %18.2f\n",
                topology::level_name(level).c_str(),
                static_cast<unsigned long long>(r.mtti.interruptions),
                r.mtti.mtti_days * s);
  }

  std::printf("\nmessage-id matching (window=900s, radius=midplane):\n");
  for (bool strict : {false, true}) {
    core::FilterConfig config;
    config.require_same_message = strict;
    const auto r = a.interruption_analysis(config);
    std::printf("  require_same_message=%-5s interruptions=%llu MTTI=%.2f d\n",
                strict ? "true" : "false",
                static_cast<unsigned long long>(r.mtti.interruptions),
                r.mtti.mtti_days * s);
  }
  const double episodes = static_cast<double>(bench::dataset().episodes.size());
  std::printf("\nground truth: %.0f episodes -> MTTI %.2f paper-scale days\n",
              episodes, episodes > 0 ? 2001.0 / episodes * s : 2001.0);
}

void BM_FilterWindowSweep(benchmark::State& state) {
  const auto& a = bench::analyzer();
  core::FilterConfig config;
  config.window_seconds = state.range(0);
  for (auto _ : state) {
    auto r = a.interruption_analysis(config);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FilterWindowSweep)->Arg(60)->Arg(900)->Arg(21600)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
