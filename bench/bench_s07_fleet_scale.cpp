// S07 — fleet observability at scale: 8 digital-twin pipelines in one
// process, replaying concurrently while saturating scrape clients hammer
// every read endpoint (/metrics exposition, label-aware /query
// aggregation, the /fleet rollup and /healthz).
//
// The fleet contract is that the observability plane never leans on the
// hot path: per-twin instruments are label-disambiguated atomics, the
// tsdb scrapes off-thread, and every HTTP read renders from a
// one-lock-hold sample. The scrape mesh is 4 concurrent clients each
// rotating through the endpoints at ~10 Hz (~40 requests/sec — well
// over an order of magnitude past a production scrape job); the cadence is
// fixed rather than a busy loop so the bench measures the read-path
// cost, not raw core theft by the HTTP clients on a small host. The
// table reports aggregate records/sec for the scraped and unscraped
// fleet; the run FAILS (exit 1) when the scrape mesh costs more than 5%
// aggregate throughput, when any scrape returns non-200 (a dropped
// scrape), or when the blocking fleet drops records.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/serve.hpp"
#include "obs/tsdb.hpp"
#include "sim/replay.hpp"
#include "stream/fleet.hpp"

namespace {

using namespace failmine;

constexpr double kMaxOverhead = 0.05;  // 5% aggregate throughput budget
constexpr std::size_t kTwins = 8;
constexpr int kScrapers = 4;
constexpr int kPasses = 2;  // replay passes per run (longer runs, less noise)

const std::vector<stream::StreamRecord>& replay() {
  static const std::vector<stream::StreamRecord> records = [] {
    FAILMINE_TRACE_SPAN("bench.replay_build");
    return sim::build_replay(bench::dataset());
  }();
  return records;
}

stream::FleetConfig make_config() {
  stream::FleetConfig config;
  config.twin_count = kTwins;
  config.base.machine = bench::dataset_config().machine;
  config.base.shard_count = 1;  // 8 twins already saturate the cores
  config.base.policy = stream::BackpressurePolicy::kBlock;
  config.base.max_lateness_seconds = 0;
  return config;
}

/// Percent-encodes everything outside the URL-safe alphabet so the full
/// `sum by (twin) (...)` spelling survives the query string.
std::string url_encode(const std::string& raw) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  for (const unsigned char c : raw) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.' || c == '~';
    if (safe) {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(hex[c >> 4]);
      out.push_back(hex[c & 0xF]);
    }
  }
  return out;
}

/// One full fleet replay: the shared record stream fed round-robin
/// across 8 twins. When `scraped` is set, a TelemetryServer runs for
/// the duration and kScrapers client threads rotate through every read
/// endpoint at a fixed dense cadence. Returns aggregate records/sec;
/// exits fatally on any dropped scrape or dropped record.
double run_fleet(bool scraped) {
  stream::StreamFleet fleet(make_config());
  obs::tsdb().start(100);  // same tsdb cadence in both modes

  std::unique_ptr<obs::TelemetryServer> server;
  std::vector<std::thread> scrapers;
  std::atomic<bool> stop_scrapers{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::atomic<std::uint64_t> dropped_scrapes{0};
  if (scraped) {
    server = std::make_unique<obs::TelemetryServer>();
    server->set_fleet_handler([&fleet] { return fleet.fleet_json(); });
    server->set_health_handler([&fleet] { return fleet.healthy(); });
    server->start();
    // /query 404s until the background scraper lands its first sample.
    for (int i = 0; i < 200 && !obs::tsdb().has_data(); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const std::string query_path =
        "/query?expr=" +
        url_encode(
            "sum by (twin) (rate(stream.records_in{twin=~\"*\"}[1m]))");
    for (int s = 0; s < kScrapers; ++s) {
      scrapers.emplace_back([&, port = server->port(), query_path] {
        const char* rotation[] = {"/metrics", query_path.c_str(), "/fleet",
                                  "/healthz"};
        std::size_t i = 0;
        while (!stop_scrapers.load(std::memory_order_relaxed)) {
          const auto r = obs::http_get(port, rotation[i++ % 4]);
          if (r.status == 200)
            scrapes.fetch_add(1, std::memory_order_relaxed);
          else
            dropped_scrapes.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      });
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<stream::StreamRecord> batch;
  const auto& records = replay();
  for (int pass = 0, twin = 0; pass < kPasses; ++pass) {
    for (std::size_t i = 0; i < records.size(); ++twin) {
      const std::size_t n = std::min<std::size_t>(1024, records.size() - i);
      batch.assign(records.begin() + i, records.begin() + i + n);
      fleet.twin(static_cast<std::size_t>(twin) % kTwins)
          .push_batch(std::move(batch));
      i += n;
    }
  }
  fleet.finish();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (scraped) {
    stop_scrapers.store(true);
    for (auto& th : scrapers) th.join();
    server->stop();
    if (scrapes.load() == 0) {
      std::fprintf(stderr, "FATAL: scrapers never completed a scrape\n");
      std::exit(1);
    }
    if (dropped_scrapes.load() != 0) {
      std::fprintf(stderr,
                   "FATAL: %llu scrapes returned non-200 under fleet load\n",
                   static_cast<unsigned long long>(dropped_scrapes.load()));
      std::exit(1);
    }
  }
  obs::tsdb().stop();

  std::uint64_t total_in = 0;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto snap = fleet.twin(i).snapshot();
    total_in += snap.records_in;
    if (snap.records_dropped != 0) {
      std::fprintf(stderr, "FATAL: blocking fleet dropped records (twin %zu)\n",
                   i);
      std::exit(1);
    }
  }
  return static_cast<double>(total_in) / secs;
}

void print_table() {
  bench::print_header("S07", "fleet observability at scale",
                      "8-twin aggregate records/sec, saturating scrape load "
                      "vs unobserved");
  // Warm both paths once, then interleave and take the best of five
  // each (see bench_s02: best-of-N compares the modes at their
  // undisturbed speed on a noisy host).
  (void)run_fleet(false);
  (void)run_fleet(true);
  double off = 0.0, on = 0.0;
  for (int round = 0; round < 5; ++round) {
    off = std::max(off, run_fleet(false));
    on = std::max(on, run_fleet(true));
  }
  const double overhead = (off - on) / off;
  std::printf("%-14s %14s\n", "mode", "records/s");
  std::printf("%-14s %14.0f\n", "scrape off", off);
  std::printf("%-14s %14.0f\n", "scrape on", on);
  std::printf("overhead: %.2f%% (budget %.0f%%)\n", 100.0 * overhead,
              100.0 * kMaxOverhead);
  if (overhead > kMaxOverhead) {
    std::fprintf(stderr,
                 "FATAL: fleet scrape overhead %.2f%% exceeds the %.0f%% "
                 "budget\n",
                 100.0 * overhead, 100.0 * kMaxOverhead);
    std::exit(1);
  }
}

void BM_FleetReplayScrapeOff(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_fleet(false));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(replay().size()) * kPasses);
}
BENCHMARK(BM_FleetReplayScrapeOff)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_FleetReplayScrapeOn(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_fleet(true));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(replay().size()) * kPasses);
}
BENCHMARK(BM_FleetReplayScrapeOn)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
