// E11 — Fig: temporal patterns of submissions, failures and RAS events
// (hour-of-day, day-of-week, monthly series over the 2001 days).

#include <benchmark/benchmark.h>

#include "analysis/temporal.hpp"
#include "bench_common.hpp"

namespace {

using namespace failmine;

void print_profile(const char* label, const analysis::HourlyProfile& p) {
  std::printf("%-14s", label);
  std::uint64_t mx = 1;
  for (auto c : p) mx = std::max(mx, c);
  for (std::size_t h = 0; h < 24; ++h) {
    const int bars = static_cast<int>(8.0 * static_cast<double>(p[h]) /
                                      static_cast<double>(mx));
    std::printf("%c", " .:-=+*#@"[bars]);
  }
  std::printf("  peak/trough=%.2f\n", analysis::peak_to_trough(p));
}

void print_table() {
  const auto& engine = bench::query_engine();
  bench::print_header("E11", "temporal patterns",
                      "Fig: diurnal/weekly/monthly series of jobs and events");
  std::printf("backend: %s\n", bench::backend_name());
  std::printf("hour-of-day profiles (0..23):\n");
  print_profile("submissions", engine.submissions_by_hour());
  print_profile("failures", engine.failures_by_hour());
  print_profile("RAS events", engine.events_by_hour());

  const auto weekday = engine.submissions_by_weekday();
  std::printf("\nsubmissions by weekday (Mon..Sun):");
  for (auto c : weekday) std::printf(" %llu", static_cast<unsigned long long>(c));
  std::printf("\n  weekend dampening: Sat+Sun vs weekday mean = %.2f\n",
              (static_cast<double>(weekday[5] + weekday[6]) / 2.0) /
                  (static_cast<double>(weekday[0] + weekday[1] + weekday[2] +
                                       weekday[3] + weekday[4]) /
                   5.0));

  const auto origin = bench::dataset_config().observation_start;
  const auto monthly = engine.monthly_submissions(origin);
  const auto monthly_fail = engine.monthly_failures(origin);
  std::printf("\nfirst 12 months (submissions / failures):\n");
  for (std::size_t m = 0; m < std::min<std::size_t>(12, monthly.size()); ++m)
    std::printf("  month %2zu: %6llu / %llu\n", m,
                static_cast<unsigned long long>(monthly[m]),
                static_cast<unsigned long long>(
                    m < monthly_fail.size() ? monthly_fail[m] : 0));
  std::printf("  ... (%zu months total)\n", monthly.size());
}

void BM_HourlyProfiles(benchmark::State& state) {
  const auto& engine = bench::query_engine();
  for (auto _ : state) {
    auto p = engine.submissions_by_hour();
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_HourlyProfiles)->Unit(benchmark::kMillisecond);

void BM_MonthlySeries(benchmark::State& state) {
  const auto& engine = bench::query_engine();
  const auto origin = bench::dataset_config().observation_start;
  for (auto _ : state) {
    auto m = engine.monthly_submissions(origin);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MonthlySeries)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
