// E07 — Fig: the similarity-based event-filtering pipeline.
// Paper method behind T-E: raw FATAL events -> temporal filtering ->
// spatial filtering -> deduplicated interruptions. This bench prints the
// per-stage reduction and the cluster-size distribution.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"
#include "core/event_filter.hpp"

namespace {

using namespace failmine;

void print_table() {
  const auto& log = bench::dataset().ras_log;
  bench::print_header("E07", "similarity-based event filtering pipeline",
                      "Fig: raw FATALs -> temporal -> spatial -> combined");
  const core::FilterConfig config;
  const auto pipeline = core::filtering_pipeline(log, config);
  std::printf("window=%llds  spatial radius=%s\n",
              static_cast<long long>(config.window_seconds),
              topology::level_name(config.spatial_level).c_str());
  std::printf("%-28s %10s %12s\n", "stage", "count", "reduction");
  const double raw = static_cast<double>(pipeline.raw);
  std::printf("%-28s %10llu %11.1fx\n", "raw FATAL events",
              static_cast<unsigned long long>(pipeline.raw), 1.0);
  std::printf("%-28s %10llu %11.1fx\n", "temporal-only clusters",
              static_cast<unsigned long long>(pipeline.temporal_only),
              raw / static_cast<double>(pipeline.temporal_only));
  std::printf("%-28s %10llu %11.1fx\n", "spatial-only components",
              static_cast<unsigned long long>(pipeline.spatial_only),
              raw / static_cast<double>(pipeline.spatial_only));
  std::printf("%-28s %10llu %11.1fx\n", "combined (similarity) filter",
              static_cast<unsigned long long>(pipeline.combined),
              raw / static_cast<double>(pipeline.combined));
  std::printf("ground-truth episodes in trace: %zu\n",
              bench::dataset().episodes.size());

  // Cluster-size distribution (the burst-size histogram of the figure).
  const auto result = core::filter_events(log, config);
  std::map<std::uint64_t, std::uint64_t> size_hist;
  for (const auto& c : result.clusters) ++size_hist[c.member_count];
  std::printf("\ncluster size -> frequency:\n");
  for (const auto& [size, freq] : size_hist)
    std::printf("  %4llu events: %llu clusters\n",
                static_cast<unsigned long long>(size),
                static_cast<unsigned long long>(freq));
}

void BM_SimilarityFilter(benchmark::State& state) {
  const auto& log = bench::dataset().ras_log;
  const core::FilterConfig config;
  for (auto _ : state) {
    auto r = core::filter_events(log, config);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SimilarityFilter)->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  const auto& log = bench::dataset().ras_log;
  const core::FilterConfig config;
  for (auto _ : state) {
    auto p = core::filtering_pipeline(log, config);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
