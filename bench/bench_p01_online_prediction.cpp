// P01 — online failure prediction + adaptive checkpointing scoreboard.
// Streams the bench trace through the pipeline with the PredictOperator
// attached and reports what the paper-style offline studies look like
// when computed live:
//   * streamed WARN->FATAL lead-time distribution, checked for EXACT
//     parity against the offline X02 result (same clusters, same leads,
//     same medians — the run FAILS on any divergence);
//   * alert precision/recall at the fixed lead-time horizons;
//   * end-of-job risk scoring quality against ground truth;
//   * the adaptive checkpoint policy's core-hours saved vs the static
//     Daly policy (X08's advisor applied per job) and vs no checkpoints.
// Finally it gates the cost of all of this: replay throughput with
// --predict on must stay within 5% of the plain pipeline (best-of-5
// interleaved, like the S05 tracing gate), else the run FAILS (exit 1).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "predict/operator.hpp"
#include "sim/replay.hpp"
#include "stream/pipeline.hpp"

namespace {

using namespace failmine;

constexpr double kMaxOverhead = 0.05;  // 5% throughput budget

const std::vector<stream::StreamRecord>& replay() {
  static const std::vector<stream::StreamRecord> records = [] {
    FAILMINE_TRACE_SPAN("bench.replay_build");
    return sim::build_replay(bench::dataset());
  }();
  return records;
}

predict::PredictConfig predict_config() {
  predict::PredictConfig config;
  config.machine = bench::dataset_config().machine;
  return config;
}

stream::StreamConfig make_config(
    const std::shared_ptr<predict::PredictOperator>& op) {
  stream::StreamConfig config;
  config.machine = bench::dataset_config().machine;
  config.shard_count = 4;
  config.policy = stream::BackpressurePolicy::kBlock;
  config.max_lateness_seconds = 0;  // replay is already event-time ordered
  config.trace_sample_period = 0;   // isolate the predictor's cost
  config.router_operator = op;
  return config;
}

/// One full replay; returns records/sec. When `op` is set the predictor
/// runs inline on the router thread.
double run_pipeline(const std::shared_ptr<predict::PredictOperator>& op) {
  stream::StreamPipeline pipeline(make_config(op));
  const auto start = std::chrono::steady_clock::now();
  std::vector<stream::StreamRecord> batch;
  const auto& records = replay();
  for (std::size_t i = 0; i < records.size();) {
    const std::size_t n = std::min<std::size_t>(1024, records.size() - i);
    batch.assign(records.begin() + i, records.begin() + i + n);
    pipeline.push_batch(std::move(batch));
    i += n;
  }
  pipeline.finish();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const auto snap = pipeline.snapshot();
  if (snap.records_dropped != 0) {
    std::fprintf(stderr, "FATAL: blocking policy dropped records\n");
    std::exit(1);
  }
  return static_cast<double>(snap.records_in) / secs;
}

/// Streamed-vs-batch lead-time parity: any divergence is a bug in the
/// watermark-deferred scoring window, and the whole point of P01 is that
/// the online numbers ARE the offline numbers.
void check_parity(const predict::PredictOperator& op) {
  const auto offline =
      bench::lead_times_at(predict::kDefaultPrecursorHorizonSeconds);
  const auto streamed = op.miner().lead_time_result();
  bool ok = offline.with_precursor == streamed.with_precursor &&
            offline.without_precursor == streamed.without_precursor &&
            offline.per_interruption.size() == streamed.per_interruption.size();
  if (ok)
    for (std::size_t i = 0; i < offline.per_interruption.size(); ++i) {
      const auto& a = offline.per_interruption[i];
      const auto& b = streamed.per_interruption[i];
      if (a.lead_seconds != b.lead_seconds ||
          a.warn_message_id != b.warn_message_id) {
        ok = false;
        break;
      }
    }
  if (!ok || offline.median_lead_seconds != streamed.median_lead_seconds ||
      offline.mean_lead_seconds != streamed.mean_lead_seconds) {
    std::fprintf(stderr,
                 "FATAL: streamed lead times diverge from batch X02 "
                 "(offline %llu+%llu median %.1f, streamed %llu+%llu "
                 "median %.1f)\n",
                 static_cast<unsigned long long>(offline.with_precursor),
                 static_cast<unsigned long long>(offline.without_precursor),
                 offline.median_lead_seconds,
                 static_cast<unsigned long long>(streamed.with_precursor),
                 static_cast<unsigned long long>(streamed.without_precursor),
                 streamed.median_lead_seconds);
    std::exit(1);
  }
  std::printf("parity: streamed lead times == batch X02 over %zu "
              "interruptions (coverage %.1f%%, median %.0fs)\n",
              streamed.per_interruption.size(), 100.0 * streamed.coverage,
              streamed.median_lead_seconds);
}

void print_table() {
  bench::print_header("P01", "online failure prediction + adaptive "
                      "checkpointing",
                      "extension: X02/X07/X08 as a live stream subsystem");

  auto op = std::make_shared<predict::PredictOperator>(predict_config());
  (void)run_pipeline(op);
  const auto snap = op->snapshot();

  check_parity(*op);

  std::printf("\nalert quality (%llu alerts emitted, %llu graded):\n",
              static_cast<unsigned long long>(snap.alerts),
              static_cast<unsigned long long>(snap.alerts_graded));
  std::printf("%-14s %12s %12s\n", "lead horizon", "precision", "recall");
  std::printf("%-14s %11.1f%% %11.1f%%\n", "any",
              100.0 * snap.alert_precision, 100.0 * snap.alert_recall);
  for (const auto& h : snap.horizons)
    std::printf(">= %-5llds     %11.1f%% %11.1f%%\n",
                static_cast<long long>(h.horizon_seconds), 100.0 * h.precision,
                100.0 * h.recall);

  std::printf("\nper-job risk scoring (%llu jobs, threshold %.1f, "
              "target = system-caused ends):\n",
              static_cast<unsigned long long>(snap.jobs_scored),
              predict_config().risk.flag_threshold);
  std::printf("  precision %.1f%%  recall %.1f%%  (tp=%llu fp=%llu fn=%llu "
              "tn=%llu)\n",
              100.0 * snap.risk_precision, 100.0 * snap.risk_recall,
              static_cast<unsigned long long>(snap.risk_tp),
              static_cast<unsigned long long>(snap.risk_fp),
              static_cast<unsigned long long>(snap.risk_fn),
              static_cast<unsigned long long>(snap.risk_tn));
  std::printf("  mean risk: failed %.3f vs ok %.3f; flag lead p50 %.0fs "
              "p90 %.0fs\n",
              snap.mean_risk_failed, snap.mean_risk_ok,
              snap.flag_lead_p50_seconds, snap.flag_lead_p90_seconds);

  std::printf("\ncheckpoint policy (hazard %.3e/node-s, %llu kills):\n",
              snap.hazard_per_node_second,
              static_cast<unsigned long long>(snap.system_kills));
  std::printf("%-10s %8s %12s %14s %12s %14s\n", "policy", "jobs", "ckpted",
              "overhead (ch)", "lost (ch)", "waste (ch)");
  for (const auto& row : snap.policies)
    std::printf("%-10s %8llu %12llu %14.1f %12.1f %14.1f\n", row.name.c_str(),
                static_cast<unsigned long long>(row.jobs),
                static_cast<unsigned long long>(row.checkpointed),
                row.overhead_core_hours, row.lost_core_hours,
                row.waste_core_hours);
  std::printf("adaptive saves %.1f core-hours vs static Daly "
              "(%.1f vs no checkpoints)\n",
              snap.saved_vs_static_core_hours, snap.saved_vs_none_core_hours);

  // Context: the offline X08 advisor's per-allocation optimum at the
  // same write cost / reference runtime (the static policy's table).
  const auto& advice = bench::checkpoint_advice();
  if (!advice.empty()) {
    const auto& full = advice.back();
    std::printf("(offline X08 at %u nodes: ckpt every %.2f h, waste %.2f%% "
                "vs %.2f%% bare)\n",
                full.nodes, full.optimal_interval_hours,
                100.0 * full.waste_at_optimum, 100.0 * full.waste_without);
  }

  // Throughput gate: the predictor must ride along within 5%. Warm both
  // modes, then best-of-5 interleaved (see bench_s05 for the rationale:
  // a replay is short, so one scheduler hiccup outweighs the budget).
  (void)run_pipeline(nullptr);
  double off = 0.0, on = 0.0;
  for (int round = 0; round < 5; ++round) {
    off = std::max(off, run_pipeline(nullptr));
    on = std::max(
        on, run_pipeline(
                std::make_shared<predict::PredictOperator>(predict_config())));
  }
  const double overhead = (off - on) / off;
  std::printf("\n%-12s %14s\n", "mode", "records/s");
  std::printf("%-12s %14.0f\n", "predict off", off);
  std::printf("%-12s %14.0f\n", "predict on", on);
  std::printf("overhead: %.2f%% (budget %.0f%%)\n", 100.0 * overhead,
              100.0 * kMaxOverhead);
  if (overhead > kMaxOverhead) {
    std::fprintf(stderr,
                 "FATAL: prediction overhead %.2f%% exceeds the %.0f%% "
                 "budget\n",
                 100.0 * overhead, 100.0 * kMaxOverhead);
    std::exit(1);
  }
}

void BM_StreamReplayPredictOff(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_pipeline(nullptr));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(replay().size()));
}
BENCHMARK(BM_StreamReplayPredictOff)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_StreamReplayPredictOn(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_pipeline(
        std::make_shared<predict::PredictOperator>(predict_config())));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(replay().size()));
}
BENCHMARK(BM_StreamReplayPredictOn)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
