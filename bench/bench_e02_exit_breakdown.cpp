// E02 — Table 2 / Fig. 2: job exit-status breakdown.
// Paper claim (T-A): 99,245 failed jobs, 99.4 % user-caused, 0.6 %
// system-caused.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "joblog/exit_status.hpp"

namespace {

using namespace failmine;

void print_table() {
  const auto b = bench::query_engine().exit_breakdown();
  bench::print_header("E02", "job exit-status breakdown",
                      "Table 2 / Fig. 2; abstract: 99,245 failures, 99.4% user-caused");
  std::printf("backend: %s\n", bench::backend_name());
  std::printf("%-20s %10s %9s %9s %14s\n", "exit class", "jobs", "of jobs",
              "of fails", "core-hours");
  for (const auto& row : b.rows) {
    std::printf("%-20s %10llu %8.2f%% %8.2f%% %14.3e\n",
                joblog::exit_class_name(row.exit_class).c_str(),
                static_cast<unsigned long long>(row.jobs),
                100.0 * row.share_of_jobs, 100.0 * row.share_of_failures,
                row.core_hours);
  }
  std::printf("----------------------------------------------------------------\n");
  std::printf("total jobs      %llu\n",
              static_cast<unsigned long long>(b.total_jobs));
  std::printf("total failures  %llu   (paper-scale equiv %.0f, paper 99245)\n",
              static_cast<unsigned long long>(b.total_failures),
              bench::to_paper_scale(static_cast<double>(b.total_failures)));
  std::printf("user-caused     %.2f%%  (paper 99.4%%)\n",
              100.0 * b.user_caused_share);
  std::printf("system-caused   %.2f%%  (paper 0.6%%)\n",
              100.0 * b.system_caused_share);
}

void BM_ExitBreakdown(benchmark::State& state) {
  const auto& engine = bench::query_engine();
  for (auto _ : state) {
    auto b = engine.exit_breakdown();
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_ExitBreakdown)->Unit(benchmark::kMillisecond);

void BM_ClassifyExit(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    auto c = joblog::classify_exit(i % 256, i % 32, false);
    benchmark::DoNotOptimize(c);
    ++i;
  }
}
BENCHMARK(BM_ClassifyExit);

}  // namespace

int main(int argc, char** argv) {
  failmine::bench::ObsSession obs_session(&argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
