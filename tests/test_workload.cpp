// Unit + property tests for sim/workload: arrival seasonality, job-record
// invariants and the per-class runtime families.

#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace failmine::sim {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest()
      : config_(SimConfig::test_scale()),
        rng_(config_.seed),
        population_(config_, rng_),
        workload_(config_, population_) {
    jobs_ = workload_.generate(rng_);
  }

  SimConfig config_;
  util::Rng rng_;
  Population population_;
  WorkloadModel workload_;
  std::vector<joblog::JobRecord> jobs_;
};

TEST_F(WorkloadTest, GeneratesRoughlyExpectedJobCount) {
  // ~277/day * 0.01 scale * 2001 days * mean seasonality ~0.9.
  const double expected = 277.0 * 0.01 * 2001.0 * 0.9;
  EXPECT_NEAR(static_cast<double>(jobs_.size()), expected, 0.15 * expected);
}

TEST_F(WorkloadTest, JobsAreWithinObservationWindow) {
  for (const auto& j : jobs_) {
    EXPECT_GE(j.submit_time, config_.observation_start);
    EXPECT_LT(j.submit_time, config_.observation_end());
  }
}

TEST_F(WorkloadTest, TimelineInvariantsHold) {
  for (const auto& j : jobs_) {
    EXPECT_LE(j.submit_time, j.start_time);
    EXPECT_LT(j.start_time, j.end_time);
    EXPECT_GE(j.task_count, 1u);
    EXPECT_GE(j.nodes_used, config_.machine.nodes_per_midplane());
    EXPECT_LE(j.nodes_used, config_.machine.total_nodes());
    EXPECT_GT(j.requested_walltime, 0);
  }
}

TEST_F(WorkloadTest, JobIdsAreUniqueAndAscending) {
  std::set<std::uint64_t> ids;
  for (const auto& j : jobs_) ids.insert(j.job_id);
  EXPECT_EQ(ids.size(), jobs_.size());
}

TEST_F(WorkloadTest, RuntimesRespectWalltime) {
  for (const auto& j : jobs_) {
    // Walltime overruns end exactly at the limit; everything else under it.
    EXPECT_LE(j.runtime_seconds(), j.requested_walltime)
        << "job " << j.job_id;
  }
}

TEST_F(WorkloadTest, OnlyUserSideClassesAssigned) {
  for (const auto& j : jobs_) {
    EXPECT_FALSE(joblog::is_system_caused(j.exit_class))
        << "system classes are the fault model's job";
  }
}

TEST_F(WorkloadTest, FailureRateNearTarget) {
  std::size_t failures = 0;
  for (const auto& j : jobs_)
    if (j.failed()) ++failures;
  const double rate =
      static_cast<double>(failures) / static_cast<double>(jobs_.size());
  EXPECT_NEAR(rate, 0.198, 0.03);
}

TEST_F(WorkloadTest, SizesComeFromMidplaneMenu) {
  const auto& menu = workload_.size_menu();
  for (const auto& j : jobs_) {
    EXPECT_NE(std::find(menu.begin(), menu.end(), j.nodes_used), menu.end());
  }
}

TEST_F(WorkloadTest, PartitionsAreAlignedAndInMachine) {
  const int total_mids =
      config_.machine.racks() * config_.machine.midplanes_per_rack;
  for (const auto& j : jobs_) {
    const int mids = topology::midplanes_for_nodes(j.nodes_used, config_.machine);
    EXPECT_EQ(j.partition_first_midplane % mids, 0);
    EXPECT_LE(j.partition_first_midplane + mids, total_mids);
  }
}

TEST_F(WorkloadTest, WalltimeClassEndsExactlyAtLimit) {
  bool saw = false;
  for (const auto& j : jobs_) {
    if (j.exit_class != joblog::ExitClass::kWalltimeLimit) continue;
    saw = true;
    EXPECT_EQ(j.runtime_seconds(), j.requested_walltime);
  }
  EXPECT_TRUE(saw) << "test-scale trace should contain walltime overruns";
}

TEST_F(WorkloadTest, ConfigErrorsDieFast) {
  std::vector<double> lengths;
  for (const auto& j : jobs_)
    if (j.exit_class == joblog::ExitClass::kUserConfigError)
      lengths.push_back(static_cast<double>(j.runtime_seconds()));
  ASSERT_GT(lengths.size(), 10u);
  double mean = 0.0;
  for (double v : lengths) mean += v;
  mean /= static_cast<double>(lengths.size());
  EXPECT_LT(mean, 600.0);  // Erlang(2, 1/90) has mean 180 s
}

TEST(Workload, SeasonalityPeaksInAfternoonAndDipsOnWeekends) {
  const SimConfig config = SimConfig::test_scale();
  util::Rng rng(1);
  const Population pop(config, rng);
  const WorkloadModel w(config, pop);
  // 2013-04-09 was a Tuesday; 15:00 is the diurnal peak.
  const util::UnixSeconds tue_peak = config.observation_start + 15 * 3600;
  const util::UnixSeconds tue_trough = config.observation_start + 3 * 3600;
  EXPECT_GT(w.seasonality(tue_peak), w.seasonality(tue_trough));
  // Saturday same hour is dampened.
  const util::UnixSeconds sat_peak = tue_peak + 4 * 86400;
  EXPECT_LT(w.seasonality(sat_peak), w.seasonality(tue_peak));
}

TEST(Workload, DeterministicForSameSeed) {
  const SimConfig config = SimConfig::test_scale();
  util::Rng r1(9), r2(9);
  const Population p1(config, r1), p2(config, r2);
  const WorkloadModel w1(config, p1), w2(config, p2);
  const auto a = w1.generate(r1);
  const auto b = w2.generate(r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace failmine::sim
