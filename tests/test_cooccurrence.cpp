// Unit + integration tests for analysis/cooccurrence.

#include "analysis/cooccurrence.hpp"

#include <gtest/gtest.h>

#include "raslog/message_catalog.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace failmine::analysis {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

raslog::RasEvent warn_event(util::UnixSeconds t, const char* msg,
                            const char* loc) {
  raslog::RasEvent e;
  e.timestamp = t;
  e.message_id = msg;
  const auto& def = raslog::message_by_id(msg);
  e.severity = def.severity;
  e.component = def.component;
  e.category = def.category;
  e.location = topology::Location::parse(loc, kMira);
  return e;
}

TEST(Cooccurrence, CountsFollowersInWindowOnSameHardware) {
  std::vector<raslog::RasEvent> events = {
      warn_event(100, "00010003", "R00-M0-N00-J00"),  // MEMORY WARN trigger
      warn_event(200, "00040003", "R00-M0-N01-J00"),  // NETWORK WARN follows
      warn_event(250, "00040003", "R10-M0-N00-J00"),  // NETWORK, wrong rack
      warn_event(90000, "00040003", "R00-M0-N00-J00"),  // outside window
  };
  const raslog::RasLog log(std::move(events));
  const auto r = category_cooccurrence(log);
  const auto mem = static_cast<std::size_t>(raslog::Category::kMemory);
  const auto net = static_cast<std::size_t>(raslog::Category::kNetwork);
  EXPECT_EQ(r.follows[mem][net], 1u);
  EXPECT_EQ(r.follows[net][mem], 0u);
  EXPECT_EQ(r.totals[mem], 1u);
  EXPECT_EQ(r.totals[net], 3u);
  EXPECT_EQ(r.qualifying_events, 4u);
}

TEST(Cooccurrence, SeverityThresholdFiltersInfo) {
  std::vector<raslog::RasEvent> events = {
      warn_event(100, "00010001", "R00-M0-N00-J00"),  // INFO
      warn_event(200, "00010003", "R00-M0-N00-J00"),  // WARN
  };
  const raslog::RasLog log(std::move(events));
  const auto r = category_cooccurrence(log);
  EXPECT_EQ(r.qualifying_events, 1u);
  CooccurrenceConfig all;
  all.min_severity = raslog::Severity::kInfo;
  EXPECT_EQ(category_cooccurrence(log, all).qualifying_events, 2u);
}

TEST(Cooccurrence, LiftDetectsInjectedPropagation) {
  // Background: isolated WARNs spread over a long span. Signal: every
  // MEMORY WARN is followed 60 s later by a NETWORK WARN on its board.
  std::vector<raslog::RasEvent> events;
  util::UnixSeconds t = 0;
  for (int i = 0; i < 60; ++i) {
    t += 86400;  // one pair per day
    events.push_back(warn_event(t, "00010003", "R00-M0-N03-J00"));
    events.push_back(warn_event(t + 60, "00040003", "R00-M0-N03-J01"));
  }
  const raslog::RasLog log(std::move(events));
  const auto r = category_cooccurrence(log);
  const auto mem = static_cast<std::size_t>(raslog::Category::kMemory);
  const auto net = static_cast<std::size_t>(raslog::Category::kNetwork);
  EXPECT_EQ(r.follows[mem][net], 60u);
  EXPECT_GT(r.lift[mem][net], 20.0);  // massive lift over base rate
  // The reverse direction has no signal beyond the window overlap.
  EXPECT_LT(r.lift[net][mem], r.lift[mem][net] / 10.0);

  const auto channels = top_channels(r, 2.0, 5);
  ASSERT_FALSE(channels.empty());
  EXPECT_EQ(channels[0].trigger, raslog::Category::kMemory);
  EXPECT_EQ(channels[0].follower, raslog::Category::kNetwork);
}

TEST(Cooccurrence, TinyLogsDegradeGracefully) {
  const auto r = category_cooccurrence(raslog::RasLog());
  EXPECT_EQ(r.qualifying_events, 0u);
  EXPECT_TRUE(top_channels(r).empty());
}

TEST(Cooccurrence, ValidatesWindow) {
  CooccurrenceConfig bad;
  bad.window_seconds = 0;
  EXPECT_THROW(category_cooccurrence(raslog::RasLog(), bad),
               failmine::DomainError);
}

TEST(Cooccurrence, SimulatedEpisodesCreateCrossCategoryLift) {
  // Episode bursts mix fatal categories on one board within minutes, so
  // some cross-category channel must show lift well above 1.
  sim::SimConfig config = sim::SimConfig::test_scale();
  config.scale = 0.05;
  const auto trace = sim::simulate(config);
  CooccurrenceConfig cc;
  cc.min_severity = raslog::Severity::kFatal;
  cc.window_seconds = 3600;
  const auto r = category_cooccurrence(trace.ras_log, cc);
  double max_lift = 0.0;
  for (std::size_t a = 0; a < kCategoryCount; ++a)
    for (std::size_t b = 0; b < kCategoryCount; ++b)
      max_lift = std::max(max_lift, r.lift[a][b]);
  EXPECT_GT(max_lift, 5.0);
}

}  // namespace
}  // namespace failmine::analysis
