// Tests for the streaming sketches: GK quantile summary rank-error
// bounds (including shard merges) and space-saving heavy-hitter
// guarantees.

#include "stream/quantile_sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "stream/heavy_hitters.hpp"
#include "util/error.hpp"

namespace failmine::stream {
namespace {

/// True rank interval of `value` in sorted data: [first, last] positions
/// (1-based) a query returning `value` could legitimately claim.
std::pair<std::uint64_t, std::uint64_t> rank_range(
    const std::vector<double>& sorted, double value) {
  const auto lo = std::lower_bound(sorted.begin(), sorted.end(), value);
  const auto hi = std::upper_bound(sorted.begin(), sorted.end(), value);
  return {static_cast<std::uint64_t>(lo - sorted.begin()) + 1,
          static_cast<std::uint64_t>(hi - sorted.begin())};
}

void expect_within_rank_error(const GkQuantileSketch& sketch,
                              std::vector<double> data) {
  std::sort(data.begin(), data.end());
  const double n = static_cast<double>(data.size());
  const double eps_n = sketch.epsilon() * n;
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double value = sketch.quantile(q);
    const auto [lo, hi] = rank_range(data, value);
    ASSERT_LE(lo, hi) << "quantile returned a value not in the stream";
    const double target = std::ceil(q * n);
    // The value's true rank interval must intersect [target-εn, target+εn].
    EXPECT_LE(static_cast<double>(lo), target + eps_n) << "q=" << q;
    EXPECT_GE(static_cast<double>(hi), target - eps_n) << "q=" << q;
  }
}

TEST(GkSketch, ExactOnTinyStreams) {
  GkQuantileSketch s(0.01);
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) s.insert(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
}

TEST(GkSketch, EmptyQuantileThrows) {
  GkQuantileSketch s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.quantile(0.5), DomainError);
}

TEST(GkSketch, RejectsBadEpsilon) {
  EXPECT_THROW(GkQuantileSketch(0.0), DomainError);
  EXPECT_THROW(GkQuantileSketch(0.6), DomainError);
}

TEST(GkSketch, RankErrorBoundOnSkewedStream) {
  // Log-normal-ish heavy tail, like job runtimes.
  std::mt19937_64 rng(7);
  GkQuantileSketch s(0.01);
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) {
    const double u = static_cast<double>(rng() % 1000000) / 1000000.0;
    const double v = std::exp(8.0 * u);  // spans ~1..3000
    data.push_back(v);
    s.insert(v);
  }
  expect_within_rank_error(s, data);
  // Memory must stay sketch-sized, not stream-sized.
  EXPECT_LT(s.summary_size(), 2000u);
}

TEST(GkSketch, RankErrorBoundOnSortedAndReversedStreams) {
  for (bool reversed : {false, true}) {
    GkQuantileSketch s(0.005);
    std::vector<double> data;
    for (int i = 0; i < 20000; ++i) {
      const double v = reversed ? 20000.0 - i : static_cast<double>(i);
      data.push_back(v);
      s.insert(v);
    }
    expect_within_rank_error(s, data);
  }
}

TEST(GkSketch, MergePreservesEpsilonAcrossShards) {
  // Four disjoint substreams, as produced by four pipeline shards.
  std::mt19937_64 rng(11);
  std::vector<GkQuantileSketch> shards(4, GkQuantileSketch(0.005));
  std::vector<double> data;
  for (int i = 0; i < 40000; ++i) {
    const double v = static_cast<double>(rng() % 100000);
    data.push_back(v);
    shards[rng() % 4].insert(v);
  }
  GkQuantileSketch merged(0.005);
  for (const auto& s : shards) merged.merge(s);
  EXPECT_EQ(merged.count(), 40000u);
  expect_within_rank_error(merged, data);
}

// ---- SpaceSavingSketch ------------------------------------------------

TEST(SpaceSaving, RejectsZeroCapacity) {
  EXPECT_THROW(SpaceSavingSketch(0), DomainError);
}

TEST(SpaceSaving, ExactBelowCapacity) {
  SpaceSavingSketch s(8);
  for (int i = 0; i < 5; ++i)
    for (int k = 0; k <= i; ++k) s.add(static_cast<std::uint64_t>(i));
  const auto top = s.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 4u);
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, 3u);
}

TEST(SpaceSaving, HeavyKeysSurviveEviction) {
  // 10 heavy keys (1000 each) in a sea of 5000 singleton keys, capacity
  // 64: every heavy key's weight exceeds n/m, so all must be reported,
  // with count overestimating by at most error.
  std::mt19937_64 rng(3);
  SpaceSavingSketch s(64);
  std::vector<std::uint64_t> stream;
  for (std::uint64_t k = 0; k < 10; ++k)
    for (int i = 0; i < 1000; ++i) stream.push_back(k);
  for (std::uint64_t k = 0; k < 5000; ++k) stream.push_back(1000 + k);
  std::shuffle(stream.begin(), stream.end(), rng);
  for (std::uint64_t k : stream) s.add(k);

  const auto top = s.top(10);
  ASSERT_EQ(top.size(), 10u);
  for (const auto& e : top) {
    EXPECT_LT(e.key, 10u);  // exactly the heavy keys
    EXPECT_GE(e.count, 1000u);            // never undercounts
    EXPECT_LE(e.count - e.error, 1000u);  // count - error <= true count
    EXPECT_LE(e.error, s.error_bound());
  }
  EXPECT_LE(s.error_bound(), stream.size() / 64 + 1);
}

TEST(SpaceSaving, MergeKeepsHeavyKeysFromBothShards) {
  SpaceSavingSketch a(32), b(32);
  for (int i = 0; i < 500; ++i) a.add(1);
  for (int i = 0; i < 300; ++i) a.add(2);
  for (std::uint64_t k = 100; k < 150; ++k) a.add(k);  // shard-a noise
  for (int i = 0; i < 400; ++i) b.add(3);
  for (int i = 0; i < 200; ++i) b.add(1);
  for (std::uint64_t k = 200; k < 250; ++k) b.add(k);  // shard-b noise

  a.merge(b);
  EXPECT_EQ(a.total_weight(), 500u + 300u + 50u + 400u + 200u + 50u);
  const auto top = a.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 1u);  // 700 across both shards
  EXPECT_GE(top[0].count, 700u);
  EXPECT_LE(top[0].count - top[0].error, 700u);
  EXPECT_EQ(top[1].key, 3u);
  EXPECT_EQ(top[2].key, 2u);
}

TEST(SpaceSaving, WeightedAdds) {
  SpaceSavingSketch s(4);
  s.add(7, 10);
  s.add(8, 3);
  EXPECT_EQ(s.total_weight(), 13u);
  EXPECT_EQ(s.top(1)[0].key, 7u);
  EXPECT_EQ(s.top(1)[0].count, 10u);
}

}  // namespace
}  // namespace failmine::stream
