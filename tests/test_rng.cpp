// Unit + property tests for util/rng: determinism, range invariants, and
// first/second moments of every variate generator.

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace failmine::util {
namespace {

constexpr std::size_t kN = 20000;

double sample_mean(Rng& rng, double (Rng::*gen)()) {
  double s = 0.0;
  for (std::size_t i = 0; i < kN; ++i) s += (rng.*gen)();
  return s / static_cast<double>(kN);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(7);
  EXPECT_NEAR(sample_mean(rng, &Rng::uniform), 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::array<int, 7> counts{};
  for (int i = 0; i < 70000; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), DomainError);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.uniform_int(3, 2), DomainError);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (std::size_t i = 0; i < kN; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.015);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng(19);
  double s = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    const double v = rng.exponential(0.25);
    ASSERT_GT(v, 0.0);
    s += v;
  }
  EXPECT_NEAR(s / kN, 4.0, 0.15);
  EXPECT_THROW(rng.exponential(0.0), DomainError);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double s = 0.0, s2 = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    const double v = rng.normal(3.0, 2.0);
    s += v;
    s2 += v * v;
  }
  const double mean = s / kN;
  const double var = s2 / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.08);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, LogNormalMedian) {
  Rng rng(29);
  std::vector<double> v(kN);
  for (auto& x : v) x = rng.lognormal(1.0, 0.5);
  std::nth_element(v.begin(), v.begin() + kN / 2, v.end());
  EXPECT_NEAR(v[kN / 2], std::exp(1.0), 0.1);
}

TEST(Rng, WeibullMean) {
  Rng rng(31);
  double s = 0.0;
  for (std::size_t i = 0; i < kN; ++i) s += rng.weibull(2.0, 1.0);
  EXPECT_NEAR(s / kN, std::tgamma(1.5), 0.02);
  EXPECT_THROW(rng.weibull(-1.0, 1.0), DomainError);
}

TEST(Rng, ParetoSupportAndMedian) {
  Rng rng(37);
  std::vector<double> v(kN);
  for (auto& x : v) {
    x = rng.pareto(2.0, 3.0);
    ASSERT_GE(x, 2.0);
  }
  std::nth_element(v.begin(), v.begin() + kN / 2, v.end());
  EXPECT_NEAR(v[kN / 2], 2.0 * std::pow(2.0, 1.0 / 3.0), 0.06);
}

TEST(Rng, GammaMeanAndVariance) {
  Rng rng(41);
  for (double shape : {0.5, 1.0, 3.0, 9.0}) {
    double s = 0.0, s2 = 0.0;
    for (std::size_t i = 0; i < kN; ++i) {
      const double v = rng.gamma(shape, 2.0);
      s += v;
      s2 += v * v;
    }
    const double mean = s / kN;
    const double var = s2 / kN - mean * mean;
    EXPECT_NEAR(mean, shape * 2.0, 0.15 * shape * 2.0) << "shape=" << shape;
    EXPECT_NEAR(var, shape * 4.0, 0.25 * shape * 4.0) << "shape=" << shape;
  }
}

TEST(Rng, ErlangIsSumOfExponentials) {
  Rng rng(43);
  double s = 0.0;
  for (std::size_t i = 0; i < kN; ++i) s += rng.erlang(4, 0.5);
  EXPECT_NEAR(s / kN, 8.0, 0.25);
  EXPECT_THROW(rng.erlang(0, 1.0), DomainError);
}

TEST(Rng, InverseGaussianMean) {
  Rng rng(47);
  double s = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    const double v = rng.inverse_gaussian(3.0, 6.0);
    ASSERT_GT(v, 0.0);
    s += v;
  }
  EXPECT_NEAR(s / kN, 3.0, 0.15);
}

TEST(Rng, PoissonSmallAndLargeMeans) {
  Rng rng(53);
  for (double lambda : {0.5, 5.0, 80.0}) {
    double s = 0.0;
    for (std::size_t i = 0; i < kN; ++i)
      s += static_cast<double>(rng.poisson(lambda));
    EXPECT_NEAR(s / kN, lambda, 0.05 * lambda + 0.05) << "lambda=" << lambda;
  }
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ZipfFavorsSmallRanks) {
  Rng rng(59);
  std::array<int, 10> counts{};
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(10, 1.2) - 1];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(61);
  std::array<int, 3> counts{};
  for (int i = 0; i < 30000; ++i) ++counts[rng.categorical({1.0, 2.0, 3.0})];
  EXPECT_NEAR(counts[0], 5000, 400);
  EXPECT_NEAR(counts[1], 10000, 500);
  EXPECT_NEAR(counts[2], 15000, 600);
  EXPECT_THROW(rng.categorical({}), DomainError);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), DomainError);
  EXPECT_THROW(rng.categorical({1.0, -1.0}), DomainError);
}

TEST(AliasTable, MatchesWeightsExactly) {
  Rng rng(67);
  const AliasTable table({5.0, 1.0, 4.0});
  std::array<int, 3> counts{};
  for (int i = 0; i < 100000; ++i) ++counts[table.sample(rng)];
  EXPECT_NEAR(counts[0], 50000, 1200);
  EXPECT_NEAR(counts[1], 10000, 700);
  EXPECT_NEAR(counts[2], 40000, 1200);
}

TEST(AliasTable, HandlesZeroWeightEntries) {
  Rng rng(71);
  const AliasTable table({0.0, 1.0, 0.0});
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(table.sample(rng), 1u);
}

TEST(AliasTable, RejectsInvalidWeights) {
  EXPECT_THROW(AliasTable({}), DomainError);
  EXPECT_THROW(AliasTable({0.0}), DomainError);
  EXPECT_THROW(AliasTable({-1.0, 2.0}), DomainError);
}

}  // namespace
}  // namespace failmine::util
