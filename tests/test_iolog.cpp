// Unit tests for the iolog library.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "iolog/io_record.hpp"
#include "util/error.hpp"

namespace failmine::iolog {
namespace {

IoRecord make_record(std::uint64_t job_id, std::uint64_t read,
                     std::uint64_t write) {
  IoRecord r;
  r.job_id = job_id;
  r.bytes_read = read;
  r.bytes_written = write;
  r.read_time_seconds = 1.5;
  r.write_time_seconds = 2.25;
  r.files_accessed = 12;
  r.ranks_doing_io = 256;
  return r;
}

TEST(IoRecord, TotalBytes) {
  EXPECT_EQ(make_record(1, 100, 200).total_bytes(), 300u);
}

TEST(IoLog, IndexesByJob) {
  IoLog log({make_record(5, 1, 2), make_record(3, 3, 4)});
  EXPECT_TRUE(log.contains(3));
  EXPECT_FALSE(log.contains(4));
  EXPECT_EQ(log.by_job(5).bytes_read, 1u);
  EXPECT_THROW(log.by_job(4), failmine::DomainError);
  // Sorted by job id.
  EXPECT_EQ(log.records()[0].job_id, 3u);
}

TEST(IoLog, DuplicateJobRejected) {
  EXPECT_THROW(IoLog({make_record(1, 0, 0), make_record(1, 1, 1)}),
               failmine::DomainError);
}

class IoLogFile : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("failmine_io_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(IoLogFile, CsvRoundTrip) {
  IoLog log({make_record(7, 1234567890123ULL, 987654321ULL)});
  log.write_csv(path_);
  const IoLog loaded = IoLog::read_csv(path_);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.records()[0].job_id, 7u);
  EXPECT_EQ(loaded.records()[0].bytes_read, 1234567890123ULL);
  EXPECT_EQ(loaded.records()[0].bytes_written, 987654321ULL);
  EXPECT_NEAR(loaded.records()[0].read_time_seconds, 1.5, 1e-9);
  EXPECT_EQ(loaded.records()[0].files_accessed, 12u);
}

TEST_F(IoLogFile, ReadRejectsWrongHeader) {
  {
    std::ofstream out(path_);
    out << "a,b\n1,2\n";
  }
  EXPECT_THROW(IoLog::read_csv(path_), failmine::ParseError);
}

TEST_F(IoLogFile, ReadRejectsNegativeBytes) {
  {
    std::ofstream out(path_);
    out << "job_id,bytes_read,bytes_written,read_time_s,write_time_s,"
           "files_accessed,ranks_doing_io\n"
        << "1,-5,0,0,0,1,1\n";
  }
  EXPECT_THROW(IoLog::read_csv(path_), failmine::ParseError);
}

TEST(IoLog, EmptyLog) {
  const IoLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_FALSE(log.contains(1));
}

}  // namespace
}  // namespace failmine::iolog
