// Unit tests for analysis/temporal.

#include "analysis/temporal.hpp"

#include <gtest/gtest.h>

#include "raslog/message_catalog.hpp"

namespace failmine::analysis {
namespace {

// 2013-04-08 00:00:00 UTC was a Monday.
constexpr util::UnixSeconds kMonday = 1365379200;

joblog::JobRecord job_at(std::uint64_t id, util::UnixSeconds submit,
                         bool failed = false) {
  joblog::JobRecord j;
  j.job_id = id;
  j.user_id = 1;
  j.project_id = 1;
  j.queue = "q";
  j.submit_time = submit;
  j.start_time = submit + 60;
  j.end_time = submit + 120;
  j.nodes_used = 512;
  j.task_count = 1;
  j.requested_walltime = 3600;
  if (failed) {
    j.exit_class = joblog::ExitClass::kUserAppError;
    j.exit_code = 1;
  }
  return j;
}

TEST(Temporal, SubmissionsByHourBinsCorrectly) {
  const joblog::JobLog log({job_at(1, kMonday + 0 * 3600),
                            job_at(2, kMonday + 13 * 3600),
                            job_at(3, kMonday + 13 * 3600 + 120),
                            job_at(4, kMonday + 23 * 3600)});
  const auto p = submissions_by_hour(log);
  EXPECT_EQ(p[0], 1u);
  EXPECT_EQ(p[13], 2u);
  EXPECT_EQ(p[23], 1u);
  std::uint64_t total = 0;
  for (auto c : p) total += c;
  EXPECT_EQ(total, 4u);
}

TEST(Temporal, SubmissionsByWeekday) {
  const joblog::JobLog log({job_at(1, kMonday),               // Monday
                            job_at(2, kMonday + 86400),       // Tuesday
                            job_at(3, kMonday + 5 * 86400)}); // Saturday
  const auto p = submissions_by_weekday(log);
  EXPECT_EQ(p[0], 1u);
  EXPECT_EQ(p[1], 1u);
  EXPECT_EQ(p[5], 1u);
  EXPECT_EQ(p[6], 0u);
}

TEST(Temporal, FailuresByHourUsesEndTime) {
  const joblog::JobLog log({job_at(1, kMonday + 3600, true),
                            job_at(2, kMonday + 3600, false)});
  const auto p = failures_by_hour(log);
  std::uint64_t total = 0;
  for (auto c : p) total += c;
  EXPECT_EQ(total, 1u);
  EXPECT_EQ(p[1], 1u);  // ends at +3600+120 -> hour 1
}

TEST(Temporal, EventsByHour) {
  raslog::RasEvent e;
  e.timestamp = kMonday + 7 * 3600;
  e.message_id = "00010001";
  e.severity = raslog::Severity::kInfo;
  e.location = topology::Location::rack(0, 0);
  const raslog::RasLog log({e});
  EXPECT_EQ(events_by_hour(log)[7], 1u);
}

TEST(Temporal, MonthlySeriesIndexesFromOrigin) {
  const joblog::JobLog log({job_at(1, kMonday),
                            job_at(2, kMonday + 40 * 86400, true),
                            job_at(3, kMonday + 70 * 86400)});
  const auto monthly = monthly_submissions(log, kMonday);
  ASSERT_EQ(monthly.size(), 3u);
  EXPECT_EQ(monthly[0], 1u);
  EXPECT_EQ(monthly[1], 1u);
  EXPECT_EQ(monthly[2], 1u);
  const auto failures = monthly_failures(log, kMonday);
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_EQ(failures[1], 1u);
}

TEST(Temporal, MonthlyFatalEventsFiltersSeverity) {
  raslog::RasEvent info;
  info.timestamp = kMonday;
  info.severity = raslog::Severity::kInfo;
  info.location = topology::Location::rack(0, 0);
  raslog::RasEvent fatal = info;
  fatal.severity = raslog::Severity::kFatal;
  fatal.timestamp = kMonday + 86400;
  const raslog::RasLog log({info, fatal});
  const auto monthly = monthly_fatal_events(log, kMonday);
  ASSERT_EQ(monthly.size(), 1u);
  EXPECT_EQ(monthly[0], 1u);
}

TEST(Temporal, PeakToTroughRatio) {
  HourlyProfile p{};
  p.fill(10);
  p[14] = 40;
  p[3] = 5;
  EXPECT_DOUBLE_EQ(peak_to_trough(p), 8.0);
  HourlyProfile zeros{};
  zeros[0] = 7;
  EXPECT_DOUBLE_EQ(peak_to_trough(zeros), 7.0);  // min clamped to 1
}

}  // namespace
}  // namespace failmine::analysis
