// Property tests for the MLE fitters: each fitter must recover the
// generating parameters from a large sample of its own family
// (parameterized over several parameter points per family).

#include "distfit/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace failmine::distfit {
namespace {

constexpr std::size_t kN = 30000;

std::vector<double> draw(const Distribution& d, std::uint64_t seed) {
  util::Rng rng(seed);
  return d.sample_many(rng, kN);
}

// ---- Exponential -------------------------------------------------------

class ExponentialRecovery : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialRecovery, RateRecovered) {
  const double rate = GetParam();
  const auto sample = draw(Exponential(rate), 101);
  const Exponential fit = fit_exponential(sample);
  EXPECT_NEAR(fit.rate(), rate, 0.05 * rate);
}

INSTANTIATE_TEST_SUITE_P(Rates, ExponentialRecovery,
                         ::testing::Values(0.1, 1.0, 5.0, 40.0));

// ---- Weibull -----------------------------------------------------------

class WeibullRecovery
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(WeibullRecovery, ShapeAndScaleRecovered) {
  const auto [shape, scale] = GetParam();
  const auto sample = draw(Weibull(shape, scale), 103);
  const Weibull fit = fit_weibull(sample);
  EXPECT_NEAR(fit.shape(), shape, 0.05 * shape);
  EXPECT_NEAR(fit.scale(), scale, 0.05 * scale);
}

INSTANTIATE_TEST_SUITE_P(Shapes, WeibullRecovery,
                         ::testing::Values(std::pair{0.7, 100.0},
                                           std::pair{1.0, 3.0},
                                           std::pair{2.2, 0.5},
                                           std::pair{4.0, 1000.0}));

// ---- Pareto ------------------------------------------------------------

class ParetoRecovery
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(ParetoRecovery, XmAndAlphaRecovered) {
  const auto [xm, alpha] = GetParam();
  const auto sample = draw(Pareto(xm, alpha), 107);
  const Pareto fit = fit_pareto(sample);
  EXPECT_NEAR(fit.xm(), xm, 0.01 * xm);  // MLE xm is the sample min
  EXPECT_NEAR(fit.alpha(), alpha, 0.06 * alpha);
}

INSTANTIATE_TEST_SUITE_P(Params, ParetoRecovery,
                         ::testing::Values(std::pair{1.0, 1.3},
                                           std::pair{300.0, 2.5},
                                           std::pair{0.5, 4.0}));

// ---- LogNormal -----------------------------------------------------------

class LogNormalRecovery
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LogNormalRecovery, MuSigmaRecovered) {
  const auto [mu, sigma] = GetParam();
  const auto sample = draw(LogNormal(mu, sigma), 109);
  const LogNormal fit = fit_lognormal(sample);
  EXPECT_NEAR(fit.mu(), mu, 0.03 + 0.03 * std::fabs(mu));
  EXPECT_NEAR(fit.sigma(), sigma, 0.05 * sigma);
}

INSTANTIATE_TEST_SUITE_P(Params, LogNormalRecovery,
                         ::testing::Values(std::pair{0.0, 1.0},
                                           std::pair{5.0, 0.3},
                                           std::pair{-2.0, 2.0}));

// ---- Gamma ---------------------------------------------------------------

class GammaRecovery
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(GammaRecovery, ShapeScaleRecovered) {
  const auto [shape, scale] = GetParam();
  const auto sample = draw(GammaDist(shape, scale), 113);
  const GammaDist fit = fit_gamma(sample);
  EXPECT_NEAR(fit.shape(), shape, 0.06 * shape);
  EXPECT_NEAR(fit.scale(), scale, 0.08 * scale);
}

INSTANTIATE_TEST_SUITE_P(Params, GammaRecovery,
                         ::testing::Values(std::pair{0.5, 2.0},
                                           std::pair{2.0, 10.0},
                                           std::pair{9.0, 0.25}));

// ---- Erlang ----------------------------------------------------------------

class ErlangRecovery : public ::testing::TestWithParam<std::pair<int, double>> {};

TEST_P(ErlangRecovery, IntegerShapeRecovered) {
  const auto [k, rate] = GetParam();
  const auto sample = draw(Erlang(k, rate), 127);
  const Erlang fit = fit_erlang(sample);
  EXPECT_EQ(fit.k(), k);
  EXPECT_NEAR(fit.rate(), rate, 0.05 * rate);
}

INSTANTIATE_TEST_SUITE_P(Params, ErlangRecovery,
                         ::testing::Values(std::pair{1, 0.5}, std::pair{2, 3.0},
                                           std::pair{6, 0.01}));

// ---- Inverse Gaussian -------------------------------------------------------

class InverseGaussianRecovery
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(InverseGaussianRecovery, MuLambdaRecovered) {
  const auto [mu, lambda] = GetParam();
  const auto sample = draw(InverseGaussian(mu, lambda), 131);
  const InverseGaussian fit = fit_inverse_gaussian(sample);
  EXPECT_NEAR(fit.mu(), mu, 0.05 * mu);
  EXPECT_NEAR(fit.lambda(), lambda, 0.08 * lambda);
}

INSTANTIATE_TEST_SUITE_P(Params, InverseGaussianRecovery,
                         ::testing::Values(std::pair{1.0, 1.0},
                                           std::pair{5.0, 20.0},
                                           std::pair{0.5, 0.1}));

// ---- Normal / Rayleigh -------------------------------------------------------

TEST(NormalRecovery, MuSigma) {
  const auto sample = draw(NormalDist(-3.0, 2.5), 137);
  const NormalDist fit = fit_normal(sample);
  EXPECT_NEAR(fit.mu(), -3.0, 0.05);
  EXPECT_NEAR(fit.sigma(), 2.5, 0.05);
}

TEST(RayleighRecovery, Sigma) {
  const auto sample = draw(Rayleigh(4.2), 139);
  const Rayleigh fit = fit_rayleigh(sample);
  EXPECT_NEAR(fit.sigma(), 4.2, 0.05);
}

// ---- Error handling -----------------------------------------------------------

TEST(Fitters, RejectEmptyAndNonPositiveSamples) {
  EXPECT_THROW(fit_exponential({}), failmine::DomainError);
  EXPECT_THROW(fit_weibull(std::vector<double>{1.0, -1.0}),
               failmine::DomainError);
  EXPECT_THROW(fit_pareto(std::vector<double>{0.0, 1.0}),
               failmine::DomainError);
  EXPECT_THROW(fit_lognormal(std::vector<double>{1.0}), failmine::DomainError);
  EXPECT_THROW(fit_gamma(std::vector<double>{2.0, 2.0}),
               failmine::DomainError);  // constant sample
  EXPECT_THROW(fit_inverse_gaussian(std::vector<double>{3.0, 3.0}),
               failmine::DomainError);
  EXPECT_THROW(fit_normal(std::vector<double>{1.0, 1.0}),
               failmine::DomainError);
}

TEST(Fitters, ParetoRejectsConstantSample) {
  EXPECT_THROW(fit_pareto(std::vector<double>{2.0, 2.0, 2.0}),
               failmine::DomainError);
}

TEST(Fitters, ErlangValidatesKMax) {
  EXPECT_THROW(fit_erlang(std::vector<double>{1.0, 2.0}, 0),
               failmine::DomainError);
}

TEST(Fitters, FittedLikelihoodBeatsPerturbedParameters) {
  // The MLE should out-score nearby non-MLE parameterizations.
  const auto sample = draw(Weibull(1.5, 10.0), 149);
  const Weibull fit = fit_weibull(sample);
  const double best = fit.log_likelihood(sample);
  EXPECT_GT(best, Weibull(fit.shape() * 1.2, fit.scale()).log_likelihood(sample));
  EXPECT_GT(best, Weibull(fit.shape(), fit.scale() * 1.2).log_likelihood(sample));
  EXPECT_GT(best, Weibull(fit.shape() * 0.8, fit.scale() * 0.9).log_likelihood(sample));
}

}  // namespace
}  // namespace failmine::distfit
