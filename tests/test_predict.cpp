// Unit tests for the failure-prediction subsystem (src/predict): the
// decayed risk signals, the user-propensity history, the checkpoint
// policy's interval bounds and cost model, the precursor miner's
// watermark-deferred scoring window, and the operator's snapshot JSON.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "predict/operator.hpp"
#include "predict/policy.hpp"
#include "predict/precursor.hpp"
#include "predict/risk.hpp"
#include "util/error.hpp"

namespace failmine::predict {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

// ---- risk decay --------------------------------------------------------

TEST(PredictRisk, LocationPressureDecaysExponentially) {
  LocationPressure pressure(100.0);
  pressure.bump(3, 1.0, 1000);
  EXPECT_DOUBLE_EQ(pressure.value_at(3, 1000), 1.0);
  EXPECT_DOUBLE_EQ(pressure.value_at(3, 1100), std::exp(-1.0));
  EXPECT_DOUBLE_EQ(pressure.value_at(7, 1100), 0.0);  // untouched cell
  // A second bump compounds on the decayed value.
  pressure.bump(3, 1.0, 1100);
  EXPECT_DOUBLE_EQ(pressure.value_at(3, 1100), std::exp(-1.0) + 1.0);
}

TEST(PredictRisk, LocationPressureRejectsNonPositiveTau) {
  EXPECT_THROW(LocationPressure(0.0), failmine::DomainError);
  EXPECT_THROW(LocationPressure(-1.0), failmine::DomainError);
}

tasklog::TaskRecord task_for(std::uint64_t job_id, bool failed) {
  tasklog::TaskRecord task;
  task.job_id = job_id;
  task.exit_code = failed ? 1 : 0;
  return task;
}

RiskConfig plain_risk_config() {
  RiskConfig config;
  config.task_decay_tau_seconds = 1000.0;
  config.live_flag_threshold = 1.5;
  return config;
}

TEST(PredictRisk, TaskScoreDecaysBetweenUpdates) {
  JobRiskScorer scorer(plain_risk_config(), kMira);
  scorer.observe_task(task_for(42, true), 1000);
  auto top = scorer.top_live(1, 1000);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_DOUBLE_EQ(top[0].task_score, 1.0);

  // One tau later the score has decayed by e^-1; a fresh failure stacks
  // on top of the decayed value.
  scorer.observe_task(task_for(42, true), 2000);
  top = scorer.top_live(1, 2000);
  EXPECT_DOUBLE_EQ(top[0].task_score, std::exp(-1.0) + 1.0);
  EXPECT_EQ(top[0].tasks_seen, 2u);
  EXPECT_EQ(top[0].tasks_failed, 2u);
}

TEST(PredictRisk, FlagsJobOnThresholdCrossingAndMeasuresLead) {
  JobRiskScorer scorer(plain_risk_config(), kMira);
  UserHistory users(8, 10.0);
  LocationPressure quiet(1.0);

  scorer.observe_task(task_for(7, true), 1000);  // score 1.0 < 1.5
  scorer.observe_task(task_for(7, true), 1001);  // ~2.0 >= 1.5: flagged
  joblog::JobRecord job;
  job.job_id = 7;
  job.exit_code = 1;
  job.exit_class = joblog::ExitClass::kUserAppError;
  const auto a = scorer.score_job_end(job, 1601, quiet, quiet, users);
  EXPECT_TRUE(a.flagged_live);
  EXPECT_EQ(a.flag_lead_seconds, 600);
  EXPECT_GT(a.task_component, 0.0);
  EXPECT_EQ(scorer.live_jobs(), 0u);  // retired at end-of-job

  scorer.record_outcome(a, /*failed=*/true);
  EXPECT_EQ(scorer.true_positives(), 1u);
  EXPECT_DOUBLE_EQ(scorer.precision(), 1.0);
  EXPECT_DOUBLE_EQ(scorer.recall(), 1.0);
}

TEST(PredictRisk, HealthySuccessfulJobScoresNearZero) {
  JobRiskScorer scorer(plain_risk_config(), kMira);
  UserHistory users(8, 10.0);
  LocationPressure quiet(1.0);
  scorer.observe_task(task_for(9, false), 500);
  joblog::JobRecord job;
  job.job_id = 9;
  const auto a = scorer.score_job_end(job, 900, quiet, quiet, users);
  EXPECT_FALSE(a.flagged_live);
  EXPECT_DOUBLE_EQ(a.risk, 0.0);
  scorer.record_outcome(a, /*failed=*/false);
  EXPECT_EQ(scorer.true_negatives(), 1u);
}

TEST(PredictRisk, PostMortemTaskDoesNotResurrectRetiredJob) {
  // Replay orders a job's end record before its same-stamp task records,
  // so failed tasks stamped at the job's final second arrive after the
  // job was scored and retired. They must not re-create a live entry.
  JobRiskScorer scorer(plain_risk_config(), kMira);
  UserHistory users(8, 10.0);
  LocationPressure quiet(1.0);
  scorer.observe_task(task_for(11, false), 500);
  joblog::JobRecord job;
  job.job_id = 11;
  (void)scorer.score_job_end(job, 900, quiet, quiet, users);
  EXPECT_EQ(scorer.live_jobs(), 0u);

  scorer.observe_task(task_for(11, true), 900);  // post-mortem, same stamp
  EXPECT_EQ(scorer.live_jobs(), 0u);
  // A DIFFERENT job's task at that stamp is genuinely live.
  scorer.observe_task(task_for(12, false), 900);
  EXPECT_EQ(scorer.live_jobs(), 1u);
  // And once time moves on, the id may be reused by a fresh job.
  scorer.observe_task(task_for(11, false), 901);
  EXPECT_EQ(scorer.live_jobs(), 2u);
}

TEST(PredictRisk, RiskThresholdFlagsWithoutTaskSignal) {
  // End-of-job environment risk alone (no live task flag) crosses
  // flag_threshold: the job counts as flagged, but contributes no lead
  // time — a threshold crossing at the end record is zero-lead by design.
  RiskConfig config = plain_risk_config();  // flag_threshold 2.0, w_warn 0.5
  JobRiskScorer scorer(config, kMira);
  UserHistory users(8, 10.0);
  LocationPressure warn(1e9);  // effectively no decay within the test
  LocationPressure quiet(1.0);
  warn.bump(0, 10.0, 1000);  // warn_component = 0.5 * 10 = 5 >= 2

  joblog::JobRecord job;
  job.job_id = 21;
  job.nodes_used = 512;  // one midplane, starting at global index 0
  const auto a = scorer.score_job_end(job, 1000, warn, quiet, users);
  EXPECT_FALSE(a.flagged_live);
  EXPECT_TRUE(a.flagged);
  EXPECT_GE(a.risk, config.flag_threshold);

  scorer.record_outcome(a, /*failed=*/true);
  EXPECT_EQ(scorer.true_positives(), 1u);
  EXPECT_TRUE(scorer.flag_lead_sketch().empty());  // no lead recorded
}

TEST(PredictRisk, LiveTableEvictsStalestAtCapacity) {
  RiskConfig config = plain_risk_config();
  config.max_live_jobs = 2;
  JobRiskScorer scorer(config, kMira);
  scorer.observe_task(task_for(1, false), 100);
  scorer.observe_task(task_for(2, false), 200);
  scorer.observe_task(task_for(3, false), 300);  // evicts job 1 (stalest)
  EXPECT_EQ(scorer.live_jobs(), 2u);
  EXPECT_EQ(scorer.evictions(), 1u);
  const auto top = scorer.top_live(10, 300);
  for (const auto& job : top) EXPECT_NE(job.job_id, 1u);
}

TEST(PredictRisk, UserPropensityTracksRelativeFailureRate) {
  UserHistory users(8, 4.0);
  EXPECT_DOUBLE_EQ(users.propensity_ratio(1), 1.0);  // no data: average

  // User 1 fails every job; user 2 never does. Global rate = 1/2.
  for (int i = 0; i < 10; ++i) {
    users.record_job(1, true);
    users.record_job(2, false);
  }
  EXPECT_DOUBLE_EQ(users.propensity_ratio(1), 2.0);  // 1.0 / 0.5
  EXPECT_DOUBLE_EQ(users.propensity_ratio(2), 0.0);
  EXPECT_DOUBLE_EQ(users.propensity_ratio(99), 1.0);  // unmonitored
}

TEST(PredictRisk, UserPropensityIsCapped) {
  UserHistory users(8, 4.0);
  users.record_job(1, true);
  for (int i = 0; i < 99; ++i) users.record_job(2, false);
  // User 1's rate is 1.0 vs global 0.01 — ratio 100, capped to 4.
  EXPECT_DOUBLE_EQ(users.propensity_ratio(1), 4.0);
}

// ---- checkpoint policy -------------------------------------------------

PolicyConfig plain_policy_config() {
  PolicyConfig config;
  config.checkpoint_write_seconds = 600.0;
  config.min_interval_seconds = 600.0;
  config.max_interval_seconds = 48.0 * 3600.0;
  return config;
}

joblog::JobRecord job_running(std::uint32_t nodes, std::int64_t runtime) {
  joblog::JobRecord job;
  job.nodes_used = nodes;
  job.start_time = 0;
  job.end_time = runtime;
  return job;
}

TEST(PredictPolicy, NoHazardMeansNoCheckpoints) {
  CheckpointPolicy policy(plain_policy_config(), kMira);
  const auto d = policy.score_job(job_running(1024, 7200), false, 1.0);
  EXPECT_DOUBLE_EQ(d.job_mtbf_seconds, 0.0);
  EXPECT_DOUBLE_EQ(d.static_interval_seconds, 0.0);
  EXPECT_DOUBLE_EQ(d.adaptive_interval_seconds, 0.0);
  EXPECT_EQ(policy.cost_static().checkpointed, 0u);
}

TEST(PredictPolicy, IntervalsClampToConfiguredBounds) {
  CheckpointPolicy policy(plain_policy_config(), kMira);
  // Seed a brutal hazard: one kill over a tiny exposure.
  (void)policy.score_job(job_running(1024, 10), true, 1.0);
  ASSERT_GT(policy.hazard_per_node_second(), 0.0);
  const auto harsh = policy.score_job(job_running(49152, 7200), false, 8.0);
  // MTBF is tiny, so raw Daly would be < 600 s; the clamp must hold.
  EXPECT_DOUBLE_EQ(harsh.static_interval_seconds, 600.0);
  EXPECT_DOUBLE_EQ(harsh.adaptive_interval_seconds, 600.0);

  // A nearly-immortal machine: raw Daly exceeds the cap.
  CheckpointPolicy gentle(plain_policy_config(), kMira);
  (void)gentle.score_job(job_running(1, 2'000'000'000LL), true, 1.0);
  const auto calm = gentle.score_job(job_running(1, 7200), false, 1.0);
  EXPECT_DOUBLE_EQ(calm.static_interval_seconds, 48.0 * 3600.0);
}

TEST(PredictPolicy, RiskMultiplierShortensTheAdaptiveInterval) {
  CheckpointPolicy policy(plain_policy_config(), kMira);
  (void)policy.score_job(job_running(1024, 500'000), true, 1.0);
  const auto d = policy.score_job(job_running(1024, 7200), false, 4.0);
  ASSERT_GT(d.static_interval_seconds, 0.0);
  EXPECT_LT(d.adaptive_interval_seconds, d.static_interval_seconds);
  EXPECT_DOUBLE_EQ(d.risk_multiplier, 4.0);

  // The multiplier is clamped to [1, max].
  const auto wild = policy.score_job(job_running(1024, 7200), false, 1e9);
  EXPECT_DOUBLE_EQ(wild.risk_multiplier,
                   plain_policy_config().max_risk_multiplier);
  const auto sub = policy.score_job(job_running(1024, 7200), false, 0.1);
  EXPECT_DOUBLE_EQ(sub.risk_multiplier, 1.0);
}

TEST(PredictPolicy, ColdStartFallsBackToInterruptionGaps) {
  CheckpointPolicy policy(plain_policy_config(), kMira);
  policy.on_interruption(10'000);
  // One interruption is not a rate yet.
  EXPECT_DOUBLE_EQ(policy.score_job(job_running(1024, 3600), false, 1.0)
                       .job_mtbf_seconds,
                   0.0);
  policy.on_interruption(30'000);
  // Mean gap 20k s at machine scale; a 1024-node job sees 1/48 of the
  // exposure on Mira (49152 nodes).
  const auto d = policy.score_job(job_running(1024, 3600), false, 1.0);
  EXPECT_DOUBLE_EQ(d.job_mtbf_seconds,
                   20'000.0 * static_cast<double>(kMira.total_nodes()) /
                       1024.0);
  EXPECT_EQ(policy.interval_sketch().count(), 1u);
}

TEST(PredictPolicy, CostModelChargesWritesAndLostSegment) {
  PolicyConfig config = plain_policy_config();
  CheckpointPolicy policy(config, kMira);
  // Known hazard: 1 kill / (1000 nodes * 1e6 s) = 1e-9 per node-second.
  (void)policy.score_job(job_running(1000, 1'000'000), true, 1.0);

  // The "none" baseline lost that whole first run:
  // 1000 nodes * 16 cores * 1e6 s / 3600.
  const double core_seconds = 1000.0 * 16.0;
  EXPECT_DOUBLE_EQ(policy.cost_none().lost_core_hours,
                   1'000'000.0 * core_seconds / 3600.0);
  EXPECT_DOUBLE_EQ(policy.cost_none().overhead_core_hours, 0.0);

  // A surviving job under a finite interval pays writes only.
  const auto before = policy.cost_static();
  const auto d = policy.score_job(job_running(1000, 100'000), false, 1.0);
  ASSERT_GT(d.static_interval_seconds, 0.0);
  ASSERT_LT(d.static_interval_seconds, 100'000.0);
  const double writes = std::floor(100'000.0 / d.static_interval_seconds);
  EXPECT_DOUBLE_EQ(policy.cost_static().overhead_core_hours -
                       before.overhead_core_hours,
                   writes * 600.0 * core_seconds / 3600.0);
  EXPECT_DOUBLE_EQ(policy.cost_static().lost_core_hours,
                   before.lost_core_hours);
}

TEST(PredictPolicy, RejectsInvalidConfiguration) {
  PolicyConfig bad = plain_policy_config();
  bad.checkpoint_write_seconds = 0.0;
  EXPECT_THROW(CheckpointPolicy(bad, kMira), failmine::DomainError);
  bad = plain_policy_config();
  bad.max_interval_seconds = bad.min_interval_seconds / 2;
  EXPECT_THROW(CheckpointPolicy(bad, kMira), failmine::DomainError);
  bad = plain_policy_config();
  bad.max_risk_multiplier = 0.5;
  EXPECT_THROW(CheckpointPolicy(bad, kMira), failmine::DomainError);
}

// ---- precursor miner ---------------------------------------------------

raslog::RasEvent ras_at(util::UnixSeconds t, raslog::Severity severity,
                        int midplane, const std::string& message_id,
                        raslog::Category category = raslog::Category::kMemory) {
  raslog::RasEvent event;
  event.timestamp = t;
  event.severity = severity;
  event.category = category;
  event.message_id = message_id;
  event.location = topology::Location::rack(0, 0).with_midplane(midplane);
  return event;
}

PredictConfig miner_config() {
  PredictConfig config;
  config.horizon_seconds = 3600;
  config.alert_min_category_warns = 1;  // alert immediately once predictive
  config.alert_min_score = 0.0;
  return config;
}

TEST(PredictMiner, AttributesLatestSimilarWarnAsPrecursor) {
  PrecursorMiner miner(miner_config());
  miner.advance(1000);
  miner.observe_ras(ras_at(1000, raslog::Severity::kWarn, 0, "00010001"));
  miner.advance(2000);
  miner.observe_ras(ras_at(2000, raslog::Severity::kWarn, 0, "00010002"));
  miner.advance(2500);
  miner.observe_ras(ras_at(2500, raslog::Severity::kFatal, 0, "000f0001"));
  miner.finish();

  const auto r = miner.lead_time_result();
  ASSERT_EQ(r.per_interruption.size(), 1u);
  EXPECT_EQ(r.with_precursor, 1u);
  // The LATEST in-window similar WARN wins, exactly like the batch walk.
  ASSERT_TRUE(r.per_interruption[0].lead_seconds.has_value());
  EXPECT_EQ(*r.per_interruption[0].lead_seconds, 500);
  EXPECT_EQ(r.per_interruption[0].warn_message_id, "00010002");
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
}

TEST(PredictMiner, DistantWarnIsNotAPrecursor) {
  PrecursorMiner miner(miner_config());
  miner.advance(1000);
  // Different midplane: fails the spatial similarity.
  miner.observe_ras(ras_at(1000, raslog::Severity::kWarn, 1, "00010001"));
  miner.advance(1500);
  miner.observe_ras(ras_at(1500, raslog::Severity::kFatal, 0, "000f0001"));
  miner.finish();
  const auto r = miner.lead_time_result();
  EXPECT_EQ(r.with_precursor, 0u);
  EXPECT_EQ(r.without_precursor, 1u);
}

TEST(PredictMiner, EqualTimestampWarnAfterFatalStillCounts) {
  // The satellite-fix regression: the batch window is INCLUSIVE
  // (warn.ts <= cluster.first_time), and under skewed replay a WARN
  // stamped at the fatal's exact second can be routed after it. Scoring
  // at watermark time — cluster resolution deferred until time strictly
  // advances — must still attribute it.
  PrecursorMiner miner(miner_config());
  miner.advance(2000);
  miner.observe_ras(ras_at(2000, raslog::Severity::kFatal, 0, "000f0001"));
  EXPECT_EQ(miner.pending_clusters(), 1u);
  miner.advance(2000);  // same-stamp records keep streaming
  miner.observe_ras(ras_at(2000, raslog::Severity::kWarn, 0, "00010009"));
  EXPECT_EQ(miner.pending_clusters(), 1u);  // still deferred
  miner.advance(2001);  // watermark passes: now the window is complete
  EXPECT_EQ(miner.pending_clusters(), 0u);

  const auto r = miner.lead_time_result();
  ASSERT_EQ(r.per_interruption.size(), 1u);
  EXPECT_EQ(r.with_precursor, 1u);
  EXPECT_EQ(*r.per_interruption[0].lead_seconds, 0);
  EXPECT_EQ(r.per_interruption[0].warn_message_id, "00010009");
}

TEST(PredictMiner, GradesAlertsAgainstLaterInterruptions) {
  PredictConfig config = miner_config();
  config.lead_horizons = {300, 1800};
  PrecursorMiner miner(config);

  // Make the MEMORY category predictive: one attributed interruption.
  miner.advance(1000);
  miner.observe_ras(ras_at(1000, raslog::Severity::kWarn, 0, "00010001"));
  miner.advance(1100);
  miner.observe_ras(ras_at(1100, raslog::Severity::kFatal, 0, "000f0001"));
  miner.advance(10'000);  // resolve + expire everything near t=1000
  EXPECT_EQ(miner.clusters_resolved(), 1u);
  EXPECT_EQ(miner.category_scores()[0].hits, 1u);

  // The next MEMORY WARN alerts; a similar fatal 600 s later matches it.
  miner.observe_ras(ras_at(10'000, raslog::Severity::kWarn, 2, "00010001"));
  EXPECT_EQ(miner.alerts_emitted(), 1u);
  miner.advance(10'600);
  miner.observe_ras(ras_at(10'600, raslog::Severity::kFatal, 2, "000f0001"));
  // And one unmatched alert far away on another midplane.
  miner.advance(20'000);
  miner.observe_ras(ras_at(20'000, raslog::Severity::kWarn, 3, "00010001"));
  miner.finish();

  EXPECT_EQ(miner.alerts_graded(), 2u);
  EXPECT_EQ(miner.alerts_matched(), 1u);
  EXPECT_EQ(miner.clusters_alerted(), 1u);
  // Lead 600 s clears the 300 s horizon but not 1800 s.
  EXPECT_EQ(miner.alerts_matched_at()[0], 1u);
  EXPECT_EQ(miner.alerts_matched_at()[1], 0u);
  EXPECT_EQ(miner.clusters_alerted_at()[0], 1u);
  EXPECT_EQ(miner.clusters_alerted_at()[1], 0u);
}

TEST(PredictMiner, RejectsNonPositiveHorizon) {
  PredictConfig config;
  config.horizon_seconds = 0;
  EXPECT_THROW(PrecursorMiner{config}, failmine::DomainError);
}

// ---- operator + snapshot ----------------------------------------------

stream::StreamRecord record_of(raslog::RasEvent event) {
  stream::StreamRecord record;
  record.time = event.timestamp;
  record.payload = std::move(event);
  return record;
}

TEST(PredictOperatorTest, SnapshotJsonIsWellFormedAndCounts) {
  PredictConfig config = miner_config();
  PredictOperator op(config);

  op.observe(record_of(ras_at(1000, raslog::Severity::kWarn, 0, "00010001")));
  op.observe(record_of(ras_at(1500, raslog::Severity::kFatal, 0, "000f0001")));

  tasklog::TaskRecord task = task_for(5, true);
  task.end_time = 1600;
  stream::StreamRecord task_record;
  task_record.time = 1600;
  task_record.payload = task;
  op.observe(task_record);

  joblog::JobRecord job;
  job.job_id = 5;
  job.user_id = 3;
  job.nodes_used = 512;
  job.start_time = 100;
  job.end_time = 1700;
  job.exit_code = 1;
  job.exit_class = joblog::ExitClass::kUserAppError;
  stream::StreamRecord job_record;
  job_record.time = 1700;
  job_record.payload = job;
  op.observe(job_record);

  op.finish();
  const auto snap = op.snapshot();
  EXPECT_EQ(snap.records, 4u);
  EXPECT_EQ(snap.warns, 1u);
  EXPECT_EQ(snap.interruptions, 1u);
  EXPECT_EQ(snap.jobs_scored, 1u);
  EXPECT_TRUE(snap.finished);
  EXPECT_EQ(snap.with_precursor, 1u);

  const std::string json = op.snapshot_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');  // no trailing newline: spliced inline
  EXPECT_NE(json.find("\"lead_time\""), std::string::npos);
  EXPECT_NE(json.find("\"alerting\""), std::string::npos);
  EXPECT_NE(json.find("\"risk\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\""), std::string::npos);
  EXPECT_NE(json.find("\"records\":4"), std::string::npos);
  EXPECT_EQ(op.section_name(), "predict");
}

}  // namespace
}  // namespace failmine::predict
