// Tests for the StreamPipeline: lifecycle, backpressure accounting,
// snapshot consistency, metrics wiring, and shard-count invariance.

#include "stream/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/replay.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace failmine::stream {
namespace {

const sim::SimResult& trace() {
  static const sim::SimResult result = [] {
    sim::SimConfig config = sim::SimConfig::test_scale();
    config.scale = 0.004;
    return sim::simulate(config);
  }();
  return result;
}

StreamConfig small_config(std::size_t shards) {
  StreamConfig config;
  config.shard_count = shards;
  config.queue_capacity = 512;
  config.max_lateness_seconds = 0;
  return config;
}

StreamSnapshot run_all(StreamConfig config) {
  StreamPipeline pipeline(std::move(config));
  pipeline.push_batch(sim::build_replay(trace()));
  pipeline.finish();
  return pipeline.snapshot();
}

TEST(StreamPipeline, RejectsBadConfig) {
  StreamConfig zero_shards;
  zero_shards.shard_count = 0;
  EXPECT_THROW(StreamPipeline{zero_shards}, DomainError);
  StreamConfig zero_window;
  zero_window.window_buckets = 0;
  EXPECT_THROW(StreamPipeline{zero_window}, DomainError);
}

TEST(StreamPipeline, ProcessesEveryAcceptedRecord) {
  const auto snap = run_all(small_config(2));
  const std::size_t expected = trace().job_log.size() +
                               trace().task_log.size() +
                               trace().ras_log.size() + trace().io_log.size();
  EXPECT_TRUE(snap.finished);
  EXPECT_EQ(snap.records_in, expected);
  EXPECT_EQ(snap.records_processed, expected);
  EXPECT_EQ(snap.records_dropped, 0u);
  EXPECT_EQ(snap.records_late, 0u);
  EXPECT_EQ(snap.queue_depth, 0u);
  EXPECT_EQ(snap.records_by_source[0], trace().job_log.size());
  EXPECT_EQ(snap.records_by_source[1], trace().task_log.size());
  EXPECT_EQ(snap.records_by_source[2], trace().ras_log.size());
  EXPECT_EQ(snap.records_by_source[3], trace().io_log.size());
}

TEST(StreamPipeline, PushAfterFinishIsRejected) {
  StreamPipeline pipeline(small_config(1));
  pipeline.finish();
  StreamRecord r;
  r.payload = joblog::JobRecord{};
  EXPECT_FALSE(pipeline.push(std::move(r)));
  EXPECT_EQ(pipeline.snapshot().records_dropped, 1u);
}

TEST(StreamPipeline, DropPolicySheddingIsAccounted) {
  // A tiny ring under kDropNewest with a flood of pushes: whatever the
  // router keeps up with, accepted + dropped must equal offered, and the
  // pipeline must finish cleanly.
  StreamConfig config = small_config(1);
  config.queue_capacity = 8;
  config.policy = BackpressurePolicy::kDropNewest;
  StreamPipeline pipeline(config);

  auto records = sim::build_replay(trace());
  const std::size_t offered = records.size();
  std::size_t accepted = 0;
  for (auto& r : records)
    if (pipeline.push(std::move(r))) ++accepted;
  pipeline.finish();

  const auto snap = pipeline.snapshot();
  EXPECT_EQ(snap.records_in, accepted);
  EXPECT_EQ(snap.records_in + snap.records_dropped, offered);
  EXPECT_EQ(snap.records_processed, accepted);
}

TEST(StreamPipeline, LiveSnapshotIsConsistentUnderConcurrency) {
  // Snapshots taken while producers are pushing must be internally
  // consistent prefixes: processed <= in, and totals that can never
  // exceed their inputs must not.
  StreamConfig config = small_config(2);
  StreamPipeline pipeline(config);
  auto records = sim::build_replay(trace());

  std::thread producer([&] {
    std::vector<StreamRecord> chunk;
    for (std::size_t i = 0; i < records.size();) {
      const std::size_t n = std::min<std::size_t>(64, records.size() - i);
      chunk.assign(std::make_move_iterator(records.begin() + i),
                   std::make_move_iterator(records.begin() + i + n));
      pipeline.push_batch(std::move(chunk));
      i += n;
    }
  });
  for (int i = 0; i < 50; ++i) {
    const auto snap = pipeline.snapshot();
    EXPECT_LE(snap.records_processed, snap.records_in);
    EXPECT_LE(snap.exit_breakdown.total_failures,
              snap.exit_breakdown.total_jobs);
    EXPECT_LE(snap.window_failures, snap.window_jobs);
    EXPECT_EQ(snap.runtime_samples, snap.exit_breakdown.total_jobs);
  }
  producer.join();
  pipeline.finish();
  EXPECT_EQ(pipeline.snapshot().records_dropped, 0u);
}

TEST(StreamPipeline, ShardCountDoesNotChangeExactResults) {
  const auto one = run_all(small_config(1));
  const auto four = run_all(small_config(4));
  EXPECT_EQ(one.exit_breakdown.total_jobs, four.exit_breakdown.total_jobs);
  EXPECT_EQ(one.exit_breakdown.total_failures,
            four.exit_breakdown.total_failures);
  EXPECT_EQ(one.interruptions, four.interruptions);
  EXPECT_EQ(one.task_failures, four.task_failures);
  EXPECT_EQ(one.io_bytes_total, four.io_bytes_total);
  EXPECT_EQ(one.severity_totals, four.severity_totals);
  EXPECT_EQ(one.window_jobs, four.window_jobs);
  EXPECT_EQ(one.window_severity, four.window_severity);
  EXPECT_NEAR(one.total_core_hours, four.total_core_hours,
              1e-9 * one.total_core_hours);
}

TEST(StreamPipeline, FeedsObsMetrics) {
  auto& registry = obs::metrics();
  const std::uint64_t in_before = registry.counter_value("stream.records_in");
  const auto snap = run_all(small_config(2));
  EXPECT_EQ(registry.counter_value("stream.records_in") - in_before,
            snap.records_in);
  // The gauges exist and settle at drained values after finish().
  EXPECT_EQ(registry.gauge("stream.queue_depth").value(), 0.0);
  EXPECT_EQ(registry.gauge("stream.watermark_lag_s").value(), 0.0);
}

TEST(StreamPipeline, SnapshotJsonIsWellFormedEnough) {
  const auto snap = run_all(small_config(2));
  const std::string json = snap.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');
  EXPECT_EQ(json.back(), '\n');
  for (const char* key :
       {"\"ingest\"", "\"records_in\"", "\"exit_breakdown\"",
        "\"rolling_window\"", "\"interruptions\"", "\"runtime_quantiles\"",
        "\"heavy_hitters\"", "\"watermark_lag_s\"", "\"finished\":true"})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  // Balanced braces/brackets (emitter writes no strings containing them).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace failmine::stream
