// Unit tests for stats/concentration (Lorenz, Gini, top-k share).

#include "stats/concentration.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace failmine::stats {
namespace {

TEST(Gini, PerfectEqualityIsZero) {
  EXPECT_NEAR(gini(std::vector<double>{5, 5, 5, 5}), 0.0, 1e-12);
}

TEST(Gini, ExtremeConcentrationApproachesOne) {
  std::vector<double> v(100, 0.0);
  v[0] = 1000.0;
  EXPECT_GT(gini(v), 0.95);
}

TEST(Gini, KnownSmallExample) {
  // {1, 3}: G = (2*(1*1 + 2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
  EXPECT_NEAR(gini(std::vector<double>{1.0, 3.0}), 0.25, 1e-12);
}

TEST(Gini, ScaleInvariant) {
  const std::vector<double> v = {1, 2, 3, 10};
  std::vector<double> scaled;
  for (double x : v) scaled.push_back(x * 7.5);
  EXPECT_NEAR(gini(v), gini(scaled), 1e-12);
}

TEST(Gini, RejectsInvalidInput) {
  EXPECT_THROW(gini({}), failmine::DomainError);
  EXPECT_THROW(gini(std::vector<double>{-1.0, 2.0}), failmine::DomainError);
  EXPECT_THROW(gini(std::vector<double>{0.0, 0.0}), failmine::DomainError);
}

TEST(Lorenz, CurveEndsAtOneOne) {
  const auto curve = lorenz_curve(std::vector<double>{1, 2, 3});
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve.front().population_share, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().value_share, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().population_share, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().value_share, 1.0);
}

TEST(Lorenz, CurveLiesBelowDiagonal) {
  const auto curve = lorenz_curve(std::vector<double>{1, 1, 1, 10});
  for (const auto& p : curve) {
    EXPECT_LE(p.value_share, p.population_share + 1e-12);
  }
}

TEST(TopKShare, HandComputed) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(top_k_share(v, 1), 0.4);
  EXPECT_DOUBLE_EQ(top_k_share(v, 2), 0.7);
  EXPECT_DOUBLE_EQ(top_k_share(v, 10), 1.0);  // k clamped to size
  EXPECT_THROW(top_k_share(v, 0), failmine::DomainError);
}

TEST(ContributorsForShare, HandComputed) {
  const std::vector<double> v = {10, 20, 30, 40};
  EXPECT_EQ(contributors_for_share(v, 0.4), 1u);
  EXPECT_EQ(contributors_for_share(v, 0.5), 2u);
  EXPECT_EQ(contributors_for_share(v, 1.0), 4u);
  EXPECT_THROW(contributors_for_share(v, 0.0), failmine::DomainError);
  EXPECT_THROW(contributors_for_share(v, 1.1), failmine::DomainError);
}

}  // namespace
}  // namespace failmine::stats
