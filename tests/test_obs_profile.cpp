// Lifecycle and output-format tests of the sampling CPU profiler
// (obs/profile.hpp): start/stop idempotence, double-start rejection,
// ring overflow counted (never blocking the handler), folded output
// summing back to the exact sample count, span attribution, the
// PATH[:HZ] spec parser and the ProfileSession RAII wrapper. The asan
// ctest variant recompiles profile.cpp under ASan+UBSan, so any
// allocation or poisoned read on the signal-handler path fails there.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace failmine::obs {
namespace {

volatile double g_sink = 0;

/// Spends ~`seconds` of CPU on this thread (the profiler samples CPU
/// time, so sleeping would yield nothing).
void burn_cpu(double seconds) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count() < seconds)
    for (int i = 0; i < 20000; ++i) g_sink = std::sqrt(i * 3.14159 + g_sink);
}

std::uint64_t folded_total(const ProfileReport& report) {
  std::uint64_t total = 0;
  std::istringstream in(report.folded());
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_FALSE(line.empty()) << "blank folded line";
    const std::size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << line;
    if (space == std::string::npos || space + 1 >= line.size()) continue;
    EXPECT_GT(space, 0u) << line;
    total += std::stoull(line.substr(space + 1));
  }
  return total;
}

TEST(Profile, StopWithoutStartIsEmpty) {
  ASSERT_FALSE(Profiler::instance().running());
  const ProfileReport report = Profiler::instance().stop();
  EXPECT_EQ(report.samples, 0u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_TRUE(report.stacks.empty());
  EXPECT_TRUE(report.spans.empty());
}

TEST(Profile, CaptureProducesSamplesAndExactFoldedCounts) {
  ProfileConfig config;
  config.hz = 997;
  ASSERT_TRUE(Profiler::instance().start(config));
  EXPECT_TRUE(Profiler::instance().running());
  burn_cpu(0.4);
  const ProfileReport report = Profiler::instance().stop();
  EXPECT_FALSE(Profiler::instance().running());

  EXPECT_GT(report.samples, 0u);
  EXPECT_EQ(report.hz, 997);
  EXPECT_GT(report.duration_seconds, 0.0);
  ASSERT_FALSE(report.stacks.empty());
  // Every captured sample lands on exactly one folded line: the counts
  // must sum back to the sample total, no more, no less.
  EXPECT_EQ(folded_total(report), report.samples);
  // Stacks are sorted hottest-first.
  for (std::size_t i = 1; i < report.stacks.size(); ++i)
    EXPECT_GE(report.stacks[i - 1].count, report.stacks[i].count);
}

TEST(Profile, DoubleStartRejectedAndFirstCaptureSurvives) {
  ASSERT_TRUE(Profiler::instance().start());
  EXPECT_FALSE(Profiler::instance().start());  // second capture refused
  EXPECT_TRUE(Profiler::instance().running()) << "rejection must not stop "
                                                 "the running capture";
  burn_cpu(0.05);
  (void)Profiler::instance().stop();
  // After stop, a new capture is possible again.
  ASSERT_TRUE(Profiler::instance().start());
  (void)Profiler::instance().stop();
}

TEST(Profile, RingOverflowCountsDroppedWithoutBlocking) {
  const std::uint64_t dropped_before =
      metrics().counter_value("obs.profile.dropped");
  ProfileConfig config;
  config.hz = 1000;
  config.max_samples = 16;  // overflows within milliseconds of CPU burn
  ASSERT_TRUE(Profiler::instance().start(config));
  burn_cpu(0.5);
  const ProfileReport report = Profiler::instance().stop();
  EXPECT_EQ(report.samples, 16u) << "ring should be exactly full";
  EXPECT_GT(report.dropped, 0u);
  EXPECT_EQ(folded_total(report), report.samples);
  // The cumulative self-metric advanced by this capture's drops.
  EXPECT_EQ(metrics().counter_value("obs.profile.dropped"),
            dropped_before + report.dropped);
}

TEST(Profile, SamplesCarrySpanAttribution) {
  tracer().set_enabled(true);
  ProfileConfig config;
  config.hz = 997;
  ASSERT_TRUE(Profiler::instance().start(config));
  {
    FAILMINE_TRACE_SPAN("profile.test.outer");
    {
      FAILMINE_TRACE_SPAN("profile.test.inner");
      burn_cpu(0.4);
    }
  }
  const ProfileReport report = Profiler::instance().stop();
  ASSERT_GT(report.samples, 0u);

  // The burn ran under outer>inner: inner must show self time, outer
  // must show total >= inner's (it was active for every such sample).
  const SpanCpu* outer = nullptr;
  const SpanCpu* inner = nullptr;
  for (const SpanCpu& cpu : report.spans) {
    if (cpu.name == "profile.test.outer") outer = &cpu;
    if (cpu.name == "profile.test.inner") inner = &cpu;
  }
  ASSERT_NE(inner, nullptr) << report.span_table_text();
  ASSERT_NE(outer, nullptr) << report.span_table_text();
  EXPECT_GT(inner->self_samples, 0u);
  EXPECT_GE(outer->total_samples, inner->total_samples);
  EXPECT_DOUBLE_EQ(inner->self_seconds,
                   static_cast<double>(inner->self_samples) / report.hz);

  // The span chain renders as synthetic frames right after the thread
  // name in the folded output.
  bool found = false;
  for (const FoldedStack& stack : report.stacks)
    if (stack.stack.find("span:profile.test.outer;span:profile.test.inner") !=
        std::string::npos)
      found = true;
  EXPECT_TRUE(found) << report.folded();

  EXPECT_NE(report.span_table_text().find("profile.test.inner"),
            std::string::npos);
}

TEST(Profile, JsonReportIsWellFormed) {
  ProfileConfig config;
  config.hz = 997;
  ASSERT_TRUE(Profiler::instance().start(config));
  burn_cpu(0.1);
  const ProfileReport report = Profiler::instance().stop();
  const std::string json = report.to_json();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"samples\":" + std::to_string(report.samples)),
            std::string::npos);
  EXPECT_NE(json.find("\"stacks\":["), std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
  // Braces and brackets balance (stack/span strings are escaped, so raw
  // counting is sound).
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

#if __has_include(<execinfo.h>)
TEST(Profile, BacktraceModeCaptures) {
  ProfileConfig config;
  config.hz = 997;
  config.use_backtrace = true;
  ASSERT_TRUE(Profiler::instance().start(config));
  burn_cpu(0.3);
  const ProfileReport report = Profiler::instance().stop();
  EXPECT_GT(report.samples, 0u);
  EXPECT_EQ(folded_total(report), report.samples);
}
#endif

TEST(Profile, LowFrequencyStartStopIsClean) {
  // hz=1 exercises the tv_sec/tv_nsec interval split (1e9 ns is an
  // invalid tv_nsec); the capture itself will likely be empty.
  ProfileConfig config;
  config.hz = 1;
  ASSERT_TRUE(Profiler::instance().start(config));
  const ProfileReport report = Profiler::instance().stop();
  EXPECT_EQ(report.hz, 1);
}

TEST(ProfileSpec, ParsesPathAndRate) {
  EXPECT_EQ(parse_profile_spec("out.folded"),
            (std::pair<std::string, int>{"out.folded", 99}));
  EXPECT_EQ(parse_profile_spec("out.folded", 250),
            (std::pair<std::string, int>{"out.folded", 250}));
  EXPECT_EQ(parse_profile_spec("out.folded:199"),
            (std::pair<std::string, int>{"out.folded", 199}));
  // A colon in a directory name is not a rate separator.
  EXPECT_EQ(parse_profile_spec("run:3/prof.folded"),
            (std::pair<std::string, int>{"run:3/prof.folded", 99}));
  EXPECT_THROW(parse_profile_spec(""), failmine::ParseError);
  EXPECT_THROW(parse_profile_spec(":99"), failmine::ParseError);
  EXPECT_THROW(parse_profile_spec("out.folded:0"), failmine::ParseError);
  EXPECT_THROW(parse_profile_spec("out.folded:9x"), failmine::ParseError);
}

TEST(ProfileSession, WritesFoldedFileAndBumpsMetrics) {
  const std::uint64_t samples_before =
      metrics().counter_value("obs.profile.samples");
  const std::string path =
      testing::TempDir() + "failmine_profile_session.folded";
  {
    ProfileSession session(path + ":997");
    EXPECT_TRUE(session.active());
    EXPECT_EQ(session.path(), path);
    // A session in flight occupies the single capture slot.
    EXPECT_FALSE(Profiler::instance().start());
    EXPECT_THROW(ProfileSession second(path), failmine::ObsError);
    burn_cpu(0.3);
    const ProfileReport report = session.finish();
    EXPECT_GT(report.samples, 0u);
    EXPECT_FALSE(session.active());
    // finish() is idempotent.
    EXPECT_EQ(session.finish().samples, 0u);
    EXPECT_EQ(metrics().counter_value("obs.profile.samples"),
              samples_before + report.samples);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, first_line)));
  EXPECT_NE(first_line.rfind(' '), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace failmine::obs
