// Tests for analysis/torus_locality.

#include "analysis/torus_locality.hpp"

#include <gtest/gtest.h>

#include "raslog/message_catalog.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace failmine::analysis {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

raslog::RasEvent fatal_on_node(topology::NodeIndex node,
                               util::UnixSeconds t) {
  raslog::RasEvent e;
  e.timestamp = t;
  e.message_id = "00010005";
  e.severity = raslog::Severity::kFatal;
  e.location = topology::Location::from_node_index(node, kMira);
  return e;
}

TEST(TorusLocality, ClusteredNodesScoreBelowBaseline) {
  // All fatals on one node board (32 consecutive node indices).
  std::vector<raslog::RasEvent> events;
  for (topology::NodeIndex n = 0; n < 32; ++n)
    events.push_back(fatal_on_node(n, n));
  const raslog::RasLog log(std::move(events));
  util::Rng rng(1);
  const auto r = torus_locality(log, kMira, rng);
  EXPECT_EQ(r.located_events, 32u);
  EXPECT_GT(r.baseline_distance, 5.0);
  EXPECT_LT(r.clustering_ratio, 0.5);
}

TEST(TorusLocality, UniformNodesScoreNearBaseline) {
  util::Rng node_rng(7);
  std::vector<raslog::RasEvent> events;
  for (int i = 0; i < 300; ++i)
    events.push_back(fatal_on_node(
        static_cast<topology::NodeIndex>(node_rng.uniform_index(49152)),
        i));
  const raslog::RasLog log(std::move(events));
  util::Rng rng(2);
  const auto r = torus_locality(log, kMira, rng);
  EXPECT_NEAR(r.clustering_ratio, 1.0, 0.1);
}

TEST(TorusLocality, SkipsNonCardLocationsAndOtherSeverities) {
  std::vector<raslog::RasEvent> events;
  events.push_back(fatal_on_node(0, 0));
  raslog::RasEvent shallow = fatal_on_node(1, 1);
  shallow.location = topology::Location::parse("R00-M0", kMira);
  events.push_back(shallow);
  raslog::RasEvent info = fatal_on_node(2, 2);
  info.severity = raslog::Severity::kInfo;
  events.push_back(info);
  const raslog::RasLog log(std::move(events));
  util::Rng rng(3);
  const auto r = torus_locality(log, kMira, rng);
  EXPECT_EQ(r.located_events, 1u);  // < 2 located -> zeroed result
  EXPECT_DOUBLE_EQ(r.mean_pair_distance, 0.0);
}

TEST(TorusLocality, SubsamplingKeepsTheEstimateStable) {
  // Same clustered layout, once with and once without subsampling.
  std::vector<raslog::RasEvent> events;
  for (int i = 0; i < 400; ++i)
    events.push_back(
        fatal_on_node(static_cast<topology::NodeIndex>(i % 64), i));
  const raslog::RasLog log(std::move(events));
  util::Rng r1(4), r2(4);
  const auto full = torus_locality(log, kMira, r1, raslog::Severity::kFatal,
                                   1000, 5000);
  const auto sub = torus_locality(log, kMira, r2, raslog::Severity::kFatal,
                                  100, 5000);
  EXPECT_NEAR(full.mean_pair_distance, sub.mean_pair_distance,
              0.3 * full.mean_pair_distance + 0.2);
}

TEST(TorusLocality, SimulatedFatalsAreClustered) {
  // The fault model's weak boards + episode bursts should produce clear
  // interconnect-level clustering.
  const auto trace = sim::simulate(sim::SimConfig::test_scale());
  util::Rng rng(5);
  const auto r = torus_locality(trace.ras_log, kMira, rng);
  EXPECT_GT(r.located_events, 20u);
  // Cross-episode pairs dominate (episodes land on independent boards), so
  // the pooled ratio sits only a few percent below 1 — but reliably below.
  EXPECT_LT(r.clustering_ratio, 0.98);
}

TEST(TorusLocality, ValidatesArguments) {
  util::Rng rng(6);
  EXPECT_THROW(torus_locality(raslog::RasLog(), kMira, rng,
                              raslog::Severity::kFatal, 1),
               failmine::DomainError);
  EXPECT_THROW(torus_locality(raslog::RasLog(), kMira, rng,
                              raslog::Severity::kFatal, 10, 0),
               failmine::DomainError);
}

}  // namespace
}  // namespace failmine::analysis
