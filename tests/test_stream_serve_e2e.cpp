// End-to-end test of the live telemetry path: a real replay through the
// streaming pipeline with a TelemetryServer attached, scraped over a raw
// socket — /metrics parses as exposition text, /snapshot is the live
// StreamSnapshot, and /healthz tracks the stall watchdog (an injected
// stalled shard flips it to 503, release recovers it, and it stays 200
// after finish()).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <iterator>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/causal.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/serve.hpp"
#include "sim/replay.hpp"
#include "sim/simulator.hpp"
#include "stream/pipeline.hpp"

namespace failmine::stream {
namespace {

const sim::SimResult& trace() {
  static const sim::SimResult result = [] {
    sim::SimConfig config = sim::SimConfig::test_scale();
    config.scale = 0.004;
    return sim::simulate(config);
  }();
  return result;
}

StreamConfig serve_config() {
  StreamConfig config;
  config.shard_count = 2;
  // Large enough for the whole test replay: the stall test pauses a
  // shard while the full input sits queued, and neither the router nor
  // push_batch may block on a full queue behind the paused worker.
  config.queue_capacity = 1 << 13;
  config.max_lateness_seconds = 0;
  // Tight watchdog so the stall test converges quickly.
  config.watchdog_grace_ms = 100;
  config.watchdog_poll_ms = 20;
  return config;
}

/// Polls `predicate` until true or ~2 s elapse.
bool eventually(const std::function<bool()>& predicate) {
  for (int i = 0; i < 200; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

/// Every non-comment line of an exposition document must be
/// `name{labels} value` or `name value` with a parseable value.
void expect_parses_as_exposition(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0)
      continue;
    ASSERT_EQ(line.find('#'), std::string::npos) << line;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    if (value != "NaN" && value != "+Inf" && value != "-Inf") {
      std::size_t parsed = 0;
      EXPECT_NO_THROW((void)std::stod(value, &parsed)) << line;
      EXPECT_EQ(parsed, value.size()) << line;
    }
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

TEST(StreamServeE2E, LiveEndpointsDuringAndAfterReplay) {
  obs::attach_flight_recorder();
  StreamPipeline pipeline(serve_config());
  obs::TelemetryServer server;
  server.set_snapshot_handler(
      [&pipeline] { return pipeline.snapshot().to_json(); });
  server.set_health_handler([&pipeline] { return pipeline.healthy(); });
  server.start();
  const std::uint16_t port = server.port();
  ASSERT_GT(port, 0);

  // Healthy and scrapeable before any input.
  EXPECT_EQ(obs::http_get(port, "/healthz").status, 200);

  // --- injected stall: pause shard 0 before feeding it ---------------
  // The paused worker leaves its queue non-empty while its processed
  // counter stays frozen — exactly what the watchdog looks for. Only a
  // slice of the replay goes in while the shard is paused so its
  // backlog stays well under the queue capacity and neither the router
  // nor push_batch blocks behind the paused worker.
  auto records = sim::build_replay(trace());
  const std::size_t total = records.size();
  const std::size_t slice = std::min<std::size_t>(1024, total);
  std::vector<StreamRecord> head(
      std::make_move_iterator(records.begin()),
      std::make_move_iterator(records.begin() + slice));
  std::vector<StreamRecord> rest(
      std::make_move_iterator(records.begin() + slice),
      std::make_move_iterator(records.end()));
  pipeline.pause_shard_for_test(0, true);
  pipeline.push_batch(std::move(head));
  ASSERT_TRUE(eventually([&] { return !pipeline.healthy(); }))
      << "watchdog never flagged the paused shard";
  EXPECT_EQ(obs::http_get(port, "/healthz").status, 503);
  EXPECT_NE(obs::http_get(port, "/healthz").body.find("\"status\":\"unhealthy\""),
            std::string::npos);

  // The stall shows up in the metrics and (via the warn log) in the
  // flight recorder.
  const std::string stalled_metrics = obs::http_get(port, "/metrics").body;
  EXPECT_NE(stalled_metrics.find("stream_stalled_shards 1"),
            std::string::npos);
  const std::string recorder = obs::http_get(port, "/flightrecorder").body;
  EXPECT_NE(recorder.find("stream.shard_stalled"), std::string::npos);
  const std::uint64_t stalls_at_peak = static_cast<std::uint64_t>(
      obs::metrics().counter("stream.shard_stalls").value());
  EXPECT_GE(stalls_at_peak, 1u);

  // --- release: health recovers, the rest of the replay drains -------
  pipeline.pause_shard_for_test(0, false);
  ASSERT_TRUE(eventually([&] { return pipeline.healthy(); }))
      << "watchdog never cleared the released shard";
  const obs::HttpResponse recovered = obs::http_get(port, "/healthz");
  EXPECT_EQ(recovered.status, 200);
  EXPECT_NE(recovered.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(recovered.body.find("\"alerts_firing\":"), std::string::npos);

  pipeline.push_batch(std::move(rest));
  pipeline.finish();

  // --- after finish(): still serving, still healthy, exact snapshot --
  // The recovered shard keeps processing; sitting past several grace
  // periods must NOT re-fire the stall counter (regression: the watchdog
  // once re-armed on a frozen-but-empty queue after recovery).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_TRUE(pipeline.healthy());
  EXPECT_EQ(static_cast<std::uint64_t>(
                obs::metrics().counter("stream.shard_stalls").value()),
            stalls_at_peak)
      << "stall counter re-fired after recovery";
  EXPECT_EQ(obs::http_get(port, "/healthz").status, 200);
  const obs::HttpResponse metrics = obs::http_get(port, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  expect_parses_as_exposition(metrics.body);
  EXPECT_NE(metrics.body.find("stream_records_in"), std::string::npos);
  EXPECT_NE(metrics.body.find("stream_stalled_shards 0"), std::string::npos);
  EXPECT_NE(metrics.body.find("stream_shard0_apply_us_bucket"),
            std::string::npos);

  const obs::HttpResponse snapshot = obs::http_get(port, "/snapshot");
  EXPECT_EQ(snapshot.status, 200);
  EXPECT_NE(snapshot.body.find("\"finished\":true"), std::string::npos);
  EXPECT_NE(snapshot.body.find("\"records_in\":" + std::to_string(total)),
            std::string::npos);

  server.stop();
}

TEST(StreamServeE2E, WatchdogIgnoresIdleShards) {
  // A paused shard with an EMPTY queue is idle, not stalled: health must
  // hold steady through the grace period.
  StreamPipeline pipeline(serve_config());
  pipeline.pause_shard_for_test(0, true);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_TRUE(pipeline.healthy());
  pipeline.pause_shard_for_test(0, false);
  pipeline.finish();
  EXPECT_TRUE(pipeline.healthy());
}

/// Collects the 16-hex trace ids from exemplar suffixes on lines of
/// `metric_prefix` in an OpenMetrics document.
std::vector<std::string> exemplar_ids(const std::string& om,
                                      const std::string& metric_prefix) {
  std::vector<std::string> out;
  std::istringstream in(om);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(metric_prefix, 0) != 0) continue;
    const std::size_t pos = line.find("trace_id=\"");
    if (pos == std::string::npos) continue;
    out.push_back(line.substr(pos + 10, 16));
  }
  return out;
}

TEST(StreamServeE2E, CausalTraceParityAcrossTheFullPipeline) {
  // Trace parity: every resolved sampled record shows a stage-monotone
  // emit→ring→reorder→shard→apply timeline, and the exemplar ids the
  // OpenMetrics scrape advertises resolve through GET /trace.
  StreamConfig config = serve_config();
  config.trace_sample_period = 8;
  StreamPipeline pipeline(config);
  obs::TelemetryServer server;
  server.set_snapshot_handler(
      [&pipeline] { return pipeline.snapshot().to_json(); });
  server.start();
  const std::uint16_t port = server.port();

  auto records = sim::build_replay(trace());
  const std::size_t total = records.size();
  pipeline.push_batch(std::move(records));
  pipeline.finish();

  const obs::CausalTracer& tracer = obs::causal_tracer();
  ASSERT_GT(tracer.sampled(), 0u) << "replay sampled no traces";
  EXPECT_LT(tracer.sampled(), total);  // it IS sampling, not tracing all

  // The snapshot carries the causal section with per-stage stats.
  const std::string snap = obs::http_get(port, "/snapshot").body;
  EXPECT_NE(snap.find("\"causal\":{\"sample_period\":8"), std::string::npos);
  EXPECT_NE(snap.find("\"stage\":\"apply\""), std::string::npos);

  const std::string om =
      obs::http_get(port, "/metrics?format=openmetrics").body;
  const auto ids = exemplar_ids(om, "causal_e2e_us_bucket");
  ASSERT_FALSE(ids.empty()) << "no exemplars on the e2e histogram";
  std::size_t resolved = 0;
  for (const std::string& hex : ids) {
    const obs::HttpResponse r = obs::http_get(port, "/trace?id=" + hex);
    // A bucket untouched by THIS replay can hold an exemplar from an
    // earlier pipeline whose slots a reconfigure wiped; those 404.
    if (r.status != 200) continue;
    ++resolved;
    std::uint64_t id = 0;
    ASSERT_TRUE(obs::parse_trace_id(hex, id));
    const auto timeline = tracer.find(id);
    ASSERT_TRUE(timeline.has_value());
    ASSERT_EQ(timeline->stamps.size(), 5u) << hex;
    EXPECT_EQ(timeline->stamps[0].stage, "emit");
    EXPECT_EQ(timeline->stamps[1].stage, "ring");
    EXPECT_EQ(timeline->stamps[2].stage, "reorder");
    EXPECT_EQ(timeline->stamps[3].stage, "shard");
    EXPECT_EQ(timeline->stamps[4].stage, "apply");
    for (std::size_t i = 1; i < timeline->stamps.size(); ++i)
      EXPECT_GE(timeline->stamps[i].at_us, timeline->stamps[i - 1].at_us)
          << hex;
    EXPECT_NE(r.body.find("\"stage\":\"apply\""), std::string::npos);
  }
  // The most recent e2e observation is always a live slot, so at least
  // one advertised exemplar must have resolved.
  EXPECT_GE(resolved, 1u);
  server.stop();
}

}  // namespace
}  // namespace failmine::stream
