// Unit tests for sim/fault_model: system-failure conversion consistency,
// episode structure and the locality of generated events.

#include "sim/fault_model.hpp"

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <set>

#include "raslog/message_catalog.hpp"
#include "sim/population.hpp"
#include "sim/workload.hpp"
#include "util/error.hpp"

namespace failmine::sim {
namespace {

class FaultModelTest : public ::testing::Test {
 protected:
  FaultModelTest()
      : config_(SimConfig::test_scale()),
        rng_(config_.seed),
        population_(config_, rng_),
        workload_(config_, population_),
        faults_(config_, rng_) {
    jobs_ = workload_.generate(rng_);
    episodes_ = faults_.apply_system_failures(jobs_, rng_);
  }

  SimConfig config_;
  util::Rng rng_;
  Population population_;
  WorkloadModel workload_;
  FaultModel faults_;
  std::vector<joblog::JobRecord> jobs_;
  std::vector<FatalEpisode> episodes_;
};

TEST_F(FaultModelTest, WeakBoardCountMatchesFraction) {
  const auto& m = config_.machine;
  const std::size_t boards = static_cast<std::size_t>(
      m.racks() * m.midplanes_per_rack * m.boards_per_midplane);
  EXPECT_EQ(faults_.weak_boards().size(),
            static_cast<std::size_t>(config_.weak_board_fraction *
                                     static_cast<double>(boards)));
  for (const auto& b : faults_.weak_boards())
    EXPECT_EQ(b.level(), topology::Level::kNodeBoard);
}

TEST_F(FaultModelTest, EveryVictimJobIsSystemFailed) {
  std::map<std::uint64_t, const joblog::JobRecord*> by_id;
  for (const auto& j : jobs_) by_id[j.job_id] = &j;
  std::size_t victims = 0;
  for (const auto& ep : episodes_) {
    if (!ep.victim_job) continue;
    ++victims;
    ASSERT_TRUE(by_id.contains(*ep.victim_job));
    const auto* job = by_id[*ep.victim_job];
    EXPECT_TRUE(joblog::is_system_caused(job->exit_class));
    // Episode fires exactly when the job dies, on its partition.
    EXPECT_EQ(ep.time, job->end_time);
    EXPECT_TRUE(job->partition(config_.machine).covers(ep.origin, config_.machine));
  }
  EXPECT_GT(victims, 0u);
}

TEST_F(FaultModelTest, EverySystemFailedJobHasAnEpisode) {
  std::set<std::uint64_t> victims;
  for (const auto& ep : episodes_)
    if (ep.victim_job) victims.insert(*ep.victim_job);
  for (const auto& j : jobs_) {
    if (joblog::is_system_caused(j.exit_class))
      EXPECT_TRUE(victims.contains(j.job_id)) << "job " << j.job_id;
  }
}

TEST_F(FaultModelTest, SystemFailuresAreRare) {
  std::size_t failures = 0, system = 0;
  for (const auto& j : jobs_) {
    if (!j.failed()) continue;
    ++failures;
    if (joblog::is_system_caused(j.exit_class)) ++system;
  }
  ASSERT_GT(failures, 0u);
  EXPECT_LT(static_cast<double>(system) / static_cast<double>(failures), 0.03);
}

TEST_F(FaultModelTest, EpisodesAreTimeSortedAndInWindow) {
  util::UnixSeconds prev = 0;
  for (const auto& ep : episodes_) {
    EXPECT_GE(ep.time, prev);
    prev = ep.time;
    EXPECT_GE(ep.time, config_.observation_start);
    EXPECT_LT(ep.time, config_.observation_end() + 86400);
    EXPECT_EQ(ep.origin.level(), topology::Level::kNodeBoard);
  }
}

TEST_F(FaultModelTest, GeneratedEventsCoverAllSeverities) {
  const auto events = faults_.generate_events(episodes_, rng_);
  std::array<std::size_t, 3> counts{};
  for (const auto& e : events) ++counts[static_cast<std::size_t>(e.severity)];
  EXPECT_GT(counts[0], counts[1]);  // INFO > WARN
  EXPECT_GT(counts[1], counts[2]);  // WARN > FATAL
  EXPECT_GT(counts[2], 0u);
}

TEST_F(FaultModelTest, FatalEventsClusterNearEpisodes) {
  const auto events = faults_.generate_events(episodes_, rng_);
  // Every FATAL must be within a handful of episode durations of some
  // episode (they are only emitted by episode bursts).
  for (const auto& e : events) {
    if (e.severity != raslog::Severity::kFatal) continue;
    bool near = false;
    for (const auto& ep : episodes_) {
      if (e.timestamp >= ep.time &&
          e.timestamp <= ep.time + 40 * static_cast<util::UnixSeconds>(
                                            config_.episode_duration_seconds)) {
        near = true;
        break;
      }
    }
    EXPECT_TRUE(near) << "fatal event at " << e.timestamp
                      << " far from every episode";
  }
}

TEST_F(FaultModelTest, EventsMatchCatalogMetadata) {
  const auto events = faults_.generate_events(episodes_, rng_);
  for (std::size_t i = 0; i < events.size(); i += 37) {
    const auto& e = events[i];
    const auto& def = raslog::message_by_id(e.message_id);
    EXPECT_EQ(e.severity, def.severity);
    EXPECT_EQ(e.component, def.component);
    EXPECT_EQ(e.category, def.category);
    EXPECT_EQ(e.location.level(), def.level);
  }
}

TEST_F(FaultModelTest, BackgroundEventsFavorWeakBoards) {
  const auto events = faults_.generate_events(episodes_, rng_);
  std::set<topology::Location> weak(faults_.weak_boards().begin(),
                                    faults_.weak_boards().end());
  std::size_t on_weak = 0, total = 0;
  for (const auto& e : events) {
    if (e.severity == raslog::Severity::kFatal) continue;
    if (e.location.level() < topology::Level::kNodeBoard) continue;
    ++total;
    if (weak.contains(e.location.ancestor(topology::Level::kNodeBoard)))
      ++on_weak;
  }
  ASSERT_GT(total, 1000u);
  // 2 % of boards should absorb ~45 % of locatable background events.
  EXPECT_GT(static_cast<double>(on_weak) / static_cast<double>(total), 0.3);
}

TEST(FaultModel, HazardZeroMeansNoSystemFailures) {
  SimConfig config = SimConfig::test_scale();
  config.system_hazard_per_node_second = 0.0;
  config.idle_fatal_episodes_per_day = 0.0;
  util::Rng rng(11);
  const Population pop(config, rng);
  const WorkloadModel workload(config, pop);
  auto jobs = workload.generate(rng);
  const FaultModel faults(config, rng);
  const auto episodes = faults.apply_system_failures(jobs, rng);
  EXPECT_TRUE(episodes.empty());
  for (const auto& j : jobs)
    EXPECT_FALSE(joblog::is_system_caused(j.exit_class));
}

}  // namespace
}  // namespace failmine::sim
