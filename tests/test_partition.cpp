// Unit tests for topology/partition.

#include "topology/partition.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace failmine::topology {
namespace {

const MachineConfig kMira = MachineConfig::mira();

TEST(Partition, ValidatesBounds) {
  EXPECT_NO_THROW(Partition(0, 1, kMira));
  EXPECT_NO_THROW(Partition(95, 1, kMira));
  EXPECT_NO_THROW(Partition(0, 96, kMira));
  EXPECT_THROW(Partition(-1, 1, kMira), failmine::DomainError);
  EXPECT_THROW(Partition(96, 1, kMira), failmine::DomainError);
  EXPECT_THROW(Partition(95, 2, kMira), failmine::DomainError);
  EXPECT_THROW(Partition(0, 0, kMira), failmine::DomainError);
}

TEST(Partition, NodeCount) {
  EXPECT_EQ(Partition(0, 1, kMira).node_count(kMira), 512u);
  EXPECT_EQ(Partition(0, 96, kMira).node_count(kMira), 49152u);
}

TEST(Partition, GlobalMidplaneIndexing) {
  const Location m0 = Location::parse("R00-M0", kMira);
  const Location m1 = Location::parse("R00-M1", kMira);
  const Location r1m0 = Location::parse("R01-M0", kMira);
  EXPECT_EQ(Partition::global_midplane_index(m0, kMira), 0);
  EXPECT_EQ(Partition::global_midplane_index(m1, kMira), 1);
  EXPECT_EQ(Partition::global_midplane_index(r1m0, kMira), 2);
  EXPECT_THROW(
      Partition::global_midplane_index(Location::parse("R00", kMira), kMira),
      failmine::DomainError);
}

TEST(Partition, MidplaneLocationRoundTrips) {
  for (int idx : {0, 1, 2, 47, 95}) {
    const Location loc = Partition::midplane_location(idx, kMira);
    EXPECT_EQ(Partition::global_midplane_index(loc, kMira), idx);
  }
  EXPECT_THROW(Partition::midplane_location(96, kMira), failmine::DomainError);
  EXPECT_THROW(Partition::midplane_location(-1, kMira), failmine::DomainError);
}

TEST(Partition, CoversLocationsInsideOnly) {
  const Partition p(2, 2, kMira);  // R01-M0 and R01-M1
  EXPECT_TRUE(p.covers(Location::parse("R01-M0", kMira), kMira));
  EXPECT_TRUE(p.covers(Location::parse("R01-M1-N05-J09", kMira), kMira));
  EXPECT_FALSE(p.covers(Location::parse("R00-M1", kMira), kMira));
  EXPECT_FALSE(p.covers(Location::parse("R02-M0", kMira), kMira));
  // Rack-level locations cannot be localized to a midplane.
  EXPECT_FALSE(p.covers(Location::parse("R01", kMira), kMira));
}

TEST(Partition, MidplanesEnumeratesRange) {
  const Partition p(1, 3, kMira);
  const auto mids = p.midplanes(kMira);
  ASSERT_EQ(mids.size(), 3u);
  EXPECT_EQ(mids[0].to_string(), "R00-M1");
  EXPECT_EQ(mids[1].to_string(), "R01-M0");
  EXPECT_EQ(mids[2].to_string(), "R01-M1");
}

TEST(Partition, ToStringLabel) {
  EXPECT_EQ(Partition(4, 2, kMira).to_string(), "MID[4..5]");
}

TEST(MidplanesForNodes, PowerOfTwoRounding) {
  EXPECT_EQ(midplanes_for_nodes(1, kMira), 1);
  EXPECT_EQ(midplanes_for_nodes(512, kMira), 1);
  EXPECT_EQ(midplanes_for_nodes(513, kMira), 2);
  EXPECT_EQ(midplanes_for_nodes(1024, kMira), 2);
  EXPECT_EQ(midplanes_for_nodes(1500, kMira), 4);
  EXPECT_EQ(midplanes_for_nodes(49152, kMira), 96);
  EXPECT_THROW(midplanes_for_nodes(0, kMira), failmine::DomainError);
  EXPECT_THROW(midplanes_for_nodes(49153, kMira), failmine::DomainError);
}

TEST(MidplanesForNodes, ClampsToMachine) {
  // 33 midplanes round to 64, but 96 total caps apply only above; verify
  // rounding never exceeds the machine's midplane count.
  EXPECT_LE(midplanes_for_nodes(25000, kMira), 96);
}

}  // namespace
}  // namespace failmine::topology
