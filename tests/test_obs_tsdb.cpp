// Tests for obs::tsdb + obs::tsdb_query — the Gorilla codec (exact
// round-trips over irregular intervals, counter resets and non-finite
// values), the pure range helpers, the store (scraping, staleness,
// multi-resolution downsampling, series budgets, tear-free concurrent
// reads), the query grammar/engine, and the /query + /series HTTP
// surface on the telemetry server.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/serve.hpp"
#include "obs/tsdb.hpp"
#include "obs/tsdb_query.hpp"
#include "util/error.hpp"

namespace failmine::obs {
namespace {

// A realistic unix-ms origin, aligned to the 1 m downsample buckets so
// boundary assertions are exact.
constexpr std::int64_t kT0 = 1'700'000'040'000'000 / 1000 * 1000;
static_assert(kT0 % 60'000 == 0);

std::uint64_t bits_of(double v) { return std::bit_cast<std::uint64_t>(v); }

// ---- codec -------------------------------------------------------------

TEST(TsdbCodec, RoundTripRegularInterval) {
  GorillaChunk chunk;
  std::vector<TsdbPoint> expect;
  for (int i = 0; i < 200; ++i) {
    const TsdbPoint p{kT0 + i * 1000, i * 3.5};
    chunk.append(p.t_ms, p.value);
    expect.push_back(p);
  }
  const auto got = chunk.decode();
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].t_ms, expect[i].t_ms) << i;
    EXPECT_EQ(bits_of(got[i].value), bits_of(expect[i].value)) << i;
  }
}

TEST(TsdbCodec, FlatSeriesCostsUnderTwoBitsPerSample) {
  GorillaChunk chunk;
  for (int i = 0; i < 1000; ++i) chunk.append(kT0 + i * 1000, 42.0);
  // First sample is 128 bits raw; the second pays for the delta-of-delta
  // jump from 0 to 1000 ms ('110' + 14-bit zigzag + flat value = 18
  // bits); every later one is '0' (dod) + '0' (identical value) = 2 bits.
  EXPECT_EQ(chunk.size_bits(), 128u + 18u + 998u * 2u);
  EXPECT_LT(static_cast<double>(chunk.size_bytes()) / chunk.count(), 2.0);
}

TEST(TsdbCodec, RoundTripIrregularIntervals) {
  // Hits every delta-of-delta bucket: 0, 9-bit, 14-bit, 20-bit and the
  // 64-bit escape (a multi-day gap), plus shrinking deltas (negative
  // dod) and messy mantissas.
  const std::int64_t deltas[] = {1000, 1000, 1250,   997,     5,
                                 8000, 250,  100000, 1000000, 172800000,
                                 1000, 999,  1001,   1};
  GorillaChunk chunk;
  std::vector<TsdbPoint> expect;
  std::int64_t t = kT0;
  double v = 0.0;
  for (const auto d : deltas) {
    t += d;
    v += std::sin(static_cast<double>(t)) * 1e6;
    chunk.append(t, v);
    expect.push_back({t, v});
  }
  const auto got = chunk.decode();
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].t_ms, expect[i].t_ms) << i;
    EXPECT_EQ(bits_of(got[i].value), bits_of(expect[i].value)) << i;
  }
}

TEST(TsdbCodec, RoundTripCounterResets) {
  GorillaChunk chunk;
  const double values[] = {0, 100, 250, 5, 15, 1e9, 0, 3};
  std::vector<TsdbPoint> expect;
  std::int64_t t = kT0;
  for (const auto v : values) {
    chunk.append(t, v);
    expect.push_back({t, v});
    t += 1000;
  }
  const auto got = chunk.decode();
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(bits_of(got[i].value), bits_of(expect[i].value)) << i;
}

TEST(TsdbCodec, RoundTripNonFiniteValuesBitwise) {
  const double values[] = {0.0,
                           -0.0,
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(),
                           -1.5};
  GorillaChunk chunk;
  std::int64_t t = kT0;
  for (const auto v : values) chunk.append(t += 1000, v);
  const auto got = chunk.decode();
  ASSERT_EQ(got.size(), std::size(values));
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(bits_of(got[i].value), bits_of(values[i])) << i;
}

TEST(TsdbCodec, SingleSampleChunk) {
  GorillaChunk chunk;
  chunk.append(kT0, 7.25);
  EXPECT_EQ(chunk.size_bits(), 128u);
  const auto got = chunk.decode();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].t_ms, kT0);
  EXPECT_EQ(got[0].value, 7.25);
}

// ---- pure range helpers ------------------------------------------------

TEST(TsdbHelpers, ValueAtRespectsStaleness) {
  const std::vector<TsdbPoint> pts = {{kT0, 1.0}, {kT0 + 10'000, 2.0}};
  EXPECT_FALSE(tsdb_value_at(pts, kT0 - 1).has_value());
  EXPECT_EQ(tsdb_value_at(pts, kT0).value(), 1.0);
  EXPECT_EQ(tsdb_value_at(pts, kT0 + 9'999).value(), 1.0);
  EXPECT_EQ(tsdb_value_at(pts, kT0 + 10'000).value(), 2.0);
  // Unbounded lookback vs a 5 s staleness horizon.
  EXPECT_EQ(tsdb_value_at(pts, kT0 + 60'000).value(), 2.0);
  EXPECT_FALSE(tsdb_value_at(pts, kT0 + 60'000, 5'000).has_value());
  EXPECT_TRUE(tsdb_value_at(pts, kT0 + 14'000, 5'000).has_value());
}

TEST(TsdbHelpers, IncreaseTelescopesOverTiledWindows) {
  // Counter sampled every second for 5 minutes with a bumpy profile.
  std::vector<TsdbPoint> pts;
  double v = 0.0;
  for (int i = 0; i <= 300; ++i) {
    v += (i % 7) + (i % 3 == 0 ? 10.0 : 0.0);
    pts.push_back({kT0 + i * 1000, v});
  }
  double tiled = 0.0;
  for (int w = 1; w <= 5; ++w) {
    const auto inc = tsdb_increase(pts, kT0 + w * 60'000, 60'000);
    ASSERT_TRUE(inc.has_value());
    EXPECT_EQ(inc->covered_ms, 60'000);
    tiled += inc->increase;
  }
  EXPECT_DOUBLE_EQ(tiled, pts.back().value - pts.front().value);
}

TEST(TsdbHelpers, IncreaseIsResetAware) {
  // 0 -> 10 -> 20 -> reset -> 5 -> 15: growth 10+10+5+10 = 35.
  const std::vector<TsdbPoint> pts = {{kT0, 0},
                                      {kT0 + 1000, 10},
                                      {kT0 + 2000, 20},
                                      {kT0 + 3000, 5},
                                      {kT0 + 4000, 15}};
  const auto inc = tsdb_increase(pts, kT0 + 4000, 10'000);
  ASSERT_TRUE(inc.has_value());
  EXPECT_DOUBLE_EQ(inc->increase, 35.0);
  // No sample in the window and no baseline -> nullopt.
  EXPECT_FALSE(tsdb_increase(pts, kT0 - 60'000, 10'000).has_value());
  // No sample in the window but a baseline exists -> flat counter.
  const auto flat = tsdb_increase(pts, kT0 + 90'000, 10'000);
  ASSERT_TRUE(flat.has_value());
  EXPECT_DOUBLE_EQ(flat->increase, 0.0);
}

// ---- store -------------------------------------------------------------

TsdbConfig test_config(MetricsRegistry* reg) {
  TsdbConfig config;
  config.registry = reg;
  return config;
}

TEST(TsdbStore, ScrapeCreatesSeriesForEveryInstrumentKind) {
  MetricsRegistry reg;
  reg.counter("c.total").add(5);
  reg.gauge("g.depth").set(3.5);
  reg.histogram("h.us", {10.0, 100.0}).observe(50.0);
  TsdbStore store(test_config(&reg));
  EXPECT_FALSE(store.has_data());
  store.scrape_once(kT0);
  EXPECT_TRUE(store.has_data());

  const auto names = store.series_names();
  const auto has = [&](const std::string& n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("c.total"));
  EXPECT_TRUE(has("g.depth"));
  EXPECT_TRUE(has("h.us.count"));
  EXPECT_TRUE(has("h.us.sum"));
  EXPECT_TRUE(has("h.us.bucket{le=\"10\"}"));
  EXPECT_TRUE(has("h.us.bucket{le=\"100\"}"));
  EXPECT_TRUE(has("h.us.bucket{le=\"+Inf\"}"));

  const auto stats = store.stats();
  EXPECT_EQ(stats.series, names.size());
  EXPECT_GE(stats.samples, names.size());
  EXPECT_EQ(stats.scrapes, 1u);
  EXPECT_EQ(stats.first_ms, kT0);
  EXPECT_EQ(stats.latest_ms, kT0);
  EXPECT_GT(stats.resident_bytes, 0u);

  // The store reports on itself through the registry it scrapes.
  EXPECT_GT(reg.gauge("tsdb.series").value(), 0.0);
  EXPECT_GT(reg.counter("tsdb.samples").value(), 0u);

  const auto infos = store.series_info();
  ASSERT_EQ(infos.size(), names.size());
  for (const auto& info : infos) {
    EXPECT_GT(info.samples, 0u);
    EXPECT_EQ(info.first_ms, kT0);
    EXPECT_EQ(info.last_ms, kT0);
  }
}

TEST(TsdbStore, RangeRateReconcilesWithCumulativeCounter) {
  // The PR's acceptance criterion in miniature: rate() over tiled 1 m
  // windows must reproduce the final cumulative counter exactly.
  MetricsRegistry reg;
  auto& counter = reg.counter("jobs.failed");
  TsdbStore store(test_config(&reg));
  store.scrape_once(kT0);  // zero baseline before any traffic
  std::int64_t t = kT0;
  for (int i = 1; i <= 300; ++i) {
    counter.add(static_cast<std::uint64_t>((i % 13) + 1));
    t = kT0 + i * 1000;
    store.scrape_once(t);
  }
  double tiled = 0.0;
  for (int w = 1; w <= 5; ++w) {
    const auto inc = store.increase_over("jobs.failed", kT0 + w * 60'000,
                                         60'000);
    ASSERT_TRUE(inc.has_value());
    tiled += inc->increase;
  }
  EXPECT_DOUBLE_EQ(tiled, static_cast<double>(counter.value()));

  // The query engine agrees: sum of rate*step over the same grid.
  const auto q = parse_tsdb_query("rate(jobs.failed[1m])");
  const auto result =
      eval_tsdb_query(store, q, kT0 + 60'000, kT0 + 300'000, 60'000);
  ASSERT_EQ(result.series.size(), 1u);
  double via_rate = 0.0;
  for (const auto& p : result.series[0].points) via_rate += p.value * 60.0;
  EXPECT_NEAR(via_rate, static_cast<double>(counter.value()), 1e-6);
}

TEST(TsdbStore, ValueAtUsesStalenessHorizon) {
  MetricsRegistry reg;
  reg.gauge("g").set(4.0);
  TsdbStore store(test_config(&reg));
  store.scrape_once(kT0);
  EXPECT_EQ(store.value_at("g", kT0).value(), 4.0);
  // Default staleness is 5 scrape intervals (5 s at the default 1 s).
  EXPECT_TRUE(store.value_at("g", kT0 + 4'000).has_value());
  EXPECT_FALSE(store.value_at("g", kT0 + 60'000).has_value());
  EXPECT_TRUE(store.value_at("g", kT0 + 60'000, 120'000).has_value());
  EXPECT_FALSE(store.value_at("missing", kT0).has_value());
}

TEST(TsdbStore, DownsamplingRetainsAlignedHistoryPastRawRing) {
  // Tiny raw ring + incompressible values force raw-chunk recycling;
  // the 10 s / 1 m rings must keep bucket-last samples covering the
  // whole span, and the merged read must stay sorted and deduplicated.
  MetricsRegistry reg;
  auto config = test_config(&reg);
  config.raw_chunks = 2;
  TsdbStore store(config);
  constexpr int kTicks = 600;
  for (int i = 0; i < kTicks; ++i) {
    reg.gauge("noisy").set(std::sin(static_cast<double>(i)) * 1e6);
    store.scrape_once(kT0 + i * 1000);
  }
  const auto all =
      store.read_series("noisy", kT0, kT0 + (kTicks - 1) * 1000);
  ASSERT_GT(all.size(), 2u);
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_LT(all[i - 1].t_ms, all[i].t_ms) << i;

  // Raw retention with 2x256B chunks of noisy doubles is far below the
  // full span, so history must have come from the downsample rings.
  EXPECT_LE(all.front().t_ms, kT0 + 120'000);
  EXPECT_EQ(all.back().t_ms, kT0 + (kTicks - 1) * 1000);

  // Downsampled points are the last sample of their aligned bucket: at
  // a 1 s scrape the 10 s ring keeps t % 10s == 9s and the 1 m ring
  // t % 60s == 59s. Everything else must be raw-resolution recent data.
  std::size_t downsampled = 0;
  for (const auto& p : all) {
    const std::int64_t off = p.t_ms - kT0;
    if (off % 10'000 == 9'000 || off % 60'000 == 59'000) ++downsampled;
  }
  EXPECT_GT(downsampled, 10u);

  // Every returned value is the one that was scraped at that instant.
  for (const auto& p : all) {
    const auto i = (p.t_ms - kT0) / 1000;
    EXPECT_EQ(bits_of(p.value),
              bits_of(std::sin(static_cast<double>(i)) * 1e6))
        << "t offset " << p.t_ms - kT0;
  }
}

TEST(TsdbStore, SeriesBudgetCountsDrops) {
  MetricsRegistry reg;
  reg.counter("a").add(1);
  reg.counter("b").add(1);
  reg.counter("c").add(1);
  auto config = test_config(&reg);
  config.max_series = 2;
  TsdbStore store(config);
  store.scrape_once(kT0);
  const auto stats = store.stats();
  EXPECT_EQ(stats.series, 2u);
  EXPECT_GT(stats.dropped, 0u);
}

TEST(TsdbStore, NonMonotonicScrapesAreDropped) {
  MetricsRegistry reg;
  reg.counter("c").add(1);
  TsdbStore store(test_config(&reg));
  store.scrape_once(kT0);
  const auto before = store.stats();
  store.scrape_once(kT0);           // same timestamp
  store.scrape_once(kT0 - 5'000);   // goes backwards
  const auto after = store.stats();
  EXPECT_GT(after.dropped, before.dropped);
  ASSERT_EQ(store.read_series("c", kT0 - 10'000, kT0 + 10'000).size(), 1u);
}

TEST(TsdbStore, BackgroundScraperStartsAndStops) {
  MetricsRegistry reg;
  reg.counter("c").add(1);
  TsdbStore store(test_config(&reg));
  store.start(/*interval_ms=*/50);
  EXPECT_TRUE(store.running());
  store.start(50);  // idempotent
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (store.stats().scrapes < 2 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  store.stop();
  EXPECT_FALSE(store.running());
  store.stop();  // idempotent
  EXPECT_GE(store.stats().scrapes, 2u);
  EXPECT_TRUE(store.has_data());
}

// ---- query grammar -----------------------------------------------------

TEST(TsdbQueryParse, FullGrammar) {
  auto q = parse_tsdb_query("rate(stream.records_processed[1m])");
  EXPECT_EQ(q.fn, TsdbFn::kRate);
  EXPECT_EQ(q.agg, TsdbAgg::kNone);
  EXPECT_EQ(q.selector, "stream.records_processed");
  EXPECT_EQ(q.window_ms, 60'000);

  q = parse_tsdb_query("sum(rate(stream.shard*.processed[30s]))");
  EXPECT_EQ(q.agg, TsdbAgg::kSum);
  EXPECT_EQ(q.fn, TsdbFn::kRate);
  EXPECT_EQ(q.selector, "stream.shard*.processed");
  EXPECT_EQ(q.window_ms, 30'000);

  q = parse_tsdb_query("p99(stream.router.batch_us[500ms])");
  EXPECT_EQ(q.fn, TsdbFn::kQuantile);
  EXPECT_DOUBLE_EQ(q.quantile, 0.99);
  EXPECT_EQ(q.window_ms, 500);

  q = parse_tsdb_query("value(stream.queue_depth)");
  EXPECT_EQ(q.fn, TsdbFn::kValue);
  EXPECT_EQ(q.window_ms, 0);

  // Bare selector, increase, avg/min/max, hour windows.
  EXPECT_EQ(parse_tsdb_query("stream.queue_depth").fn, TsdbFn::kValue);
  EXPECT_EQ(parse_tsdb_query("increase(c[2h])").window_ms, 7'200'000);
  EXPECT_EQ(parse_tsdb_query("avg(value(g))").agg, TsdbAgg::kAvg);
  EXPECT_EQ(parse_tsdb_query("min(g)").agg, TsdbAgg::kMin);
  EXPECT_EQ(parse_tsdb_query("max(g)").agg, TsdbAgg::kMax);
}

TEST(TsdbQueryParse, RoundTripsThroughToString) {
  for (const char* expr :
       {"rate(a.b[1m])", "sum(rate(x*[30s]))", "p95(h.us[10s])",
        "value(g)", "avg(increase(c[1500ms]))"}) {
    const auto q = parse_tsdb_query(expr);
    const auto again = parse_tsdb_query(tsdb_query_to_string(q));
    EXPECT_EQ(again.agg, q.agg) << expr;
    EXPECT_EQ(again.fn, q.fn) << expr;
    EXPECT_EQ(again.selector, q.selector) << expr;
    EXPECT_EQ(again.window_ms, q.window_ms) << expr;
    EXPECT_DOUBLE_EQ(again.quantile, q.quantile) << expr;
  }
}

TEST(TsdbQueryParse, RejectsMalformedExpressions) {
  for (const char* expr :
       {"", "frobnicate(m)", "p0(m)", "p100(m)", "rate(m", "rate(m))",
        "rate(m[5])x", "rate(m[5q])", "rate(m[-5s])", "sum()",
        "rate()", "m[weird"}) {
    EXPECT_THROW((void)parse_tsdb_query(expr), failmine::ParseError) << expr;
  }
}

TEST(TsdbQueryParse, GlobMatch) {
  EXPECT_TRUE(tsdb_glob_match("*", "anything"));
  EXPECT_TRUE(tsdb_glob_match("stream.shard*.processed",
                              "stream.shard12.processed"));
  EXPECT_FALSE(tsdb_glob_match("stream.shard*.processed",
                               "stream.shard12.occupancy"));
  EXPECT_TRUE(tsdb_glob_match("a*b*c", "a-x-b-y-c"));
  EXPECT_FALSE(tsdb_glob_match("a*b*c", "a-x-b-y"));
  EXPECT_TRUE(tsdb_glob_match("exact", "exact"));
  EXPECT_FALSE(tsdb_glob_match("exact", "exactly"));
}

// ---- query engine ------------------------------------------------------

TEST(TsdbQueryEval, WildcardSumAggregatesPointwise) {
  MetricsRegistry reg;
  auto& a = reg.counter("shard0.processed");
  auto& b = reg.counter("shard1.processed");
  TsdbStore store(test_config(&reg));
  store.scrape_once(kT0);
  for (int i = 1; i <= 60; ++i) {
    a.add(2);
    b.add(3);
    store.scrape_once(kT0 + i * 1000);
  }
  const auto q = parse_tsdb_query("sum(increase(shard*.processed[10s]))");
  const auto result =
      eval_tsdb_query(store, q, kT0 + 10'000, kT0 + 60'000, 10'000);
  ASSERT_EQ(result.series.size(), 1u);
  EXPECT_EQ(result.series[0].name, "sum(increase(shard*.processed[10s]))");
  ASSERT_EQ(result.series[0].points.size(), 6u);
  for (const auto& p : result.series[0].points)
    EXPECT_DOUBLE_EQ(p.value, 50.0);  // (2+3) per second over 10 s
}

TEST(TsdbQueryEval, ValueQueriesReadGauges) {
  MetricsRegistry reg;
  auto& g = reg.gauge("depth");
  TsdbStore store(test_config(&reg));
  for (int i = 0; i < 10; ++i) {
    g.set(static_cast<double>(i));
    store.scrape_once(kT0 + i * 1000);
  }
  const auto q = parse_tsdb_query("value(depth)");
  const auto result = eval_tsdb_query(store, q, kT0 + 9000, kT0 + 9000, 1000);
  ASSERT_EQ(result.series.size(), 1u);
  ASSERT_EQ(result.series[0].points.size(), 1u);
  EXPECT_DOUBLE_EQ(result.series[0].points[0].value, 9.0);
}

TEST(TsdbQueryEval, WindowedQuantileSeesOnlyTheSpike) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat.us", {100.0, 1000.0, 100000.0});
  TsdbStore store(test_config(&reg));
  // Minute 1: a flood of fast observations.
  for (int i = 0; i < 100000; ++i) h.observe(10.0);
  store.scrape_once(kT0 + 60'000);
  // Minute 2: a small absolute number of very slow ones.
  for (int i = 0; i < 50; ++i) h.observe(50'000.0);
  store.scrape_once(kT0 + 120'000);

  // Lifetime p99 stays in the fastest bucket (50 of 100050 is well
  // under the 99th percentile), but the trailing 1 m window contains
  // only the slow deltas.
  const auto windowed =
      store.windowed_quantile("lat.us", 0.99, kT0 + 120'000, 60'000);
  ASSERT_TRUE(windowed.has_value());
  EXPECT_GT(*windowed, 1000.0);

  const auto q = parse_tsdb_query("p99(lat.us[1m])");
  const auto result =
      eval_tsdb_query(store, q, kT0 + 120'000, kT0 + 120'000, 60'000);
  ASSERT_EQ(result.series.size(), 1u);
  ASSERT_EQ(result.series[0].points.size(), 1u);
  EXPECT_GT(result.series[0].points[0].value, 1000.0);

  // A window with no observations abstains instead of reporting 0.
  EXPECT_FALSE(
      store.windowed_quantile("lat.us", 0.99, kT0 + 600'000, 10'000)
          .has_value());
}

TEST(TsdbQueryEval, JsonShapes) {
  MetricsRegistry reg;
  reg.gauge("g").set(1.5);
  TsdbStore store(test_config(&reg));
  store.scrape_once(kT0);
  const auto q = parse_tsdb_query("value(g)");
  const auto result = eval_tsdb_query(store, q, kT0, kT0, 1000);
  const auto json = tsdb_query_json("value(g)", kT0, kT0, 1000, result);
  EXPECT_NE(json.find("\"expr\":\"value(g)\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"series\":[{\"name\":\"g\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("1.5"), std::string::npos) << json;

  const auto series = tsdb_series_json(store);
  EXPECT_NE(series.find("\"stats\":"), std::string::npos) << series;
  EXPECT_NE(series.find("\"name\":\"g\""), std::string::npos) << series;
  EXPECT_NE(series.find("\"type\":\"gauge\""), std::string::npos) << series;
}

TEST(TsdbQueryEval, SparklineAndTrendReport) {
  std::vector<TsdbPoint> ramp;
  for (int i = 0; i < 40; ++i)
    ramp.push_back({kT0 + i * 1000, static_cast<double>(i)});
  const auto spark = render_sparkline(ramp, 8);
  EXPECT_FALSE(spark.empty());
  EXPECT_NE(spark.find("\xe2\x96\x81"), std::string::npos);  // ▁ low start
  EXPECT_NE(spark.find("\xe2\x96\x88"), std::string::npos);  // █ high end
  EXPECT_TRUE(render_sparkline({}, 8).find_first_not_of(' ') ==
              std::string::npos);

  MetricsRegistry reg;
  auto& c = reg.counter("jobs");
  TsdbStore store(test_config(&reg));
  store.scrape_once(kT0);
  for (int i = 1; i <= 120; ++i) {
    c.add(static_cast<std::uint64_t>(i));
    store.scrape_once(kT0 + i * 1000);
  }
  const auto report = tsdb_trend_report(
      store, {"rate(jobs[10s])", "nonsense(((", "value(not.there)"});
  EXPECT_NE(report.find("rate(jobs[10s])"), std::string::npos) << report;
  // Unparseable and unmatched expressions are skipped, not rendered.
  EXPECT_EQ(report.find("nonsense"), std::string::npos) << report;
  EXPECT_EQ(report.find("not.there"), std::string::npos) << report;
}

// ---- labels ------------------------------------------------------------

TEST(TsdbStore, PerFamilyLabelBudgetDropsAndCounts) {
  MetricsRegistry reg;
  for (const char* twin : {"a", "b", "c", "d", "e"})
    reg.counter("f", {{"twin", twin}}).add(1);
  auto config = test_config(&reg);
  config.max_label_sets_per_family = 2;
  TsdbStore store(config);
  store.scrape_once(kT0);
  EXPECT_EQ(store.stats().dropped_series, 3u);
  EXPECT_GT(reg.counter_value("tsdb.dropped_series"), 0u);

  // The two admitted label sets stay fully queryable.
  const auto q = parse_tsdb_query("value(f{twin=~\"*\"})");
  EXPECT_EQ(eval_tsdb_query(store, q, kT0, kT0, 1000).series.size(), 2u);

  // The budget is per family: a fresh family gets its own allowance,
  // while f's over-budget sets are dropped again on every scrape.
  reg.counter("g", {{"twin", "a"}}).add(1);
  reg.counter("g", {{"twin", "b"}}).add(1);
  store.scrape_once(kT0 + 1000);
  const auto q2 = parse_tsdb_query("value(g{twin=~\"*\"})");
  EXPECT_EQ(
      eval_tsdb_query(store, q2, kT0 + 1000, kT0 + 1000, 1000).series.size(),
      2u);
  EXPECT_EQ(store.stats().dropped_series, 6u);
  EXPECT_NE(store.stats_json().find("\"dropped_series\":"),
            std::string::npos);
}

TEST(TsdbQueryParse, LabelSelectorsAndByClause) {
  auto q = parse_tsdb_query(
      "sum by (twin) (rate(stream.records_in{twin=~\"*\"}[1m]))");
  EXPECT_EQ(q.agg, TsdbAgg::kSum);
  EXPECT_EQ(q.fn, TsdbFn::kRate);
  ASSERT_EQ(q.by.size(), 1u);
  EXPECT_EQ(q.by[0], "twin");
  EXPECT_EQ(q.window_ms, 60'000);
  EXPECT_EQ(tsdb_query_to_string(q),
            "sum by (twin) (rate(stream.records_in{twin=~\"*\"}[1m]))");

  // Re-parsing the canonical rendering is a fixed point.
  const auto again = parse_tsdb_query(tsdb_query_to_string(q));
  EXPECT_EQ(again.by, q.by);
  EXPECT_EQ(again.selector, q.selector);

  EXPECT_TRUE(parse_tsdb_query("avg(value(g{twin=\"t0\"}))").by.empty());

  for (const char* expr :
       {"sum by (twin) (sum(x))",       // nested aggregation
        "by (twin) (value(x))",         // by without an aggregator
        "sum by () (value(x))",         // empty by list
        "value(f{twin=\"t0\")",         // unterminated block
        "value(f{twin~\"t0\"})",        // bad matcher operator
        "value(f{twin=t0})"}) {         // unquoted value
    EXPECT_THROW((void)parse_tsdb_query(expr), failmine::ParseError) << expr;
  }
}

TEST(TsdbQueryParse, SelectorMatchingSemantics) {
  const auto sel = parse_tsdb_selector("stream.*{twin=~\"t*\",zone=\"z1\"}");
  EXPECT_TRUE(sel.has_block);
  EXPECT_EQ(sel.family, "stream.*");
  EXPECT_TRUE(sel.matches_key("twin"));
  EXPECT_FALSE(sel.matches_key("le"));

  // Matchers: `=~` needs the label present and glob-matching; `=` treats
  // an absent label as ""; extra labels never block a match.
  EXPECT_TRUE(tsdb_selector_matches(
      sel, "stream.records_in{twin=\"t3\",zone=\"z1\",extra=\"x\"}"));
  EXPECT_FALSE(tsdb_selector_matches(sel, "stream.records_in{zone=\"z1\"}"));
  EXPECT_FALSE(
      tsdb_selector_matches(sel, "stream.records_in{twin=\"t3\"}"));
  EXPECT_FALSE(
      tsdb_selector_matches(sel, "other.records_in{twin=\"t3\",zone=\"z1\"}"));

  const auto exact = parse_tsdb_selector("g{zone=\"\"}");
  EXPECT_TRUE(tsdb_selector_matches(exact, "g"));  // absent matches ""
  const auto bare = parse_tsdb_selector("g");
  EXPECT_FALSE(bare.has_block);
  EXPECT_TRUE(tsdb_selector_matches(bare, "g"));
}

TEST(TsdbQueryEval, LabelSelectorsAndByGrouping) {
  MetricsRegistry reg;
  auto& a = reg.counter("f", {{"twin", "a"}});
  auto& b = reg.counter("f", {{"twin", "b"}});
  auto& bare = reg.counter("f");
  TsdbStore store(test_config(&reg));
  store.scrape_once(kT0);
  for (int i = 1; i <= 10; ++i) {
    a.add(2);
    b.add(3);
    bare.add(5);
    store.scrape_once(kT0 + i * 1000);
  }

  // Blockless selector: legacy full-name glob, labeled series invisible.
  const auto legacy = parse_tsdb_query("increase(f[10s])");
  auto result = eval_tsdb_query(store, legacy, kT0 + 10'000, kT0 + 10'000,
                                10'000);
  ASSERT_EQ(result.series.size(), 1u);
  EXPECT_DOUBLE_EQ(result.series[0].points[0].value, 50.0);

  // Block selector: label-aware, bare series invisible to `=~`.
  const auto summed =
      parse_tsdb_query("sum(increase(f{twin=~\"*\"}[10s]))");
  result = eval_tsdb_query(store, summed, kT0 + 10'000, kT0 + 10'000, 10'000);
  ASSERT_EQ(result.series.size(), 1u);
  EXPECT_DOUBLE_EQ(result.series[0].points[0].value, 50.0);  // 20 + 30

  // by (twin): one output series per label value, each carrying the
  // group's label block in its name.
  const auto grouped =
      parse_tsdb_query("sum by (twin) (increase(f{twin=~\"*\"}[10s]))");
  result = eval_tsdb_query(store, grouped, kT0 + 10'000, kT0 + 10'000,
                           10'000);
  ASSERT_EQ(result.series.size(), 2u);
  for (const auto& series : result.series) {
    ASSERT_EQ(series.points.size(), 1u);
    if (series.name.find("{twin=\"a\"}") != std::string::npos)
      EXPECT_DOUBLE_EQ(series.points[0].value, 20.0);
    else if (series.name.find("{twin=\"b\"}") != std::string::npos)
      EXPECT_DOUBLE_EQ(series.points[0].value, 30.0);
    else
      ADD_FAILURE() << "unexpected group " << series.name;
  }

  // Exact matcher: a single series.
  const auto exact = parse_tsdb_query("increase(f{twin=\"a\"}[10s])");
  result = eval_tsdb_query(store, exact, kT0 + 10'000, kT0 + 10'000, 10'000);
  ASSERT_EQ(result.series.size(), 1u);
  EXPECT_DOUBLE_EQ(result.series[0].points[0].value, 20.0);
}

TEST(TsdbQueryEval, LabeledHistogramQuantilesStayPerTwin) {
  MetricsRegistry reg;
  auto& fast = reg.histogram("lat.us", {{"twin", "a"}},
                             {100.0, 1000.0, 100000.0});
  auto& slow = reg.histogram("lat.us", {{"twin", "b"}},
                             {100.0, 1000.0, 100000.0});
  TsdbStore store(test_config(&reg));
  store.scrape_once(kT0);
  for (int i = 0; i < 1000; ++i) fast.observe(10.0);
  for (int i = 0; i < 1000; ++i) slow.observe(50'000.0);
  store.scrape_once(kT0 + 60'000);

  // Each twin's buckets stay grouped per label set: twin a's p99 lands
  // in its fastest bucket, twin b's in the slow one — no cross-twin
  // bucket merging.
  const auto q = parse_tsdb_query("p99(lat.us{twin=~\"*\"}[1m])");
  const auto result =
      eval_tsdb_query(store, q, kT0 + 60'000, kT0 + 60'000, 60'000);
  ASSERT_EQ(result.series.size(), 2u);
  for (const auto& series : result.series) {
    ASSERT_EQ(series.points.size(), 1u) << series.name;
    if (series.name.find("{twin=\"a\"}") != std::string::npos)
      EXPECT_LE(series.points[0].value, 100.0) << series.name;
    else
      EXPECT_GT(series.points[0].value, 1000.0) << series.name;
  }

  // The store-level windowed quantile resolves labeled bases too.
  const auto wq = store.windowed_quantile("lat.us{twin=\"b\"}", 0.99,
                                          kT0 + 60'000, 60'000);
  ASSERT_TRUE(wq.has_value());
  EXPECT_GT(*wq, 1000.0);
}

// ---- concurrency -------------------------------------------------------

TEST(TsdbConcurrency, ConcurrentScrapeAndReadIsTearFree) {
  MetricsRegistry reg;
  auto& c = reg.counter("hot");
  auto& g = reg.gauge("wobble");
  auto config = test_config(&reg);
  config.raw_chunks = 2;  // force constant chunk recycling under readers
  TsdbStore store(config);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto to = store.latest_ms();
        const auto pts = store.read_series("hot", 0, to + 1'000'000);
        for (std::size_t i = 1; i < pts.size(); ++i)
          ASSERT_LT(pts[i - 1].t_ms, pts[i].t_ms);
        // Counters are monotone; a torn read would show regressions.
        for (std::size_t i = 1; i < pts.size(); ++i)
          ASSERT_LE(pts[i - 1].value, pts[i].value);
        (void)store.value_at("wobble", to);
        (void)store.increase_over("hot", to, 30'000);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::int64_t t = kT0;
  for (int i = 0; i < 4000; ++i) {
    c.add(static_cast<std::uint64_t>(i % 17) + 1);
    g.set(std::sin(static_cast<double>(i)) * 1e6);
    store.scrape_once(t += 1000);
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(store.stats().scrapes, 4000u);
}

TEST(TsdbConcurrency, LabelCardinalityPressureStaysTearFree) {
  // Two twins' hot counters (inside the per-family budget) advance
  // under concurrent readers while a rotating probe family blows its
  // label-set budget on every scrape — eviction accounting must not
  // tear the surviving labeled series.
  MetricsRegistry reg;
  auto& t0 = reg.counter("hot", {{"twin", "t0"}});
  auto& t1 = reg.counter("hot", {{"twin", "t1"}});
  auto config = test_config(&reg);
  config.raw_chunks = 2;  // force constant chunk recycling under readers
  config.max_label_sets_per_family = 4;
  TsdbStore store(config);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      const std::string name =
          r % 2 == 0 ? "hot{twin=\"t0\"}" : "hot{twin=\"t1\"}";
      while (!stop.load(std::memory_order_acquire)) {
        const auto to = store.latest_ms();
        const auto pts = store.read_series(name, 0, to + 1'000'000);
        for (std::size_t i = 1; i < pts.size(); ++i) {
          ASSERT_LT(pts[i - 1].t_ms, pts[i].t_ms);
          // Counters are monotone; a torn read would show regressions.
          ASSERT_LE(pts[i - 1].value, pts[i].value);
        }
        (void)store.increase_over(name, to, 30'000);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::int64_t t = kT0;
  for (int i = 0; i < 3000; ++i) {
    t0.add(static_cast<std::uint64_t>(i % 7) + 1);
    t1.add(static_cast<std::uint64_t>(i % 11) + 1);
    // 8 probe label sets rotate through a 4-set budget: every scrape
    // admits some and drops the rest, exercising the eviction path
    // while the readers traverse the hot series.
    reg.counter("probe", {{"zone", "z" + std::to_string(i % 8)}}).add(1);
    store.scrape_once(t += 1000);
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_GT(reads.load(), 0u);
  const auto stats = store.stats();
  EXPECT_EQ(stats.scrapes, 3000u);
  EXPECT_GT(stats.dropped_series, 0u);
  // The budget never evicted the hot twins: both are still readable
  // right up to the final scrape tick (chunk recycling trims history,
  // never the live head).
  for (const char* name : {"hot{twin=\"t0\"}", "hot{twin=\"t1\"}"}) {
    const auto survivors = store.read_series(name, 0, t + 1);
    ASSERT_FALSE(survivors.empty()) << name;
    EXPECT_EQ(survivors.back().t_ms, t) << name;
  }
}

// ---- HTTP surface ------------------------------------------------------

TEST(TsdbServeE2E, QueryAndSeriesEndpoints) {
  TelemetryServer server;
  server.start();
  const auto port = server.port();

  // 404 until the global store has data (this test is the only one in
  // the binary that touches obs::tsdb()).
  EXPECT_EQ(http_get(port, "/query?expr=value(x)").status, 404);
  EXPECT_EQ(http_get(port, "/series").status, 404);

  metrics().counter("tsdbe2e.jobs").add(10);
  tsdb().scrape_once(kT0);
  metrics().counter("tsdbe2e.jobs").add(20);
  tsdb().scrape_once(kT0 + 60'000);

  auto r = http_get(port, "/query?expr=increase(tsdbe2e.jobs%5B1m%5D)");
  EXPECT_EQ(r.status, 200) << r.body;
  EXPECT_NE(r.body.find("tsdbe2e.jobs"), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("20"), std::string::npos) << r.body;

  // Instant query spelling (start=end) and an explicit range.
  r = http_get(port, "/query?expr=value(tsdbe2e.jobs)");
  EXPECT_EQ(r.status, 200) << r.body;
  r = http_get(port,
               "/query?expr=value(tsdbe2e.jobs)&start=" +
                   std::to_string(kT0 / 1000) +
                   "&end=" + std::to_string(kT0 / 1000 + 60) + "&step=30");
  EXPECT_EQ(r.status, 200) << r.body;

  EXPECT_EQ(http_get(port, "/query").status, 400);
  r = http_get(port, "/query?expr=frobnicate(m)");
  EXPECT_EQ(r.status, 400);
  EXPECT_NE(r.body.find("tsdb query"), std::string::npos) << r.body;
  EXPECT_EQ(http_get(port, "/query?expr=value(x)&step=-1").status, 400);

  r = http_get(port, "/series");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"tsdbe2e.jobs\""), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("\"stats\":"), std::string::npos) << r.body;

  // The per-endpoint request counters saw this traffic.
  EXPECT_GT(metrics().counter("obs.serve.requests{path=\"/query\"}").value(),
            0u);
  EXPECT_GT(metrics().counter("obs.serve.requests{path=\"/series\"}").value(),
            0u);
  server.stop();
}

}  // namespace
}  // namespace failmine::obs
