// Unit tests for the columnar record store: dictionary encoding and
// chunk merge, bitmap index, delta timestamp column, scan kernels, and
// the builders' deterministic chunk-order merge (including a threaded
// build, which is what the TSan CI job exercises).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "columnar/bitmap.hpp"
#include "columnar/builder.hpp"
#include "columnar/column.hpp"
#include "columnar/dictionary.hpp"
#include "columnar/kernels.hpp"
#include "columnar/table.hpp"
#include "obs/metrics.hpp"
#include "sim/synthetic.hpp"
#include "util/error.hpp"

namespace failmine::columnar {
namespace {

TEST(ColumnarDictionary, AssignsCodesInFirstSeenOrder) {
  Dictionary d;
  EXPECT_EQ(d.encode("prod"), 0u);
  EXPECT_EQ(d.encode("backfill"), 1u);
  EXPECT_EQ(d.encode("prod"), 0u);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.name(0), "prod");
  EXPECT_EQ(d.name(1), "backfill");
  EXPECT_EQ(d.find("backfill"), std::optional<std::uint32_t>(1u));
  EXPECT_EQ(d.find("absent"), std::nullopt);
  EXPECT_THROW(d.name(2), DomainError);
  EXPECT_GT(d.bytes(), 0u);
}

TEST(ColumnarDictionary, MergeMatchesSerialFirstSeenPass) {
  // Two chunk-local dictionaries merged in chunk order must reproduce
  // the code assignment of one serial pass over both chunks' strings.
  const std::vector<std::string> chunk0 = {"a", "b", "a", "c"};
  const std::vector<std::string> chunk1 = {"d", "b", "e", "a"};

  Dictionary serial;
  for (const auto& s : chunk0) serial.encode(s);
  for (const auto& s : chunk1) serial.encode(s);

  Dictionary first, second;
  for (const auto& s : chunk0) first.encode(s);
  std::vector<std::uint32_t> codes1;
  for (const auto& s : chunk1) codes1.push_back(second.encode(s));

  std::vector<std::uint32_t> remap;
  first.merge_from(second, remap);
  EXPECT_EQ(first.names(), serial.names());
  for (std::size_t i = 0; i < chunk1.size(); ++i)
    EXPECT_EQ(remap[codes1[i]], *serial.find(chunk1[i])) << "i=" << i;
}

TEST(ColumnarDictionary, RoundTripsCodeStringCode) {
  Dictionary d;
  const std::vector<std::string> values = {"x", "yy", "", "zzz"};
  for (const auto& s : values) d.encode(s);
  for (std::uint32_t c = 0; c < d.size(); ++c)
    EXPECT_EQ(*d.find(d.name(c)), c);  // code -> string -> same code
}

TEST(ColumnarBitmap, SetTestCountForEach) {
  Bitmap b(130);  // spans three words
  EXPECT_EQ(b.count(), 0u);
  for (std::size_t i : {0u, 63u, 64u, 129u}) b.set(i);
  EXPECT_TRUE(b.test(63));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  std::vector<std::size_t> seen;
  b.for_each_set([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 63, 64, 129}));
}

TEST(ColumnarBitmap, LogicalAndRequiresEqualSizes) {
  Bitmap a(70), b(70);
  a.set(3);
  a.set(65);
  b.set(65);
  const Bitmap both = Bitmap::logical_and(a, b);
  EXPECT_EQ(both.count(), 1u);
  EXPECT_TRUE(both.test(65));
  Bitmap other(8);
  EXPECT_THROW(Bitmap::logical_and(a, other), DomainError);
}

TEST(ColumnarTimestamp, DeltaEncodesNonDecreasingValues) {
  TimestampColumn c;
  const std::vector<util::UnixSeconds> values = {100, 100, 105, 400, 400};
  for (auto t : values) c.push_back(t);
  c.seal();
  EXPECT_TRUE(c.delta_encoded());
  EXPECT_EQ(c.decode_all(), values);
  EXPECT_EQ(c.front(), 100);
  EXPECT_EQ(c.back(), 400);
  EXPECT_EQ(c.at(3), 400);
  EXPECT_THROW(c.push_back(500), DomainError);  // sealed
}

TEST(ColumnarTimestamp, FallsBackToPlainWhenUnsorted) {
  TimestampColumn c;
  for (auto t : {50, 40, 60}) c.push_back(t);
  c.seal();
  EXPECT_FALSE(c.delta_encoded());
  EXPECT_EQ(c.decode_all(),
            (std::vector<util::UnixSeconds>{50, 40, 60}));  // lossless
}

TEST(ColumnarTimestamp, FallsBackToPlainOnHugeStep) {
  TimestampColumn c;
  c.push_back(0);
  c.push_back(static_cast<util::UnixSeconds>(UINT32_MAX) + 1);
  c.seal();
  EXPECT_FALSE(c.delta_encoded());
  EXPECT_EQ(c.back(), static_cast<util::UnixSeconds>(UINT32_MAX) + 1);
}

TEST(ColumnarKernels, CountByKeyHandlesTailRows) {
  // 7 rows: exercises the 4-way unrolled body plus a 3-row tail.
  const std::vector<std::uint8_t> keys = {1, 0, 1, 2, 1, 2, 1};
  const std::vector<std::uint64_t> counts = kernels::count_by_key(keys, 3);
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{1, 4, 2}));
}

TEST(ColumnarKernels, CountByKeyPairAndMasked) {
  const std::vector<std::uint8_t> a = {0, 1, 1, 0};
  const std::vector<std::uint8_t> b = {2, 0, 2, 2};
  const std::vector<std::uint64_t> pair =
      kernels::count_by_key_pair(a, 2, b, 3);
  EXPECT_EQ(pair[0 * 3 + 2], 2u);
  EXPECT_EQ(pair[1 * 3 + 0], 1u);
  EXPECT_EQ(pair[1 * 3 + 2], 1u);

  Bitmap mask(4);
  mask.set(1);
  mask.set(3);
  const std::vector<std::uint64_t> masked =
      kernels::count_by_key_masked(a, 2, mask);
  EXPECT_EQ(masked, (std::vector<std::uint64_t>{1, 1}));
}

TEST(ColumnarKernels, SumByKeyAccumulatesInRowOrder) {
  const std::vector<std::uint32_t> keys = {0, 1, 0};
  const std::vector<double> sums = kernels::sum_by_key(
      keys, 2, [](std::size_t i) { return static_cast<double>(i + 1); });
  EXPECT_EQ(sums, (std::vector<double>{4.0, 2.0}));
  EXPECT_EQ(kernels::max_u32(keys), 1u);
}

joblog::JobRecord make_job(std::uint64_t id, util::UnixSeconds start,
                           const char* queue,
                           joblog::ExitClass cls = joblog::ExitClass::kSuccess) {
  joblog::JobRecord j;
  j.job_id = id;
  j.user_id = static_cast<std::uint32_t>(id % 7);
  j.project_id = static_cast<std::uint32_t>(id % 3);
  j.queue = queue;
  j.submit_time = start - 30;
  j.start_time = start;
  j.end_time = start + 600;
  j.nodes_used = 512;
  j.task_count = 1;
  j.requested_walltime = 3600;
  j.exit_class = cls;
  if (is_failure(cls)) j.exit_code = 1;
  return j;
}

TEST(ColumnarBuilder, RoundTripsJobRecords) {
  JobTableBuilder b;
  std::vector<joblog::JobRecord> expected;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    expected.push_back(make_job(i, 1000 + 10 * static_cast<int>(i), "prod",
                                i % 2 ? joblog::ExitClass::kSuccess
                                      : joblog::ExitClass::kSystemHardware));
    b.add(expected.back());
  }
  std::vector<JobTableBuilder> chunks;
  chunks.push_back(std::move(b));
  const JobTable t = JobTableBuilder::merge(std::move(chunks));
  ASSERT_EQ(t.rows(), expected.size());
  EXPECT_EQ(t.to_records(), expected);
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(t.row(i), expected[i]) << "row " << i;
  EXPECT_TRUE(t.start_time.delta_encoded());
  EXPECT_EQ(t.failed.count(), 2u);  // ids 2 and 4
  EXPECT_GT(t.bytes(), 0u);
}

TEST(ColumnarBuilder, MergeSortsOutOfOrderChunksCanonically) {
  // Chunks whose concatenation is NOT (start_time, job_id)-sorted: merge
  // must gather them into canonical order, like JobLog::finalize.
  JobTableBuilder b0, b1;
  const joblog::JobRecord early = make_job(7, 1000, "prod");
  const joblog::JobRecord mid = make_job(2, 2000, "backfill");
  const joblog::JobRecord tie = make_job(1, 2000, "prod");
  b0.add(mid);
  b1.add(early);
  b1.add(tie);
  std::vector<JobTableBuilder> chunks;
  chunks.push_back(std::move(b0));
  chunks.push_back(std::move(b1));
  const JobTable t = JobTableBuilder::merge(std::move(chunks));
  EXPECT_EQ(t.to_records(),
            (std::vector<joblog::JobRecord>{early, tie, mid}));
  // Dictionary codes are first-seen in CHUNK order (b0 then b1),
  // independent of the row sort: backfill=0, prod=1.
  EXPECT_EQ(t.queue_dict.name(0), "backfill");
  EXPECT_EQ(t.queue_dict.name(1), "prod");
}

TEST(ColumnarBuilder, RejectsTimestampSpansBeyond32Bits) {
  JobTableBuilder b;
  joblog::JobRecord j = make_job(1, 1000, "prod");
  j.end_time = j.start_time + (static_cast<std::int64_t>(UINT32_MAX) + 2);
  EXPECT_THROW(b.add(j), DomainError);
}

TEST(ColumnarBuilder, FlushesBuildMetrics) {
  obs::MetricsRegistry& m = obs::metrics();
  const std::uint64_t rows_before = m.counter("columnar.rows").value();
  const std::uint64_t bytes_before = m.counter("columnar.bytes").value();
  const std::uint64_t dict_before = m.counter("columnar.dict_entries").value();

  JobTableBuilder b;
  b.add(make_job(1, 1000, "prod"));
  b.add(make_job(2, 1010, "backfill"));
  std::vector<JobTableBuilder> chunks;
  chunks.push_back(std::move(b));
  const JobTable t = JobTableBuilder::merge(std::move(chunks));

  EXPECT_EQ(m.counter("columnar.rows").value() - rows_before, t.rows());
  EXPECT_GT(m.counter("columnar.bytes").value(), bytes_before);
  EXPECT_EQ(m.counter("columnar.dict_entries").value() - dict_before, 2u);
}

TEST(ColumnarBuilder, ThreadedChunkBuildIsDeterministic) {
  // Builders filled on distinct threads (no shared state), merged in
  // chunk order, must produce the same table as one serial builder —
  // codes included. This is the pattern the parallel CSV load runs.
  sim::SyntheticJobStreamConfig config;
  config.rows = 40'000;
  config.users = 64;

  JobTableBuilder serial;
  sim::generate_job_stream(config,
                           [&](const joblog::JobRecord& j) { serial.add(j); });
  std::vector<JobTableBuilder> serial_chunks;
  serial_chunks.push_back(std::move(serial));
  const JobTable expected = JobTableBuilder::merge(std::move(serial_chunks));

  // Split the same stream into 4 contiguous chunks built concurrently.
  constexpr std::size_t kChunks = 4;
  std::vector<JobTableBuilder> chunks(kChunks);
  {
    std::vector<std::thread> workers;
    const std::uint64_t per = config.rows / kChunks;
    for (std::size_t c = 0; c < kChunks; ++c) {
      workers.emplace_back([&, c] {
        const std::uint64_t begin = per * c;
        const std::uint64_t end = c + 1 == kChunks ? config.rows : per * (c + 1);
        std::uint64_t i = 0;
        sim::generate_job_stream(config, [&](const joblog::JobRecord& j) {
          if (i >= begin && i < end) chunks[c].add(j);
          ++i;
        });
      });
    }
    for (auto& w : workers) w.join();
  }
  const JobTable merged = JobTableBuilder::merge(std::move(chunks));

  ASSERT_EQ(merged.rows(), expected.rows());
  EXPECT_EQ(merged.queue_code, expected.queue_code);
  EXPECT_EQ(merged.queue_dict.names(), expected.queue_dict.names());
  EXPECT_EQ(merged.job_id, expected.job_id);
  EXPECT_EQ(merged.user_id, expected.user_id);
  EXPECT_EQ(merged.exit_class_code, expected.exit_class_code);
  EXPECT_EQ(merged.start_time.decode_all(), expected.start_time.decode_all());
  EXPECT_EQ(merged.failed.words(), expected.failed.words());
}

TEST(ColumnarBuilder, RasRoundTripKeepsLocationsAligned) {
  const topology::MachineConfig machine{};
  RasTableBuilder b(machine);
  std::vector<raslog::RasEvent> expected;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    raslog::RasEvent e;
    e.record_id = i;
    e.timestamp = 5000 + static_cast<int>(i);
    e.message_id = i % 2 ? "00040020" : "00080030";
    e.severity = i == 3 ? raslog::Severity::kFatal : raslog::Severity::kWarn;
    e.component = raslog::Component::kMc;
    e.category = raslog::Category::kSoftware;
    e.location = i % 2 ? topology::Location::rack(0, 0)
                       : topology::Location::rack(1, 1);
    if (i == 2) e.job_id = 77;
    e.text = "event text " + std::to_string(i);
    expected.push_back(e);
    b.add(e);
  }
  std::vector<RasTableBuilder> chunks;
  chunks.push_back(std::move(b));
  const RasTable t = RasTableBuilder::merge(std::move(chunks));
  ASSERT_EQ(t.rows(), expected.size());
  EXPECT_EQ(t.to_records(), expected);
  ASSERT_EQ(t.locations.size(), t.location_dict.size());
  for (std::size_t i = 0; i < t.rows(); ++i)
    EXPECT_EQ(t.locations[t.location_code[i]].to_string(),
              t.location_dict.name(t.location_code[i]));
  EXPECT_EQ(t.severity_bits[static_cast<std::size_t>(raslog::Severity::kFatal)]
                .count(),
            1u);
  EXPECT_EQ(t.has_job.count(), 1u);
}

TEST(ColumnarBuilder, TaskAndIoRoundTrip) {
  TaskTableBuilder tb;
  std::vector<tasklog::TaskRecord> tasks;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    tasklog::TaskRecord r;
    r.task_id = 100 + i;
    r.job_id = i;
    r.sequence = 0;
    r.start_time = 3000 + static_cast<int>(i);
    r.end_time = r.start_time + 120;
    r.nodes_used = 256;
    r.ranks_per_node = 16;
    if (i == 2) r.exit_signal = 9;
    tasks.push_back(r);
    tb.add(r);
  }
  std::vector<TaskTableBuilder> tchunks;
  tchunks.push_back(std::move(tb));
  const TaskTable tt = TaskTableBuilder::merge(std::move(tchunks));
  EXPECT_EQ(tt.to_records(), tasks);
  EXPECT_EQ(tt.failed.count(), 1u);

  IoTableBuilder ib;
  std::vector<iolog::IoRecord> ios;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    iolog::IoRecord r;
    r.job_id = i;
    r.bytes_read = 1 << i;
    r.bytes_written = 1 << (i + 1);
    r.read_time_seconds = 0.5 * static_cast<double>(i);
    r.write_time_seconds = 0.25;
    r.files_accessed = 3;
    r.ranks_doing_io = 8;
    ios.push_back(r);
    ib.add(r);
  }
  std::vector<IoTableBuilder> ichunks;
  ichunks.push_back(std::move(ib));
  const IoTable it = IoTableBuilder::merge(std::move(ichunks));
  EXPECT_EQ(it.to_records(), ios);
}

}  // namespace
}  // namespace failmine::columnar
