// Tests for the metrics registry: counter/gauge/histogram semantics,
// instrument identity across lookups, and the JSON/text exports.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace failmine::obs {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("failmine_obs_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

TEST(Counter, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsDoNotLoseIncrements) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketsAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);  // bucket 0
  h.observe(1.0);  // bucket 0 (inclusive)
  h.observe(1.5);  // bucket 1
  h.observe(5.0);  // bucket 2
  h.observe(9.0);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 17.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.4);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  for (std::uint64_t b : h.bucket_counts()) EXPECT_EQ(b, 0u);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), DomainError);
  EXPECT_THROW(Histogram({1.0, 1.0}), DomainError);
  EXPECT_THROW(Histogram({2.0, 1.0}), DomainError);
}

TEST(Histogram, DefaultBoundsAreStrictlyIncreasing) {
  const auto bounds = default_histogram_bounds();
  ASSERT_FALSE(bounds.empty());
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_LT(bounds[i - 1], bounds[i]);
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.total");
  Counter& b = reg.counter("x.total");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.counter_value("x.total"), 3u);
  // counter_value does not create.
  EXPECT_EQ(reg.counter_value("never.touched"), 0u);
  Gauge& g = reg.gauge("x.gauge");
  EXPECT_EQ(&g, &reg.gauge("x.gauge"));
  Histogram& h = reg.histogram("x.hist");
  EXPECT_EQ(&h, &reg.histogram("x.hist"));
}

TEST(MetricsRegistry, JsonExportContainsAllInstruments) {
  MetricsRegistry reg;
  reg.counter("parse.lines_total").add(120);
  reg.gauge("sim.scale").set(0.1);
  reg.histogram("distfit.iterations", {1, 2, 5}).observe(3);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"parse.lines_total\":120"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.scale\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"distfit.iterations\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  // Structurally balanced.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(MetricsRegistry, WriteJsonRoundTripsThroughDisk) {
  MetricsRegistry reg;
  reg.counter("a").add(7);
  const std::string path = temp_path("metrics.json");
  reg.write_json(path);
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), reg.to_json() + "\n");
  std::remove(path.c_str());
}

TEST(MetricsRegistry, WriteJsonBadPathThrowsObsError) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.write_json("/nonexistent_dir_for_obs_test/m.json"),
               ObsError);
}

TEST(MetricsRegistry, TextDumpAndReset) {
  MetricsRegistry reg;
  reg.counter("b.count").add(2);
  reg.gauge("a.gauge").set(1.5);
  const std::string text = reg.to_text();
  EXPECT_NE(text.find("b.count 2"), std::string::npos);
  EXPECT_NE(text.find("a.gauge"), std::string::npos);
  reg.reset();
  EXPECT_EQ(reg.counter_value("b.count"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("a.gauge").value(), 0.0);
}

TEST(GlobalMetrics, IsShared) {
  EXPECT_EQ(&metrics(), &metrics());
}

}  // namespace
}  // namespace failmine::obs
