// Robustness (fuzz-style) tests: randomly corrupted log files must never
// crash the parsers — every malformed input surfaces as failmine::Error,
// and rejected lines are counted in the parse.lines_rejected metric
// instead of vanishing silently.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "iolog/io_record.hpp"
#include "joblog/job.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "raslog/event.hpp"
#include "sim/simulator.hpp"
#include "tasklog/task.hpp"
#include "topology/location.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace failmine {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

/// Applies one random mutation to `content`: flip, delete or insert a
/// character, or truncate the file.
std::string mutate(const std::string& content, util::Rng& rng) {
  if (content.empty()) return content;
  std::string out = content;
  const auto pos = rng.uniform_index(out.size());
  switch (rng.uniform_index(4)) {
    case 0:  // flip a character to random printable or control byte
      out[pos] = static_cast<char>(rng.uniform_int(1, 126));
      break;
    case 1:  // delete
      out.erase(pos, 1);
      break;
    case 2:  // insert
      out.insert(pos, 1, static_cast<char>(rng.uniform_int(1, 126)));
      break;
    default:  // truncate
      out.resize(pos);
      break;
  }
  return out;
}

class FuzzParsers : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(
        (std::filesystem::temp_directory_path() /
         ("failmine_fuzz_" + std::to_string(::getpid())))
            .string());
    std::filesystem::create_directories(*dir_);
    // Thousands of rejected rows are expected here; don't spam stderr
    // with the per-row WARN records.
    obs::logger().set_level(obs::LogLevel::kError);
    sim::SimConfig config = sim::SimConfig::test_scale();
    config.scale = 0.001;  // tiny but fully populated
    const auto trace = sim::simulate(config);
    sim::write_dataset(trace, *dir_);
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    dir_ = nullptr;
  }

  static std::string read_file(const std::string& name) {
    std::ifstream in(*dir_ + "/" + name);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  template <typename LoadFn>
  static void fuzz_one(const std::string& name, LoadFn load, int rounds) {
    const std::string original = read_file(name);
    ASSERT_FALSE(original.empty());
    util::Rng rng(0xF022ED);
    const std::string path = *dir_ + "/fuzzed_" + name;
    const std::uint64_t rejected_before =
        obs::metrics().counter_value("parse.lines_rejected");
    int parsed_ok = 0;
    for (int round = 0; round < rounds; ++round) {
      std::string corrupted = original;
      // 1..8 stacked mutations per round.
      const auto n = 1 + rng.uniform_index(8);
      for (std::uint64_t i = 0; i < n; ++i) corrupted = mutate(corrupted, rng);
      {
        std::ofstream out(path);
        out << corrupted;
      }
      try {
        load(path);
        ++parsed_ok;  // harmless mutation (e.g. inside a text field)
      } catch (const Error&) {
        // expected for most mutations
      } catch (...) {
        FAIL() << name << " round " << round
               << ": parser escaped the failmine::Error hierarchy";
      }
    }
    std::remove(path.c_str());
    // Sanity: the harness itself must be able to parse the pristine file.
    ASSERT_NO_THROW(load(*dir_ + "/" + name));
    // And at least one mutation should have been rejected (otherwise the
    // mutator or the validation is broken).
    EXPECT_LT(parsed_ok, rounds);
    // Rejections are not silent: they increment parse.lines_rejected.
    EXPECT_GT(obs::metrics().counter_value("parse.lines_rejected"),
              rejected_before)
        << name << ": rejected rows did not reach the metrics registry";
  }

  static std::string* dir_;
};

std::string* FuzzParsers::dir_ = nullptr;

TEST_F(FuzzParsers, RasLogNeverCrashes) {
  fuzz_one("ras.csv",
           [](const std::string& p) { raslog::RasLog::read_csv(p, kMira); },
           150);
}

TEST_F(FuzzParsers, JobLogNeverCrashes) {
  fuzz_one("jobs.csv",
           [](const std::string& p) { joblog::JobLog::read_csv(p); }, 150);
}

TEST_F(FuzzParsers, TaskLogNeverCrashes) {
  fuzz_one("tasks.csv",
           [](const std::string& p) { tasklog::TaskLog::read_csv(p); }, 150);
}

TEST_F(FuzzParsers, IoLogNeverCrashes) {
  fuzz_one("io.csv", [](const std::string& p) { iolog::IoLog::read_csv(p); },
           150);
}

TEST(FuzzLocation, RandomStringsNeverCrashTheLocationParser) {
  util::Rng rng(99);
  int ok = 0;
  for (int i = 0; i < 5000; ++i) {
    std::string s;
    const auto len = rng.uniform_index(24);
    for (std::uint64_t c = 0; c < len; ++c) {
      static constexpr char kAlphabet[] = "RMNJC0123456789ABCDEF- ";
      s.push_back(kAlphabet[rng.uniform_index(sizeof(kAlphabet) - 1)]);
    }
    try {
      topology::Location::parse(s, kMira);
      ++ok;
    } catch (const Error&) {
    }
  }
  // A few random strings are valid codes; most are rejected.
  EXPECT_LT(ok, 500);
}

TEST(FuzzTimestamp, RandomStringsNeverCrashTheTimestampParser) {
  util::Rng rng(101);
  for (int i = 0; i < 5000; ++i) {
    std::string s;
    const auto len = rng.uniform_index(25);
    for (std::uint64_t c = 0; c < len; ++c)
      s.push_back(static_cast<char>(rng.uniform_int(32, 126)));
    try {
      util::parse_timestamp(s);
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace failmine
