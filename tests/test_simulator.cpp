// Integration tests for the full simulator: cross-log consistency
// guarantees documented in sim/simulator.hpp.

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/error.hpp"

namespace failmine::sim {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new SimConfig(SimConfig::test_scale());
    result_ = new SimResult(simulate(*config_));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete config_;
    result_ = nullptr;
    config_ = nullptr;
  }
  static SimConfig* config_;
  static SimResult* result_;
};

SimConfig* SimulatorTest::config_ = nullptr;
SimResult* SimulatorTest::result_ = nullptr;

TEST_F(SimulatorTest, AllLogsNonEmpty) {
  EXPECT_GT(result_->job_log.size(), 1000u);
  EXPECT_GT(result_->task_log.size(), result_->job_log.size());
  EXPECT_GT(result_->ras_log.size(), 10000u);
  EXPECT_GT(result_->io_log.size(), 100u);
}

TEST_F(SimulatorTest, TaskCountsMatchJobRecords) {
  for (const auto& j : result_->job_log.jobs()) {
    EXPECT_EQ(result_->task_log.task_count(j.job_id), j.task_count)
        << "job " << j.job_id;
  }
}

TEST_F(SimulatorTest, TasksLieWithinJobWindows) {
  for (const auto& t : result_->task_log.tasks()) {
    const auto& j = result_->job_log.by_id(t.job_id);
    EXPECT_GE(t.start_time, j.start_time);
    EXPECT_LE(t.end_time, j.end_time);
    EXPECT_LE(t.start_time, t.end_time);
  }
}

TEST_F(SimulatorTest, LastTaskCarriesJobExitStatus) {
  for (const auto& j : result_->job_log.jobs()) {
    const auto tasks = result_->task_log.tasks_of_job(j.job_id);
    ASSERT_FALSE(tasks.empty());
    EXPECT_EQ(tasks.back().exit_code, j.exit_code);
    EXPECT_EQ(tasks.back().exit_signal, j.exit_signal);
    EXPECT_EQ(tasks.back().end_time, j.end_time);
    for (std::size_t i = 0; i + 1 < tasks.size(); ++i) {
      EXPECT_EQ(tasks[i].exit_code, 0);
      EXPECT_EQ(tasks[i].exit_signal, 0);
    }
  }
}

TEST_F(SimulatorTest, IoRecordsReferToExistingJobs) {
  for (const auto& r : result_->io_log.records())
    EXPECT_TRUE(result_->job_log.contains(r.job_id));
}

TEST_F(SimulatorTest, RasLogIsTimeSortedWithUniqueAscendingIds) {
  const auto& events = result_->ras_log.events();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].timestamp, events[i - 1].timestamp);
    EXPECT_GT(events[i].record_id, events[i - 1].record_id);
  }
}

TEST_F(SimulatorTest, SystemFailuresCoincideWithFatalEpisodes) {
  std::set<std::uint64_t> victims;
  for (const auto& ep : result_->episodes)
    if (ep.victim_job) victims.insert(*ep.victim_job);
  for (const auto& j : result_->job_log.jobs()) {
    if (joblog::is_system_caused(j.exit_class))
      EXPECT_TRUE(victims.contains(j.job_id));
  }
}

TEST_F(SimulatorTest, EpisodesHaveFatalEventsNearby) {
  // Each episode must produce at least one FATAL event within its burst
  // horizon on the same midplane.
  const auto fatals =
      result_->ras_log.filter_severity(raslog::Severity::kFatal);
  for (const auto& ep : result_->episodes) {
    bool found = false;
    for (const auto& e : fatals) {
      if (e.timestamp < ep.time) continue;
      if (e.timestamp > ep.time + 40 * 300) break;
      const auto common = e.location.common_level(ep.origin);
      if (common && *common >= topology::Level::kMidplane) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "episode at " << ep.time << " left no fatal event";
  }
}

TEST_F(SimulatorTest, DeterministicAcrossRuns) {
  const SimResult again = simulate(*config_);
  ASSERT_EQ(again.job_log.size(), result_->job_log.size());
  ASSERT_EQ(again.ras_log.size(), result_->ras_log.size());
  for (std::size_t i = 0; i < again.job_log.size(); i += 211)
    EXPECT_EQ(again.job_log.jobs()[i], result_->job_log.jobs()[i]);
  for (std::size_t i = 0; i < again.ras_log.size(); i += 1013)
    EXPECT_EQ(again.ras_log.events()[i], result_->ras_log.events()[i]);
}

TEST_F(SimulatorTest, DifferentSeedsProduceDifferentTraces) {
  SimConfig other = *config_;
  other.seed = config_->seed + 1;
  const SimResult b = simulate(other);
  EXPECT_NE(b.job_log.size(), 0u);
  // Sizes can coincide; compare content.
  bool any_diff = b.job_log.size() != result_->job_log.size();
  if (!any_diff) {
    for (std::size_t i = 0; i < b.job_log.size(); ++i) {
      if (!(b.job_log.jobs()[i] == result_->job_log.jobs()[i])) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Simulator, ScaleChangesJobCountProportionally) {
  SimConfig small = SimConfig::test_scale();
  SimConfig half = small;
  half.scale = small.scale / 2.0;
  const auto a = simulate(small);
  const auto b = simulate(half);
  const double ratio = static_cast<double>(b.job_log.size()) /
                       static_cast<double>(a.job_log.size());
  EXPECT_NEAR(ratio, 0.5, 0.08);
}

TEST(Simulator, InvalidConfigRejected) {
  SimConfig bad = SimConfig::test_scale();
  bad.observation_days = 0;
  EXPECT_THROW(simulate(bad), failmine::DomainError);
}

}  // namespace
}  // namespace failmine::sim
