// End-to-end tests for fleet mode: N digital-twin pipelines in one
// process, isolated by the twin label. Covers the label-disambiguated
// instrument registration (no cross-twin collisions), the GET /fleet
// rollup matching each twin's own StreamSnapshot, `sum by (twin)`
// queries over the shared time-series store reproducing per-twin ingest
// accounting exactly, and the alert engine's per-label-group rules — a
// stalled twin fires only its own `{twin="..."}` group and flips only
// the fleet-level health verdict.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "obs/alerts.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/serve.hpp"
#include "obs/tsdb.hpp"
#include "obs/tsdb_query.hpp"
#include "sim/replay.hpp"
#include "sim/simulator.hpp"
#include "stream/fleet.hpp"
#include "util/error.hpp"

namespace failmine::stream {
namespace {

constexpr std::int64_t kT0 = 1'700'000'040'000;

const sim::SimResult& trace() {
  static const sim::SimResult result = [] {
    sim::SimConfig config = sim::SimConfig::test_scale();
    config.scale = 0.004;
    return sim::simulate(config);
  }();
  return result;
}

FleetConfig fleet_config(std::size_t twins) {
  FleetConfig config;
  config.twin_count = twins;
  config.base.shard_count = 2;
  config.base.queue_capacity = 1 << 13;
  config.base.max_lateness_seconds = 0;
  // Tight watchdog so the stall test converges quickly.
  config.base.watchdog_grace_ms = 100;
  config.base.watchdog_poll_ms = 20;
  return config;
}

/// Polls `predicate` until true or ~2 s elapse.
bool eventually(const std::function<bool()>& predicate) {
  for (int i = 0; i < 200; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

std::string twin_series(const std::string& family, const std::string& twin) {
  return family + "{twin=\"" + twin + "\"}";
}

TEST(FleetLabels, TwinInstrumentsAreDisjointPerTwin) {
  EXPECT_THROW(StreamFleet(FleetConfig{0, {}}), failmine::DomainError);
  EXPECT_EQ(StreamFleet::twin_name(0), "t0");
  EXPECT_EQ(StreamFleet::twin_name(11), "t11");

  StreamFleet fleet(fleet_config(3));
  ASSERT_EQ(fleet.size(), 3u);

  // Feed each twin a different-sized slice of the same replay so their
  // counters must diverge if (and only if) registration is per-twin.
  auto records = sim::build_replay(trace());
  ASSERT_GE(records.size(), 300u);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const std::size_t n = 100 * (i + 1);
    std::vector<StreamRecord> slice(records.begin(),
                                    records.begin() + n);
    fleet.twin(i).push_batch(std::move(slice));
  }
  fleet.finish();

  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto snap = fleet.twin(i).snapshot();
    EXPECT_EQ(snap.records_in, 100 * (i + 1)) << i;
    // The labeled counter is the twin's own — byte-for-byte the value
    // its snapshot reports, untouched by the other twins' replays.
    EXPECT_EQ(obs::metrics().counter_value(
                  twin_series("stream.records_in", StreamFleet::twin_name(i))),
              snap.records_in)
        << i;
  }
  EXPECT_TRUE(fleet.healthy());
}

TEST(FleetE2E, FleetEndpointAndByTwinQueriesMatchSnapshots) {
  StreamFleet fleet(fleet_config(2));

  // Baseline scrape after construction: every twin-labeled series
  // exists at zero before any traffic.
  obs::tsdb().scrape_once(kT0);

  auto records = sim::build_replay(trace());
  const std::size_t half = records.size() / 2;
  std::vector<StreamRecord> head(
      std::make_move_iterator(records.begin()),
      std::make_move_iterator(records.begin() + half));
  std::vector<StreamRecord> tail(
      std::make_move_iterator(records.begin() + half),
      std::make_move_iterator(records.end()));
  fleet.twin(0).push_batch(std::move(head));
  fleet.twin(1).push_batch(std::move(tail));
  fleet.finish();
  obs::tsdb().scrape_once(kT0 + 60'000);

  const auto snap0 = fleet.twin(0).snapshot();
  const auto snap1 = fleet.twin(1).snapshot();
  ASSERT_GT(snap0.records_in, 0u);
  ASSERT_GT(snap1.records_in, 0u);

  // sum by (twin) over the shared store: one output series per twin,
  // each reproducing that twin's own ingest accounting exactly.
  const auto q = obs::parse_tsdb_query(
      "sum by (twin) (increase(stream.records_in{twin=~\"*\"}[1m]))");
  const auto result = obs::eval_tsdb_query(obs::tsdb(), q, kT0 + 60'000,
                                           kT0 + 60'000, 60'000);
  // One output group per twin. A direct (non-ctest) run shares the
  // process-wide registry with the other fleet tests, so twins they
  // registered may add zero-increase groups; this fleet's two twins
  // must be present and exact either way.
  ASSERT_GE(result.series.size(), 2u);
  std::size_t matched = 0;
  for (const auto& series : result.series) {
    const bool is_t0 =
        series.name.find("{twin=\"t0\"}") != std::string::npos;
    const bool is_t1 =
        series.name.find("{twin=\"t1\"}") != std::string::npos;
    if (!is_t0 && !is_t1) continue;
    ++matched;
    ASSERT_EQ(series.points.size(), 1u) << series.name;
    const auto expected = is_t0 ? snap0.records_in : snap1.records_in;
    EXPECT_DOUBLE_EQ(series.points[0].value,
                     static_cast<double>(expected))
        << series.name;
  }
  EXPECT_EQ(matched, 2u);

  // Per-twin failure-rate gauges answer exact-match selectors.
  for (const char* twin : {"t0", "t1"}) {
    const auto rate_q = obs::parse_tsdb_query(
        "value(stream.window.failure_rate{twin=\"" + std::string(twin) +
        "\"})");
    const auto rate = obs::eval_tsdb_query(obs::tsdb(), rate_q,
                                           kT0 + 60'000, kT0 + 60'000, 1000);
    ASSERT_EQ(rate.series.size(), 1u) << twin;
    ASSERT_EQ(rate.series[0].points.size(), 1u) << twin;
    EXPECT_DOUBLE_EQ(
        rate.series[0].points[0].value,
        obs::metrics()
            .gauge(twin_series("stream.window.failure_rate", twin))
            .value())
        << twin;
  }

  // GET /fleet: 404 with a pointed message until a fleet is attached,
  // then the per-twin rollup whose fields match the snapshots exactly.
  obs::TelemetryServer server;
  server.start();
  const std::uint16_t port = server.port();
  const obs::HttpResponse missing = obs::http_get(port, "/fleet");
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("no fleet attached"), std::string::npos);

  server.set_fleet_handler([&fleet] { return fleet.fleet_json(); });
  const obs::HttpResponse r = obs::http_get(port, "/fleet");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("application/json"), std::string::npos);
  EXPECT_NE(r.body.find("\"name\":\"t0\""), std::string::npos) << r.body;
  EXPECT_NE(r.body.find("\"name\":\"t1\""), std::string::npos);
  EXPECT_NE(r.body.find("\"records_in\":" +
                        std::to_string(snap0.records_in)),
            std::string::npos)
      << r.body;
  EXPECT_NE(r.body.find("\"records_in\":" +
                        std::to_string(snap1.records_in)),
            std::string::npos);
  EXPECT_NE(r.body.find("\"window_failure_rate\":" +
                        obs::json_number(snap0.window_failure_rate)),
            std::string::npos)
      << r.body;
  EXPECT_NE(r.body.find("\"twin_count\":2"), std::string::npos);
  EXPECT_NE(r.body.find("\"healthy_twins\":2"), std::string::npos);
  EXPECT_NE(r.body.find(
                "\"records_in\":" +
                std::to_string(snap0.records_in + snap1.records_in)),
            std::string::npos)
      << r.body;
  EXPECT_NE(r.body.find("\"top_users_by_failures\":["), std::string::npos);

  // The merged heavy-hitter sketch covers the whole fleet's weight.
  const auto merged = fleet.merged_users_by_failures();
  EXPECT_EQ(merged.total_weight(),
            fleet.twin(0).users_by_failures_sketch().total_weight() +
                fleet.twin(1).users_by_failures_sketch().total_weight());
  server.stop();
}

TEST(FleetAlerts, StalledTwinFiresOnlyItsOwnGroupAndHealth) {
  StreamFleet fleet(fleet_config(2));
  obs::AlertEngine engine(&obs::metrics());
  engine.set_rules(obs::parse_alert_rules(
      "fleet-stall: value(stream.stalled_shards{twin=~\"*\"}) > 0\n"));

  engine.evaluate_now();
  EXPECT_EQ(engine.firing(), 0u);
  // One group per twin, up front. (>= because a direct non-ctest run
  // shares the registry with the other fleet tests' twins.)
  ASSERT_GE(engine.status().size(), 2u);

  obs::TelemetryServer server;
  server.set_health_handler([&fleet] { return fleet.healthy(); });
  server.start();
  EXPECT_EQ(obs::http_get(server.port(), "/healthz").status, 200);

  // Pause one shard of twin 1 and feed it a bounded slice: its queue
  // stays non-empty while the processed counter freezes, which is what
  // the watchdog flags. Twin 0 keeps replaying, unaffected.
  auto records = sim::build_replay(trace());
  const std::size_t slice = std::min<std::size_t>(1024, records.size());
  std::vector<StreamRecord> head(records.begin(), records.begin() + slice);
  fleet.twin(1).pause_shard_for_test(0, true);
  fleet.twin(1).push_batch(std::move(head));
  fleet.twin(0).push_batch(std::move(records));

  ASSERT_TRUE(eventually([&] { return !fleet.twin(1).healthy(); }))
      << "watchdog never flagged the paused twin";
  EXPECT_TRUE(fleet.twin(0).healthy());
  EXPECT_FALSE(fleet.healthy());
  EXPECT_EQ(obs::http_get(server.port(), "/healthz").status, 503);

  // Exactly one label group fires: twin 1's. Twin 0's group stays
  // inactive even though both match the same rule selector.
  engine.evaluate_now();
  EXPECT_EQ(engine.firing(), 1u);
  bool saw_t0 = false;
  bool saw_t1 = false;
  for (const auto& s : engine.status()) {
    if (s.series == twin_series("stream.stalled_shards", "t1")) {
      saw_t1 = true;
      EXPECT_EQ(s.state, obs::AlertState::kFiring);
      EXPECT_GE(s.last_value, 1.0);
    } else if (s.series == twin_series("stream.stalled_shards", "t0")) {
      saw_t0 = true;
      EXPECT_EQ(s.state, obs::AlertState::kInactive);
    } else {
      // Other tests' twins in a shared-process run: never firing.
      EXPECT_NE(s.state, obs::AlertState::kFiring) << s.series;
    }
  }
  EXPECT_TRUE(saw_t0);
  EXPECT_TRUE(saw_t1);
  const std::string json = engine.to_json();
  EXPECT_NE(json.find("\"series\":\"stream.stalled_shards{twin=\\\"t1\\\"}\""),
            std::string::npos)
      << json;

  // Release: only twin 1's group transitions (firing -> resolved), the
  // fleet health verdict recovers, and the replay drains cleanly.
  fleet.twin(1).pause_shard_for_test(0, false);
  ASSERT_TRUE(eventually([&] { return fleet.healthy(); }))
      << "watchdog never cleared the released twin";
  EXPECT_EQ(obs::http_get(server.port(), "/healthz").status, 200);
  engine.evaluate_now();
  EXPECT_EQ(engine.firing(), 0u);
  for (const auto& s : engine.status()) {
    if (s.series == twin_series("stream.stalled_shards", "t1"))
      EXPECT_EQ(s.state, obs::AlertState::kResolved);
    else if (s.series == twin_series("stream.stalled_shards", "t0"))
      EXPECT_EQ(s.state, obs::AlertState::kInactive);
  }
  fleet.finish();
  server.stop();
}

}  // namespace
}  // namespace failmine::stream
