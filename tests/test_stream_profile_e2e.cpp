// End-to-end test of live profiling: a replay loops through the
// streaming pipeline while GET /profile on the telemetry server runs a
// timed capture over a raw socket. The folded output must carry the
// pipeline's thread names ("fm.shard<i>"), the span attribution must
// list the stream.* hot-loop spans, a concurrent capture request gets
// 409, and fmt validation answers 400.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/profile.hpp"
#include "obs/serve.hpp"
#include "obs/trace.hpp"
#include "sim/replay.hpp"
#include "sim/simulator.hpp"
#include "stream/pipeline.hpp"

namespace failmine::stream {
namespace {

const sim::SimResult& trace() {
  static const sim::SimResult result = [] {
    sim::SimConfig config = sim::SimConfig::test_scale();
    config.scale = 0.004;
    return sim::simulate(config);
  }();
  return result;
}

StreamConfig profile_config() {
  StreamConfig config;
  config.shard_count = 2;
  config.queue_capacity = 1 << 13;
  config.max_lateness_seconds = 0;
  config.watchdog_grace_ms = 0;  // no watchdog noise in CPU profiles
  return config;
}

/// Feeds time-shifted copies of the replay into the pipeline in a loop,
/// so the shard/router threads burn CPU for as long as a capture needs.
/// Each pass shifts event time forward past the previous pass, keeping
/// the watermark monotone under max_lateness 0.
class ReplayFeeder {
 public:
  explicit ReplayFeeder(StreamPipeline& pipeline)
      : pipeline_(pipeline), thread_([this] { run(); }) {}

  ~ReplayFeeder() { stop(); }

  void stop() {
    stop_.store(true, std::memory_order_relaxed);
    // finish() closes the ingest ring, which unblocks a feeder stuck in
    // push_batch against full queues.
    pipeline_.finish();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void run() {
    const std::vector<StreamRecord> base = sim::build_replay(trace());
    ASSERT_FALSE(base.empty());
    std::int64_t last = 0;
    for (const StreamRecord& record : base)
      last = std::max<std::int64_t>(last, record.time);
    std::int64_t shift = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
      std::vector<StreamRecord> batch;
      batch.reserve(base.size());
      for (const StreamRecord& record : base) {
        StreamRecord copy = record;
        copy.time += shift;
        batch.push_back(std::move(copy));
      }
      // push_batch returning less than offered means the ring closed.
      if (pipeline_.push_batch(std::move(batch)) < base.size()) return;
      shift += last + 1;
    }
  }

  StreamPipeline& pipeline_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

TEST(StreamProfileE2E, LiveCaptureCarriesShardThreadsAndStreamSpans) {
  StreamPipeline pipeline(profile_config());
  obs::TelemetryServer server;
  server.start();
  const std::uint16_t port = server.port();
  ASSERT_GT(port, 0);
  {
    ReplayFeeder feeder(pipeline);
    // Give the workers a moment to start chewing before sampling.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    const obs::HttpResponse folded =
        obs::http_get(port, "/profile?seconds=0.5&hz=997&fmt=folded");
    ASSERT_EQ(folded.status, 200);
    ASSERT_FALSE(folded.body.empty());
    EXPECT_NE(folded.body.find("fm.shard"), std::string::npos)
        << folded.body.substr(0, 2000);
    EXPECT_NE(folded.body.find("span:stream."), std::string::npos)
        << folded.body.substr(0, 2000);

    const obs::HttpResponse json =
        obs::http_get(port, "/profile?seconds=0.5&hz=997&fmt=json");
    ASSERT_EQ(json.status, 200);
    EXPECT_EQ(json.body.front(), '{');
    EXPECT_EQ(json.body.back(), '}');
    EXPECT_NE(json.body.find("\"spans\":["), std::string::npos);
    EXPECT_NE(json.body.find("stream."), std::string::npos)
        << json.body.substr(0, 2000);
    feeder.stop();
  }
  // The self-metrics advanced and are visible on /metrics.
  const obs::HttpResponse metrics = obs::http_get(port, "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("obs_profile_samples"), std::string::npos);
  EXPECT_NE(metrics.body.find("obs_serve_requests{path=\"/profile\"} 2"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("obs_serve_latency_us_bucket"),
            std::string::npos);
  server.stop();
}

TEST(StreamProfileE2E, ConcurrentCaptureGets409) {
  obs::TelemetryServer server;
  server.start();
  const std::uint16_t port = server.port();

  // First capture holds the slot for ~1.5 s on one handler thread; the
  // second request races it on the other handler (pool size 2).
  std::thread long_capture([port] {
    const obs::HttpResponse first =
        obs::http_get(port, "/profile?seconds=1.5&hz=99");
    EXPECT_EQ(first.status, 200);
  });
  // The profiler flips to running as the first handler starts; poll for
  // it rather than assuming scheduling order.
  bool running = false;
  for (int i = 0; i < 200 && !running; ++i) {
    running = obs::Profiler::instance().running();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(running) << "first capture never started";

  const obs::HttpResponse second = obs::http_get(port, "/profile?seconds=1");
  EXPECT_EQ(second.status, 409);
  EXPECT_EQ(second.body, "profiler busy\n");

  long_capture.join();
  server.stop();
}

TEST(StreamProfileE2E, BadFormatRejected) {
  obs::TelemetryServer server;
  server.start();
  const obs::HttpResponse response =
      obs::http_get(server.port(), "/profile?fmt=xml");
  EXPECT_EQ(response.status, 400);
  EXPECT_FALSE(obs::Profiler::instance().running())
      << "a rejected request must not leak a capture";
  server.stop();
}

}  // namespace
}  // namespace failmine::stream
