// Unit tests for core/mtti.

#include "core/mtti.hpp"

#include <gtest/gtest.h>

#include "raslog/message_catalog.hpp"
#include "util/error.hpp"

namespace failmine::core {
namespace {

EventCluster cluster_at(util::UnixSeconds t) {
  EventCluster c;
  c.first_time = t;
  c.last_time = t;
  c.member_count = 1;
  return c;
}

TEST(Mtti, SpanOverCount) {
  const std::vector<EventCluster> clusters = {
      cluster_at(86400), cluster_at(3 * 86400), cluster_at(6 * 86400)};
  const MttiResult r = compute_mtti(clusters, 0, 10 * 86400);
  EXPECT_EQ(r.interruptions, 3u);
  EXPECT_DOUBLE_EQ(r.span_days, 10.0);
  EXPECT_NEAR(r.mtti_days, 10.0 / 3.0, 1e-12);
}

TEST(Mtti, IntervalsAreConsecutiveGaps) {
  const std::vector<EventCluster> clusters = {
      cluster_at(0), cluster_at(86400), cluster_at(4 * 86400)};
  const MttiResult r = compute_mtti(clusters, 0, 5 * 86400);
  ASSERT_EQ(r.intervals_days.size(), 2u);
  EXPECT_DOUBLE_EQ(r.intervals_days[0], 1.0);
  EXPECT_DOUBLE_EQ(r.intervals_days[1], 3.0);
  EXPECT_DOUBLE_EQ(r.mean_interval_days, 2.0);
  EXPECT_DOUBLE_EQ(r.median_interval_days, 2.0);
}

TEST(Mtti, ClustersOutsideWindowExcluded) {
  const std::vector<EventCluster> clusters = {cluster_at(-5), cluster_at(100),
                                              cluster_at(1'000'000'000)};
  const MttiResult r = compute_mtti(clusters, 0, 86400);
  EXPECT_EQ(r.interruptions, 1u);
}

TEST(Mtti, NoInterruptionsIsCensored) {
  const MttiResult r = compute_mtti({}, 0, 7 * 86400);
  EXPECT_EQ(r.interruptions, 0u);
  EXPECT_DOUBLE_EQ(r.mtti_days, 7.0);
}

TEST(Mtti, EmptyWindowRejected) {
  EXPECT_THROW(compute_mtti({}, 100, 100), failmine::DomainError);
}

raslog::RasEvent fatal_at(util::UnixSeconds t, const char* loc) {
  raslog::RasEvent e;
  e.timestamp = t;
  e.message_id = "00010005";
  const auto& def = raslog::message_by_id("00010005");
  e.severity = def.severity;
  e.component = def.component;
  e.category = def.category;
  e.location =
      topology::Location::parse(loc, topology::MachineConfig::mira());
  return e;
}

TEST(Mtti, FilteredVsRawShowTheFilteringEffect) {
  // Burst of 10 fatals in one minute -> raw MTTI tiny, filtered = 1 event.
  std::vector<raslog::RasEvent> events;
  for (int i = 0; i < 10; ++i)
    events.push_back(fatal_at(1000 + i * 6, "R00-M0-N00-J00"));
  const raslog::RasLog log(std::move(events));

  const MttiResult raw = raw_mtti(log, raslog::Severity::kFatal, 0, 10 * 86400);
  EXPECT_EQ(raw.interruptions, 10u);

  const FilteredMtti filtered =
      filtered_mtti(log, FilterConfig{}, 0, 10 * 86400);
  EXPECT_EQ(filtered.mtti.interruptions, 1u);
  EXPECT_DOUBLE_EQ(filtered.mtti.mtti_days, 10.0);
  EXPECT_DOUBLE_EQ(raw.mtti_days * 10.0, filtered.mtti.mtti_days);
}

TEST(Mtti, RawCountsOnlyRequestedSeverity) {
  std::vector<raslog::RasEvent> events = {fatal_at(10, "R00-M0-N00-J00")};
  events[0].severity = raslog::Severity::kWarn;
  const raslog::RasLog log(std::move(events));
  EXPECT_EQ(raw_mtti(log, raslog::Severity::kFatal, 0, 86400).interruptions, 0u);
  EXPECT_EQ(raw_mtti(log, raslog::Severity::kWarn, 0, 86400).interruptions, 1u);
}

}  // namespace
}  // namespace failmine::core
