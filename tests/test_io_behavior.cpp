// Unit tests for analysis/io_behavior.

#include "analysis/io_behavior.hpp"

#include <gtest/gtest.h>

namespace failmine::analysis {
namespace {

joblog::JobRecord make_job(std::uint64_t id, bool failed) {
  joblog::JobRecord j;
  j.job_id = id;
  j.user_id = 1;
  j.project_id = 1;
  j.queue = "q";
  j.submit_time = 0;
  j.start_time = 0;
  j.end_time = 3600;
  j.nodes_used = 512;
  j.task_count = 1;
  j.requested_walltime = 7200;
  if (failed) {
    j.exit_class = joblog::ExitClass::kUserAppError;
    j.exit_code = 1;
  }
  return j;
}

iolog::IoRecord make_io(std::uint64_t job, std::uint64_t read,
                        std::uint64_t write) {
  iolog::IoRecord r;
  r.job_id = job;
  r.bytes_read = read;
  r.bytes_written = write;
  r.files_accessed = 1;
  r.ranks_doing_io = 1;
  return r;
}

TEST(CompareIo, SplitsPopulationsAndCoverage) {
  const joblog::JobLog jobs({make_job(1, false), make_job(2, false),
                             make_job(3, true), make_job(4, true)});
  // Only jobs 1 and 3 have Darshan records.
  const iolog::IoLog io({make_io(1, 100, 1000), make_io(3, 100, 400)});
  const IoComparison c = compare_io(jobs, io);

  EXPECT_EQ(c.successful.jobs_total, 2u);
  EXPECT_EQ(c.successful.jobs_covered, 1u);
  EXPECT_DOUBLE_EQ(c.successful.coverage, 0.5);
  EXPECT_DOUBLE_EQ(c.successful.median_write_bytes, 1000.0);

  EXPECT_EQ(c.failed.jobs_total, 2u);
  EXPECT_DOUBLE_EQ(c.failed.median_write_bytes, 400.0);
  EXPECT_DOUBLE_EQ(c.write_median_ratio(), 0.4);
}

TEST(CompareIo, EmptyPopulationsAreZeroed) {
  const joblog::JobLog jobs({make_job(1, false)});
  const iolog::IoLog io;
  const IoComparison c = compare_io(jobs, io);
  EXPECT_EQ(c.successful.jobs_covered, 0u);
  EXPECT_DOUBLE_EQ(c.successful.median_write_bytes, 0.0);
  EXPECT_EQ(c.failed.jobs_total, 0u);
  EXPECT_DOUBLE_EQ(c.write_median_ratio(), 0.0);
}

TEST(WriteBytesSample, SelectsPopulation) {
  const joblog::JobLog jobs({make_job(1, false), make_job(2, true)});
  const iolog::IoLog io({make_io(1, 0, 111), make_io(2, 0, 222)});
  EXPECT_EQ(write_bytes_sample(jobs, io, false),
            (std::vector<double>{111.0}));
  EXPECT_EQ(write_bytes_sample(jobs, io, true),
            (std::vector<double>{222.0}));
}

TEST(CompareIo, TotalsAccumulate) {
  const joblog::JobLog jobs({make_job(1, false), make_job(2, false)});
  const iolog::IoLog io({make_io(1, 10, 20), make_io(2, 30, 40)});
  const IoComparison c = compare_io(jobs, io);
  EXPECT_DOUBLE_EQ(c.successful.total_read_bytes, 40.0);
  EXPECT_DOUBLE_EQ(c.successful.total_write_bytes, 60.0);
  EXPECT_DOUBLE_EQ(c.successful.mean_write_bytes, 30.0);
}

}  // namespace
}  // namespace failmine::analysis
