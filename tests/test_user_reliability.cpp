// Unit + integration tests for core/user_reliability.

#include "core/user_reliability.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace failmine::core {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

joblog::JobRecord make_job(std::uint64_t id, std::uint32_t user,
                           std::uint32_t nodes, std::int64_t runtime,
                           bool system_killed) {
  joblog::JobRecord j;
  j.job_id = id;
  j.user_id = user;
  j.project_id = 1;
  j.queue = "q";
  j.submit_time = 0;
  j.start_time = 0;
  j.end_time = runtime;
  j.nodes_used = nodes;
  j.task_count = 1;
  j.requested_walltime = runtime * 2;
  if (system_killed) {
    j.exit_class = joblog::ExitClass::kSystemHardware;
    j.exit_code = 139;
    j.exit_signal = 7;
  }
  return j;
}

TEST(UserReliability, HandComputed) {
  // User 1: two jobs, one system-killed; user 2: one clean job.
  const joblog::JobLog jobs({
      make_job(1, 1, 512, util::kSecondsPerDay, false),   // 512 node-days
      make_job(2, 1, 512, util::kSecondsPerDay, true),    // 512 node-days
      make_job(3, 2, 1024, util::kSecondsPerDay / 2, false),
  });
  const auto study = user_reliability_study(jobs, kMira);
  ASSERT_EQ(study.users.size(), 2u);
  EXPECT_EQ(study.users_with_kills, 1u);

  // Sorted by exposure: user 1 (1024 node-days) first.
  const auto& u1 = study.users[0];
  EXPECT_EQ(u1.user_id, 1u);
  EXPECT_EQ(u1.jobs, 2u);
  EXPECT_EQ(u1.system_kills, 1u);
  EXPECT_NEAR(u1.node_days, 1024.0, 1e-9);
  EXPECT_NEAR(u1.node_days_between_kills, 1024.0, 1e-9);
  EXPECT_NEAR(u1.loss_fraction(), 0.5, 1e-12);

  const auto& u2 = study.users[1];
  EXPECT_EQ(u2.system_kills, 0u);
  EXPECT_TRUE(std::isinf(u2.node_days_between_kills));
  EXPECT_DOUBLE_EQ(u2.loss_fraction(), 0.0);

  // Machine-wide: 1536 node-days / 1 kill.
  EXPECT_NEAR(study.machine_node_days_per_kill, 1536.0, 1e-9);
}

TEST(UserReliability, EmptyLogRejected) {
  EXPECT_THROW(user_reliability_study(joblog::JobLog(), kMira),
               failmine::DomainError);
}

TEST(UserReliability, ExposureKillCorrelationOnSimulatedTrace) {
  // At bench-ish scale kills follow exposure by construction of the
  // hazard model; the per-user rank correlation should be clearly
  // positive.
  sim::SimConfig config = sim::SimConfig::test_scale();
  config.scale = 0.05;
  const auto trace = sim::simulate(config);
  const auto study = user_reliability_study(trace.job_log, config.machine);
  EXPECT_GT(study.users.size(), 100u);
  EXPECT_GT(study.users_with_kills, 3u);
  EXPECT_GT(study.exposure_kill_correlation, 0.1);
  EXPECT_GT(study.total_lost_core_hours, 0.0);
  // Exposure ordering is respected.
  for (std::size_t i = 1; i < study.users.size(); ++i)
    EXPECT_GE(study.users[i - 1].node_days, study.users[i].node_days);
}

TEST(UserReliability, NoKillsGivesZeroCorrelationAndInfMachineRate) {
  const joblog::JobLog jobs({make_job(1, 1, 512, 100, false),
                             make_job(2, 2, 512, 200, false),
                             make_job(3, 3, 512, 300, false)});
  const auto study = user_reliability_study(jobs, kMira);
  EXPECT_EQ(study.users_with_kills, 0u);
  EXPECT_DOUBLE_EQ(study.exposure_kill_correlation, 0.0);
  EXPECT_TRUE(std::isinf(study.machine_node_days_per_kill));
}

}  // namespace
}  // namespace failmine::core
