// Row vs columnar parity: the columnar analyses and loaders must be
// bit-exact against the row path — same counts, same f64 sums to the
// last bit, same rejected-row diagnostics, stable dictionary codes for
// any ingest thread count — on a simulated Mira trace (CSV round trip)
// and on a seeded 1M-row synthetic stream (in-memory build).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/ras_breakdown.hpp"
#include "analysis/temporal.hpp"
#include "analysis/user_stats.hpp"
#include "columnar/analyses.hpp"
#include "columnar/builder.hpp"
#include "columnar/engine.hpp"
#include "columnar/load.hpp"
#include "core/joint_analyzer.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/synthetic.hpp"
#include "util/error.hpp"

namespace failmine {
namespace {

void expect_same_breakdown(const core::ExitBreakdown& row,
                           const core::ExitBreakdown& col) {
  EXPECT_EQ(row.total_jobs, col.total_jobs);
  EXPECT_EQ(row.total_failures, col.total_failures);
  EXPECT_EQ(row.user_caused_share, col.user_caused_share);
  EXPECT_EQ(row.system_caused_share, col.system_caused_share);
  ASSERT_EQ(row.rows.size(), col.rows.size());
  for (std::size_t i = 0; i < row.rows.size(); ++i) {
    EXPECT_EQ(row.rows[i].exit_class, col.rows[i].exit_class);
    EXPECT_EQ(row.rows[i].jobs, col.rows[i].jobs);
    EXPECT_EQ(row.rows[i].core_hours, col.rows[i].core_hours);  // bit-exact
    EXPECT_EQ(row.rows[i].share_of_jobs, col.rows[i].share_of_jobs);
    EXPECT_EQ(row.rows[i].share_of_failures, col.rows[i].share_of_failures);
  }
}

void expect_same_groups(const std::vector<analysis::GroupStats>& row,
                        const std::vector<analysis::GroupStats>& col) {
  ASSERT_EQ(row.size(), col.size());
  for (std::size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(row[i].group_id, col[i].group_id) << "group " << i;
    EXPECT_EQ(row[i].jobs, col[i].jobs) << "group " << i;
    EXPECT_EQ(row[i].failures, col[i].failures) << "group " << i;
    EXPECT_EQ(row[i].user_caused_failures, col[i].user_caused_failures);
    EXPECT_EQ(row[i].system_caused_failures, col[i].system_caused_failures);
    EXPECT_EQ(row[i].core_hours, col[i].core_hours) << "group " << i;
    EXPECT_EQ(row[i].failed_core_hours, col[i].failed_core_hours)
        << "group " << i;
  }
}

class ColumnarParity : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(
        (std::filesystem::temp_directory_path() /
         ("failmine_columnar_parity_" + std::to_string(::getpid())))
            .string());
    std::filesystem::create_directories(*dir_);
    sim::SimConfig config = sim::SimConfig::test_scale();
    config.scale = 0.002;
    trace_ = new sim::SimResult(sim::simulate(config));
    machine_ = new topology::MachineConfig(config.machine);
    origin_ = config.observation_start;
    sim::write_dataset(*trace_, *dir_);
    columnar_ = new columnar::ColumnarDataset(
        columnar::load_dataset(*dir_, *machine_));
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete columnar_;
    delete trace_;
    delete machine_;
    delete dir_;
    columnar_ = nullptr;
    trace_ = nullptr;
    machine_ = nullptr;
    dir_ = nullptr;
  }

  static std::string path(const char* name) { return *dir_ + "/" + name; }

  static core::JointAnalyzer analyzer() {
    return core::JointAnalyzer(trace_->job_log, trace_->task_log,
                               trace_->ras_log, trace_->io_log, *machine_);
  }

  static std::string* dir_;
  static sim::SimResult* trace_;
  static topology::MachineConfig* machine_;
  static columnar::ColumnarDataset* columnar_;
  static util::UnixSeconds origin_;
};

std::string* ColumnarParity::dir_ = nullptr;
sim::SimResult* ColumnarParity::trace_ = nullptr;
topology::MachineConfig* ColumnarParity::machine_ = nullptr;
columnar::ColumnarDataset* ColumnarParity::columnar_ = nullptr;
util::UnixSeconds ColumnarParity::origin_ = 0;

TEST_F(ColumnarParity, LoadRoundTripsEveryTable) {
  // Parity target is the row-path CSV load: the I/O doubles are printed
  // at fixed precision by write_csv, so the in-memory trace is not the
  // reference — what read_csv reconstructs is.
  EXPECT_EQ(columnar_->jobs.to_records(), trace_->job_log.jobs());
  EXPECT_EQ(columnar_->ras.to_records(), trace_->ras_log.events());
  EXPECT_EQ(columnar_->tasks.to_records(), trace_->task_log.tasks());
  EXPECT_EQ(columnar_->io.to_records(),
            iolog::IoLog::read_csv(path("io.csv")).records());
}

TEST_F(ColumnarParity, DatasetSummaryMatches) {
  const core::DatasetSummary row = analyzer().dataset_summary();
  const core::DatasetSummary col =
      columnar::dataset_summary(*columnar_, *machine_);
  EXPECT_EQ(row.span_days, col.span_days);
  EXPECT_EQ(row.jobs, col.jobs);
  EXPECT_EQ(row.tasks, col.tasks);
  EXPECT_EQ(row.ras_events, col.ras_events);
  EXPECT_EQ(row.ras_by_severity, col.ras_by_severity);
  EXPECT_EQ(row.io_records, col.io_records);
  EXPECT_EQ(row.total_core_hours, col.total_core_hours);  // bit-exact
}

TEST_F(ColumnarParity, ExitBreakdownMatchesBitExactly) {
  expect_same_breakdown(analyzer().exit_breakdown(),
                        columnar::exit_breakdown(columnar_->jobs, *machine_));
}

TEST_F(ColumnarParity, UserAndProjectStatsMatchBitExactly) {
  expect_same_groups(analysis::per_user_stats(trace_->job_log, *machine_),
                     columnar::per_user_stats(columnar_->jobs, *machine_));
  expect_same_groups(analysis::per_project_stats(trace_->job_log, *machine_),
                     columnar::per_project_stats(columnar_->jobs, *machine_));
}

TEST_F(ColumnarParity, RasBreakdownMatches) {
  const analysis::RasBreakdown row = analysis::ras_breakdown(trace_->ras_log);
  const analysis::RasBreakdown col = columnar::ras_breakdown(columnar_->ras);
  EXPECT_EQ(row.total_events, col.total_events);
  EXPECT_EQ(row.by_severity, col.by_severity);
  EXPECT_EQ(row.by_component, col.by_component);
  EXPECT_EQ(row.by_category, col.by_category);
}

TEST_F(ColumnarParity, TemporalProfilesMatch) {
  EXPECT_EQ(analysis::submissions_by_hour(trace_->job_log),
            columnar::submissions_by_hour(columnar_->jobs));
  EXPECT_EQ(analysis::submissions_by_weekday(trace_->job_log),
            columnar::submissions_by_weekday(columnar_->jobs));
  EXPECT_EQ(analysis::failures_by_hour(trace_->job_log),
            columnar::failures_by_hour(columnar_->jobs));
  EXPECT_EQ(analysis::events_by_hour(trace_->ras_log),
            columnar::events_by_hour(columnar_->ras));
  const util::UnixSeconds origin = origin_;
  EXPECT_EQ(analysis::monthly_submissions(trace_->job_log, origin),
            columnar::monthly_submissions(columnar_->jobs, origin));
  EXPECT_EQ(analysis::monthly_failures(trace_->job_log, origin),
            columnar::monthly_failures(columnar_->jobs, origin));
  EXPECT_EQ(analysis::monthly_fatal_events(trace_->ras_log, origin),
            columnar::monthly_fatal_events(columnar_->ras, origin));
}

TEST_F(ColumnarParity, QueryEngineBackendsAgree) {
  const columnar::QueryEngine row(trace_->job_log, trace_->task_log,
                                  trace_->ras_log, trace_->io_log, *machine_);
  const columnar::QueryEngine col(*columnar_, *machine_);
  EXPECT_FALSE(row.is_columnar());
  EXPECT_TRUE(col.is_columnar());
  expect_same_breakdown(row.exit_breakdown(), col.exit_breakdown());
  expect_same_groups(row.per_user_stats(), col.per_user_stats());
  expect_same_groups(row.per_project_stats(), col.per_project_stats());
  EXPECT_EQ(row.dataset_summary().total_core_hours,
            col.dataset_summary().total_core_hours);
  EXPECT_EQ(row.ras_breakdown().by_component, col.ras_breakdown().by_component);
  EXPECT_EQ(row.submissions_by_hour(), col.submissions_by_hour());
  EXPECT_EQ(row.events_by_hour(), col.events_by_hour());
}

TEST_F(ColumnarParity, DictionaryCodesStableAcrossThreadCounts) {
  ingest::LoadOptions serial;
  serial.threads = 1;
  ingest::LoadOptions parallel;
  parallel.threads = 8;
  parallel.min_chunk_bytes = 512;  // force a genuinely multi-chunk plan

  const columnar::JobTable a =
      columnar::load_job_table(path("jobs.csv"), serial);
  const columnar::JobTable b =
      columnar::load_job_table(path("jobs.csv"), parallel);
  EXPECT_EQ(a.queue_dict.names(), b.queue_dict.names());
  EXPECT_EQ(a.queue_code, b.queue_code);

  const columnar::RasTable ra =
      columnar::load_ras_table(path("ras.csv"), *machine_, serial);
  const columnar::RasTable rb =
      columnar::load_ras_table(path("ras.csv"), *machine_, parallel);
  EXPECT_EQ(ra.message_dict.names(), rb.message_dict.names());
  EXPECT_EQ(ra.message_code, rb.message_code);
  EXPECT_EQ(ra.location_dict.names(), rb.location_dict.names());
  EXPECT_EQ(ra.location_code, rb.location_code);
}

TEST_F(ColumnarParity, DictionaryRoundTripsAgainstRowStrings) {
  const std::vector<joblog::JobRecord>& jobs = trace_->job_log.jobs();
  const columnar::JobTable& t = columnar_->jobs;
  ASSERT_EQ(t.rows(), jobs.size());
  for (std::size_t i = 0; i < t.rows(); ++i) {
    const std::string& decoded = t.queue_dict.name(t.queue_code[i]);
    EXPECT_EQ(decoded, jobs[i].queue);
    EXPECT_EQ(*t.queue_dict.find(decoded), t.queue_code[i]);
  }
}

TEST_F(ColumnarParity, CorruptRowFailsLikeRowPathWithSameCounters) {
  const std::string corrupted = *dir_ + "/jobs_corrupted.csv";
  std::filesystem::copy_file(path("jobs.csv"), corrupted,
                             std::filesystem::copy_options::overwrite_existing);
  { std::ofstream(corrupted, std::ios::app) << "999,bad,row\n"; }

  obs::MetricsRegistry& m = obs::metrics();
  std::string row_error;
  std::uint64_t before = m.counter("parse.lines_rejected").value();
  try {
    joblog::JobLog::read_csv(corrupted);
    FAIL() << "row path accepted the corrupt row";
  } catch (const ParseError& e) {
    row_error = e.what();
  }
  const std::uint64_t row_rejected =
      m.counter("parse.lines_rejected").value() - before;
  EXPECT_EQ(row_rejected, 1u);

  before = m.counter("parse.lines_rejected").value();
  try {
    columnar::load_job_table(corrupted);
    FAIL() << "columnar path accepted the corrupt row";
  } catch (const ParseError& e) {
    EXPECT_EQ(std::string(e.what()), row_error);
  }
  EXPECT_EQ(m.counter("parse.lines_rejected").value() - before, row_rejected);
  std::filesystem::remove(corrupted);
}

TEST(ColumnarParityLarge, MillionRowSyntheticStreamMatchesBitExactly) {
  sim::SyntheticJobStreamConfig config;
  config.rows = 1'000'000;
  const topology::MachineConfig machine{};

  std::vector<joblog::JobRecord> rows;
  rows.reserve(config.rows);
  sim::generate_job_stream(
      config, [&](const joblog::JobRecord& j) { rows.push_back(j); });
  columnar::JobTableBuilder b;
  b.reserve(config.rows);
  sim::generate_job_stream(config,
                           [&](const joblog::JobRecord& j) { b.add(j); });
  std::vector<columnar::JobTableBuilder> chunks;
  chunks.push_back(std::move(b));
  const columnar::JobTable table =
      columnar::JobTableBuilder::merge(std::move(chunks));
  ASSERT_EQ(table.rows(), rows.size());

  expect_same_breakdown(core::exit_breakdown(rows, machine),
                        columnar::exit_breakdown(table, machine));
  expect_same_groups(analysis::per_user_stats(rows, machine),
                     columnar::per_user_stats(table, machine));
  expect_same_groups(analysis::per_project_stats(rows, machine),
                     columnar::per_project_stats(table, machine));
}

}  // namespace
}  // namespace failmine
