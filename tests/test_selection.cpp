// Tests for distfit/selection: the model-selection driver must identify
// the generating family (or an equivalent one) on synthetic samples.

#include "distfit/selection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "distfit/fit.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace failmine::distfit {
namespace {

TEST(FamilyNames, RoundTrip) {
  for (Family f : all_families()) {
    EXPECT_EQ(family_from_name(family_name(f)), f);
  }
  EXPECT_THROW(family_from_name("cauchy"), failmine::ParseError);
}

TEST(FamilyNames, AllFamiliesAreDistinct) {
  const auto families = all_families();
  EXPECT_EQ(families.size(), 10u);
  for (std::size_t i = 0; i < families.size(); ++i)
    for (std::size_t j = i + 1; j < families.size(); ++j)
      EXPECT_NE(family_name(families[i]), family_name(families[j]));
}

TEST(FitAll, ProducesRankableMetrics) {
  util::Rng rng(21);
  const auto sample = Weibull(0.8, 50.0).sample_many(rng, 5000);
  const auto fits = fit_all(sample);
  ASSERT_GE(fits.size(), 5u);
  for (const auto& f : fits) {
    EXPECT_TRUE(f.dist != nullptr);
    EXPECT_GT(f.ks.statistic, 0.0);
    EXPECT_LE(f.ks.statistic, 1.0);
    if (std::isfinite(f.log_lik)) {
      // AIC and BIC both derive from the log-likelihood.
      EXPECT_NEAR(f.aic, 2.0 * static_cast<double>(f.dist->param_count()) -
                             2.0 * f.log_lik,
                  1e-9);
    } else {
      // A family can legitimately assign zero density to an extreme
      // sample point; it then loses every likelihood-based ranking.
      EXPECT_TRUE(std::isinf(f.aic));
    }
  }
}

TEST(FitAll, SkipsFamiliesThatRejectTheSample) {
  // A nearly constant positive sample: Pareto's alpha MLE still works
  // (values above min exist) but lognormal/gamma variance paths survive
  // too; use a sample with some negatives to kill all positive-support
  // families but keep normal.
  const std::vector<double> sample = {-1.0, 0.5, 2.0, -0.3, 1.1, 0.9};
  const auto fits = fit_all(sample);
  ASSERT_EQ(fits.size(), 1u);
  EXPECT_EQ(fits[0].family, Family::kNormal);
}

struct SelectionCase {
  const char* true_family;
  // Families that are acceptable winners (nested/near-equivalent shapes).
  std::vector<const char*> accepted;
};

class SelectBestIdentifiesFamily
    : public ::testing::TestWithParam<SelectionCase> {};

std::unique_ptr<Distribution> generator_for(const std::string& name) {
  if (name == "weibull") return std::make_unique<Weibull>(0.7, 2000.0);
  if (name == "pareto") return std::make_unique<Pareto>(120.0, 1.4);
  if (name == "lognormal") return std::make_unique<LogNormal>(6.0, 1.3);
  if (name == "inverse_gaussian")
    return std::make_unique<InverseGaussian>(500.0, 200.0);
  if (name == "erlang") return std::make_unique<Erlang>(2, 0.01);
  if (name == "normal") return std::make_unique<NormalDist>(100.0, 7.0);
  throw failmine::DomainError("no generator for " + name);
}

TEST_P(SelectBestIdentifiesFamily, UnderKsCriterion) {
  const SelectionCase& c = GetParam();
  util::Rng rng(1009);
  const auto sample = generator_for(c.true_family)->sample_many(rng, 8000);
  const FitResult best = select_best(sample, Criterion::kKsDistance);
  const std::string got = family_name(best.family);
  bool ok = false;
  for (const char* name : c.accepted) ok = ok || got == name;
  EXPECT_TRUE(ok) << "true=" << c.true_family << " got=" << got
                  << " D=" << best.ks.statistic;
}

INSTANTIATE_TEST_SUITE_P(
    Families, SelectBestIdentifiesFamily,
    ::testing::Values(
        SelectionCase{"weibull", {"weibull"}},
        SelectionCase{"pareto", {"pareto"}},
        SelectionCase{"lognormal", {"lognormal"}},
        // IG and lognormal have very similar shapes at moderate skew.
        SelectionCase{"inverse_gaussian", {"inverse_gaussian", "lognormal"}},
        // Erlang k=2 == Gamma(2); either label is a correct identification.
        SelectionCase{"erlang", {"erlang", "gamma"}},
        SelectionCase{"normal", {"normal"}}),
    [](const auto& info) { return std::string(info.param.true_family); });

TEST(BestFitIndex, CriteriaSelectDifferentWinnersWhenTheyDisagree) {
  std::vector<FitResult> fits;
  {
    FitResult a;
    a.family = Family::kExponential;
    a.log_lik = -100.0;
    a.aic = 202.0;
    a.bic = 205.0;
    a.ks.statistic = 0.05;
    fits.push_back(std::move(a));
  }
  {
    FitResult b;
    b.family = Family::kWeibull;
    b.log_lik = -98.0;
    b.aic = 204.0;
    b.bic = 210.0;
    b.ks.statistic = 0.08;
    fits.push_back(std::move(b));
  }
  EXPECT_EQ(best_fit_index(fits, Criterion::kKsDistance), 0u);
  EXPECT_EQ(best_fit_index(fits, Criterion::kAic), 0u);
  EXPECT_EQ(best_fit_index(fits, Criterion::kLogLikelihood), 1u);
}

TEST(BestFitIndex, EmptyListThrows) {
  std::vector<FitResult> empty;
  EXPECT_THROW(best_fit_index(empty, Criterion::kAic), failmine::DomainError);
}

TEST(SelectBest, ThrowsWhenNothingFits) {
  // Two identical values reject every 2-parameter fitter and exponential
  // still fits; craft a sample that even exponential rejects: empty.
  EXPECT_THROW(select_best(std::vector<double>{}), failmine::DomainError);
}

}  // namespace
}  // namespace failmine::distfit
