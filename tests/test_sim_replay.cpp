// Tests for the time-ordered replay emitter (sim -> stream bridge).

#include "sim/replay.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "util/error.hpp"

namespace failmine::sim {
namespace {

const SimResult& trace() {
  static const SimResult result = [] {
    SimConfig config = SimConfig::test_scale();
    config.scale = 0.003;
    return simulate(config);
  }();
  return result;
}

TEST(Replay, EmitsEveryRecordExactlyOnce) {
  const auto records = build_replay(trace());
  EXPECT_EQ(records.size(), trace().job_log.size() + trace().task_log.size() +
                                trace().ras_log.size() + trace().io_log.size());
  std::array<std::size_t, 4> by_source{};
  for (const auto& r : records)
    ++by_source[static_cast<std::size_t>(r.source())];
  EXPECT_EQ(by_source[0], trace().job_log.size());
  EXPECT_EQ(by_source[1], trace().task_log.size());
  EXPECT_EQ(by_source[2], trace().ras_log.size());
  EXPECT_EQ(by_source[3], trace().io_log.size());
}

TEST(Replay, TimeOrderedWithDenseAscendingSequences) {
  const auto records = build_replay(trace());
  ASSERT_FALSE(records.empty());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].sequence, i);
    if (i > 0) EXPECT_GE(records[i].time, records[i - 1].time);
  }
}

TEST(Replay, EventTimesAreKnowabilityTimes) {
  // Jobs and tasks surface at end_time; RAS at its timestamp; I/O
  // records when their owning job ends.
  std::unordered_map<std::uint64_t, util::UnixSeconds> job_end;
  for (const auto& job : trace().job_log.jobs())
    job_end[job.job_id] = job.end_time;
  for (const auto& r : build_replay(trace())) {
    switch (r.source()) {
      case stream::RecordSource::kJob:
        EXPECT_EQ(r.time, std::get<joblog::JobRecord>(r.payload).end_time);
        break;
      case stream::RecordSource::kTask:
        EXPECT_EQ(r.time, std::get<tasklog::TaskRecord>(r.payload).end_time);
        break;
      case stream::RecordSource::kRas:
        EXPECT_EQ(r.time, std::get<raslog::RasEvent>(r.payload).timestamp);
        break;
      case stream::RecordSource::kIo:
        EXPECT_EQ(r.time,
                  job_end.at(std::get<iolog::IoRecord>(r.payload).job_id));
        break;
    }
  }
}

TEST(Replay, ShuffleIsDeterministicBoundedAndComplete) {
  const auto reference = build_replay(trace());
  const auto a = shuffled_replay(trace(), 600, 42);
  const auto b = shuffled_replay(trace(), 600, 42);
  const auto c = shuffled_replay(trace(), 600, 43);

  ASSERT_EQ(a.size(), reference.size());
  // Same seed -> identical order; different seed -> different order.
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i].sequence, b[i].sequence);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].sequence != c[i].sequence) {
      differs = true;
      break;
    }
  EXPECT_TRUE(differs);

  // Every record is still present, with its original time and sequence.
  std::vector<std::uint64_t> seqs;
  for (const auto& r : a) seqs.push_back(r.sequence);
  std::sort(seqs.begin(), seqs.end());
  for (std::size_t i = 0; i < seqs.size(); ++i) ASSERT_EQ(seqs[i], i);

  // Displacement in event time is bounded: a record at position i can
  // only have overtaken records within 2*skew of its own time.
  for (std::size_t i = 1; i < a.size(); ++i)
    EXPECT_LE(a[i - 1].time - a[i].time, 2 * 600);
}

TEST(Replay, ZeroSkewShuffleIsIdentity) {
  const auto reference = build_replay(trace());
  const auto shuffled = shuffled_replay(trace(), 0, 7);
  ASSERT_EQ(shuffled.size(), reference.size());
  for (std::size_t i = 0; i < shuffled.size(); ++i)
    EXPECT_EQ(shuffled[i].sequence, reference[i].sequence);
}

TEST(Replay, NegativeSkewThrows) {
  EXPECT_THROW(shuffled_replay(trace(), -1, 0), DomainError);
}

}  // namespace
}  // namespace failmine::sim
