// End-to-end dataset round trip: simulate -> write four CSV logs ->
// reload -> identical analysis results.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/joint_analyzer.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace failmine::sim {
namespace {

class DatasetRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("failmine_dataset_" + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(DatasetRoundTrip, AllFourLogsSurviveCsv) {
  SimConfig config = SimConfig::test_scale();
  config.scale = 0.002;  // keep the file I/O fast
  const SimResult original = simulate(config);
  write_dataset(original, dir_);

  for (const char* name : {"ras.csv", "jobs.csv", "tasks.csv", "io.csv"})
    EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir_) / name))
        << name;

  const SimResult loaded = load_dataset(dir_, config.machine);
  ASSERT_EQ(loaded.job_log.size(), original.job_log.size());
  ASSERT_EQ(loaded.task_log.size(), original.task_log.size());
  ASSERT_EQ(loaded.ras_log.size(), original.ras_log.size());
  ASSERT_EQ(loaded.io_log.size(), original.io_log.size());

  for (std::size_t i = 0; i < loaded.job_log.size(); ++i)
    EXPECT_EQ(loaded.job_log.jobs()[i], original.job_log.jobs()[i]);
  for (std::size_t i = 0; i < loaded.ras_log.size(); i += 17)
    EXPECT_EQ(loaded.ras_log.events()[i], original.ras_log.events()[i]);
  for (std::size_t i = 0; i < loaded.task_log.size(); i += 7)
    EXPECT_EQ(loaded.task_log.tasks()[i], original.task_log.tasks()[i]);
  for (std::size_t i = 0; i < loaded.io_log.size(); i += 5) {
    const auto& a = loaded.io_log.records()[i];
    const auto& b = original.io_log.records()[i];
    EXPECT_EQ(a.job_id, b.job_id);
    EXPECT_EQ(a.bytes_read, b.bytes_read);
    EXPECT_EQ(a.bytes_written, b.bytes_written);
    EXPECT_EQ(a.files_accessed, b.files_accessed);
    EXPECT_EQ(a.ranks_doing_io, b.ranks_doing_io);
    // The CSV schema stores I/O times at millisecond precision.
    EXPECT_NEAR(a.read_time_seconds, b.read_time_seconds, 5e-4);
    EXPECT_NEAR(a.write_time_seconds, b.write_time_seconds, 5e-4);
  }
}

TEST_F(DatasetRoundTrip, AnalysesAgreeOnLoadedData) {
  SimConfig config = SimConfig::test_scale();
  config.scale = 0.002;
  const SimResult original = simulate(config);
  write_dataset(original, dir_);
  const SimResult loaded = load_dataset(dir_, config.machine);

  const core::JointAnalyzer a(original.job_log, original.task_log,
                              original.ras_log, original.io_log,
                              config.machine);
  const core::JointAnalyzer b(loaded.job_log, loaded.task_log, loaded.ras_log,
                              loaded.io_log, config.machine);
  const auto ba = a.exit_breakdown();
  const auto bb = b.exit_breakdown();
  EXPECT_EQ(ba.total_failures, bb.total_failures);
  EXPECT_DOUBLE_EQ(ba.user_caused_share, bb.user_caused_share);

  const auto fa = a.interruption_analysis(core::FilterConfig{});
  const auto fb = b.interruption_analysis(core::FilterConfig{});
  EXPECT_EQ(fa.mtti.interruptions, fb.mtti.interruptions);
  EXPECT_DOUBLE_EQ(fa.mtti.mtti_days, fb.mtti.mtti_days);
}

TEST_F(DatasetRoundTrip, MissingFileFailsCleanly) {
  EXPECT_THROW(load_dataset(dir_, topology::MachineConfig::mira()),
               failmine::IoError);
}

}  // namespace
}  // namespace failmine::sim
