// Property tests over every distribution family: CDF monotonicity and
// limits, pdf/cdf consistency (numeric differentiation), quantile-CDF
// inversion, sampling moments, and per-family closed-form spot checks.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>
#include <vector>

#include "distfit/erlang.hpp"
#include "distfit/exponential.hpp"
#include "distfit/gamma_dist.hpp"
#include "distfit/inverse_gaussian.hpp"
#include "distfit/loglogistic.hpp"
#include "distfit/lognormal.hpp"
#include "distfit/normal_dist.hpp"
#include "distfit/pareto.hpp"
#include "distfit/rayleigh.hpp"
#include "distfit/weibull.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace failmine::distfit {
namespace {

std::unique_ptr<Distribution> make_distribution(const std::string& name) {
  if (name == "exponential") return std::make_unique<Exponential>(0.5);
  if (name == "weibull") return std::make_unique<Weibull>(1.6, 3.0);
  if (name == "pareto") return std::make_unique<Pareto>(1.5, 2.5);
  if (name == "lognormal") return std::make_unique<LogNormal>(0.8, 0.6);
  if (name == "gamma") return std::make_unique<GammaDist>(2.5, 1.4);
  if (name == "erlang") return std::make_unique<Erlang>(3, 0.7);
  if (name == "inverse_gaussian")
    return std::make_unique<InverseGaussian>(2.0, 5.0);
  if (name == "normal") return std::make_unique<NormalDist>(1.0, 2.0);
  if (name == "rayleigh") return std::make_unique<Rayleigh>(1.8);
  if (name == "loglogistic") return std::make_unique<LogLogistic>(2.0, 3.5);
  throw failmine::DomainError("unknown test family " + name);
}

class DistributionProperty : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { dist_ = make_distribution(GetParam()); }
  std::unique_ptr<Distribution> dist_;
};

TEST_P(DistributionProperty, NameMatchesParameter) {
  EXPECT_EQ(dist_->name(), GetParam());
}

TEST_P(DistributionProperty, CdfIsMonotoneWithCorrectLimits) {
  const double lo = dist_->support_lower();
  double prev = 0.0;
  for (int i = 0; i <= 200; ++i) {
    const double x = lo + static_cast<double>(i) * 0.25;
    const double f = dist_->cdf(x);
    EXPECT_GE(f, prev - 1e-12) << "x=" << x;
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_NEAR(dist_->cdf(lo + 1e7), 1.0, 1e-6);
}

TEST_P(DistributionProperty, PdfIsDerivativeOfCdf) {
  const double lo = dist_->support_lower();
  for (double x : {lo + 0.5, lo + 1.0, lo + 2.5, lo + 6.0}) {
    const double h = 1e-5 * (1.0 + std::fabs(x));
    const double numeric = (dist_->cdf(x + h) - dist_->cdf(x - h)) / (2.0 * h);
    EXPECT_NEAR(dist_->pdf(x), numeric, 1e-4 * (1.0 + dist_->pdf(x)))
        << "x=" << x;
  }
}

TEST_P(DistributionProperty, QuantileInvertsCdf) {
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = dist_->quantile(p);
    EXPECT_NEAR(dist_->cdf(x), p, 1e-6) << "p=" << p;
  }
  EXPECT_THROW(dist_->quantile(0.0), failmine::DomainError);
  EXPECT_THROW(dist_->quantile(1.0), failmine::DomainError);
}

TEST_P(DistributionProperty, SampleMeanMatchesAnalyticMean) {
  util::Rng rng(12345);
  const std::size_t n = 40000;
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += dist_->sample(rng);
  const double analytic = dist_->mean();
  ASSERT_TRUE(std::isfinite(analytic));
  EXPECT_NEAR(s / static_cast<double>(n), analytic,
              0.05 * std::fabs(analytic) + 0.02);
}

TEST_P(DistributionProperty, SamplesRespectSupport) {
  util::Rng rng(777);
  const double lo = dist_->support_lower();
  for (int i = 0; i < 2000; ++i) EXPECT_GE(dist_->sample(rng), lo - 1e-9);
}

TEST_P(DistributionProperty, LogLikelihoodIsFiniteOnOwnSample) {
  util::Rng rng(31);
  const auto sample = dist_->sample_many(rng, 500);
  EXPECT_TRUE(std::isfinite(dist_->log_likelihood(sample)));
}

TEST_P(DistributionProperty, CloneIsIndependentAndEquivalent) {
  const auto copy = dist_->clone();
  EXPECT_EQ(copy->name(), dist_->name());
  for (double p : {0.2, 0.5, 0.8})
    EXPECT_DOUBLE_EQ(copy->quantile(p), dist_->quantile(p));
}

TEST_P(DistributionProperty, ParamsAreNamedAndCounted) {
  const auto params = dist_->params();
  EXPECT_EQ(params.size(), dist_->param_count());
  for (const auto& p : params) EXPECT_FALSE(p.name.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, DistributionProperty,
    ::testing::Values("exponential", "weibull", "pareto", "lognormal", "gamma",
                      "erlang", "inverse_gaussian", "normal", "rayleigh",
                      "loglogistic"),
    [](const auto& info) { return info.param; });

// ---- Closed-form spot checks ------------------------------------------

TEST(Exponential, KnownValues) {
  const Exponential d(2.0);
  EXPECT_DOUBLE_EQ(d.pdf(0.0), 2.0);
  EXPECT_NEAR(d.cdf(std::log(2.0) / 2.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(d.mean(), 0.5);
  EXPECT_DOUBLE_EQ(d.variance(), 0.25);
  EXPECT_THROW(Exponential(0.0), failmine::DomainError);
}

TEST(Weibull, ShapeOneIsExponential) {
  const Weibull w(1.0, 2.0);
  const Exponential e(0.5);
  for (double x : {0.5, 1.0, 3.0}) {
    EXPECT_NEAR(w.pdf(x), e.pdf(x), 1e-12);
    EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-12);
  }
}

TEST(Pareto, DensityZeroBelowScale) {
  const Pareto p(2.0, 3.0);
  EXPECT_DOUBLE_EQ(p.pdf(1.9), 0.0);
  EXPECT_DOUBLE_EQ(p.cdf(2.0), 0.0);
  EXPECT_DOUBLE_EQ(p.mean(), 3.0);  // alpha*xm/(alpha-1)
}

TEST(Pareto, InfiniteMomentsForSmallAlpha) {
  EXPECT_TRUE(std::isinf(Pareto(1.0, 0.9).mean()));
  EXPECT_TRUE(std::isinf(Pareto(1.0, 1.5).variance()));
}

TEST(Erlang, MatchesGammaWithIntegerShape) {
  const Erlang e(3, 0.5);
  const GammaDist g(3.0, 2.0);
  for (double x : {0.5, 2.0, 8.0}) {
    EXPECT_NEAR(e.pdf(x), g.pdf(x), 1e-10);
    EXPECT_NEAR(e.cdf(x), g.cdf(x), 1e-10);
  }
  EXPECT_THROW(Erlang(0, 1.0), failmine::DomainError);
}

TEST(Rayleigh, IsWeibullShapeTwo) {
  const Rayleigh r(2.0);
  const Weibull w(2.0, 2.0 * std::numbers::sqrt2);
  for (double x : {0.5, 1.5, 4.0}) {
    EXPECT_NEAR(r.cdf(x), w.cdf(x), 1e-12);
  }
}

TEST(InverseGaussian, VarianceFormula) {
  const InverseGaussian d(2.0, 8.0);
  EXPECT_DOUBLE_EQ(d.variance(), 1.0);  // mu^3/lambda
}

TEST(NormalDist, SymmetryAroundMean) {
  const NormalDist d(3.0, 1.5);
  EXPECT_NEAR(d.cdf(3.0), 0.5, 1e-12);
  EXPECT_NEAR(d.pdf(3.0 + 1.0), d.pdf(3.0 - 1.0), 1e-12);
}

TEST(LogNormal, MedianIsExpMu) {
  const LogNormal d(1.2, 0.7);
  EXPECT_NEAR(d.quantile(0.5), std::exp(1.2), 1e-9);
}

}  // namespace
}  // namespace failmine::distfit
