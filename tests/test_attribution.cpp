// Unit tests for core/attribution with hand-built jobs and events.

#include "core/attribution.hpp"

#include <gtest/gtest.h>

#include "raslog/message_catalog.hpp"
#include "util/error.hpp"

namespace failmine::core {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

joblog::JobRecord make_job(std::uint64_t id, util::UnixSeconds start,
                           util::UnixSeconds end, int first_midplane,
                           std::uint32_t nodes = 512) {
  joblog::JobRecord j;
  j.job_id = id;
  j.user_id = static_cast<std::uint32_t>(id % 7);
  j.project_id = 1;
  j.queue = "prod-short";
  j.submit_time = start - 10;
  j.start_time = start;
  j.end_time = end;
  j.nodes_used = nodes;
  j.task_count = 1;
  j.requested_walltime = end - start + 100;
  j.partition_first_midplane = first_midplane;
  return j;
}

raslog::RasEvent make_event(util::UnixSeconds t, const char* location,
                            const char* msg = "00010001") {
  raslog::RasEvent e;
  e.timestamp = t;
  e.message_id = msg;
  const auto& def = raslog::message_by_id(msg);
  e.severity = def.severity;
  e.component = def.component;
  e.category = def.category;
  e.location = topology::Location::parse(location, kMira);
  return e;
}

TEST(Attribution, MatchesEventInsideJobWindowAndPartition) {
  // Job on midplanes 0..1 (R00), active [100, 200].
  const joblog::JobLog jobs({make_job(1, 100, 200, 0, 1024)});
  const AttributionIndex index(jobs, kMira);
  EXPECT_EQ(index.attribute(make_event(150, "R00-M0-N00-J00")), 1u);
  EXPECT_EQ(index.attribute(make_event(150, "R00-M1-N15-J31")), 1u);
  // Outside the time window.
  EXPECT_EQ(index.attribute(make_event(250, "R00-M0-N00-J00")), std::nullopt);
  // Outside the partition.
  EXPECT_EQ(index.attribute(make_event(150, "R01-M0-N00-J00")), std::nullopt);
}

TEST(Attribution, BoundaryTimesAreInclusive) {
  const joblog::JobLog jobs({make_job(1, 100, 200, 0)});
  const AttributionIndex index(jobs, kMira);
  EXPECT_EQ(index.attribute(make_event(100, "R00-M0-N00-J00")), 1u);
  EXPECT_EQ(index.attribute(make_event(200, "R00-M0-N00-J00")), 1u);
  EXPECT_EQ(index.attribute(make_event(99, "R00-M0-N00-J00")), std::nullopt);
}

TEST(Attribution, RackLevelEventMatchesAnyJobOnTheRack) {
  // Job on midplane 1 only (second midplane of rack 0).
  const joblog::JobLog jobs({make_job(1, 100, 200, 1)});
  const AttributionIndex index(jobs, kMira);
  EXPECT_EQ(index.attribute(make_event(150, "R00", "00800001")), 1u);
  EXPECT_EQ(index.attribute(make_event(150, "R01", "00800001")), std::nullopt);
}

TEST(Attribution, PicksSomeCoveringJobWhenAllocationsOverlap) {
  // Two jobs share midplane 0 at the same time (the simulator avoids
  // this but the index must cope with real-world log imperfections).
  const joblog::JobLog jobs(
      {make_job(1, 100, 300, 0), make_job(2, 150, 250, 0)});
  const AttributionIndex index(jobs, kMira);
  const auto hit = index.attribute(make_event(200, "R00-M0-N00-J00"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit == 1u || *hit == 2u);
}

TEST(Attribution, AttributeAllCountsBySeverity) {
  const joblog::JobLog jobs({make_job(1, 100, 200, 0)});
  std::vector<raslog::RasEvent> events = {
      make_event(110, "R00-M0-N00-J00", "00010001"),  // INFO
      make_event(120, "R00-M0-N01-J00", "00010003"),  // WARN
      make_event(130, "R00-M0-N02-J00", "00010005"),  // FATAL
      make_event(140, "R20-M0-N00-J00", "00010005"),  // elsewhere
  };
  const AttributionIndex index(jobs, kMira);
  const auto stats = index.attribute_all(raslog::RasLog(std::move(events)));
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].job_id, 1u);
  EXPECT_EQ(stats[0].info_events, 1u);
  EXPECT_EQ(stats[0].warn_events, 1u);
  EXPECT_EQ(stats[0].fatal_events, 1u);
  EXPECT_EQ(stats[0].total(), 3u);
}

TEST(Attribution, UserCorrelationInputAlignsRows) {
  const joblog::JobLog jobs({make_job(1, 100, 200, 0),    // user 1
                             make_job(2, 300, 400, 2),    // user 2
                             make_job(8, 500, 600, 4)});  // user 1 again
  std::vector<raslog::RasEvent> events = {
      make_event(150, "R00-M0-N00-J00"),  // -> job 1 (user 1)
      make_event(350, "R01-M0-N00-J00"),  // -> job 2 (user 2)
      make_event(550, "R02-M0-N00-J00"),  // -> job 8 (user 1)
  };
  const auto input = user_event_correlation_input(
      jobs, raslog::RasLog(std::move(events)), kMira);
  ASSERT_EQ(input.user_ids.size(), 2u);
  // Rows must be internally consistent.
  double total_events = 0.0, total_jobs = 0.0;
  for (std::size_t i = 0; i < input.user_ids.size(); ++i) {
    total_events += input.events_per_user[i];
    total_jobs += input.jobs_per_user[i];
    if (input.user_ids[i] == 1u) {
      EXPECT_DOUBLE_EQ(input.events_per_user[i], 2.0);
      EXPECT_DOUBLE_EQ(input.jobs_per_user[i], 2.0);
    }
  }
  EXPECT_DOUBLE_EQ(total_events, 3.0);
  EXPECT_DOUBLE_EQ(total_jobs, 3.0);
}

}  // namespace
}  // namespace failmine::core
