// Unit tests for core/lead_time (WARN -> FATAL precursors).

#include "core/lead_time.hpp"

#include <gtest/gtest.h>

#include "raslog/message_catalog.hpp"
#include "util/error.hpp"

namespace failmine::core {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

raslog::RasEvent event_at(util::UnixSeconds t, const char* msg,
                          const char* loc) {
  raslog::RasEvent e;
  e.timestamp = t;
  e.message_id = msg;
  const auto& def = raslog::message_by_id(msg);
  e.severity = def.severity;
  e.component = def.component;
  e.category = def.category;
  e.location = topology::Location::parse(loc, kMira);
  return e;
}

EventCluster cluster_of(const raslog::RasEvent& e) {
  EventCluster c;
  c.representative = e;
  c.first_time = e.timestamp;
  c.last_time = e.timestamp;
  c.member_count = 1;
  return c;
}

TEST(LeadTime, FindsNearestPrecedingWarnOnSameHardware) {
  std::vector<raslog::RasEvent> events = {
      event_at(500, "00010003", "R00-M0-N00-J00"),   // WARN (same midplane)
      event_at(800, "00010004", "R00-M0-N01-J00"),   // WARN (closer in time)
      event_at(1000, "00010005", "R00-M0-N00-J00"),  // FATAL
  };
  const raslog::RasLog log(std::move(events));
  const auto clusters = filter_events(log, FilterConfig{}).clusters;
  ASSERT_EQ(clusters.size(), 1u);
  const auto r = warning_lead_times(log, clusters);
  ASSERT_EQ(r.per_interruption.size(), 1u);
  ASSERT_TRUE(r.per_interruption[0].lead_seconds.has_value());
  EXPECT_EQ(*r.per_interruption[0].lead_seconds, 200);  // latest WARN wins
  EXPECT_EQ(r.per_interruption[0].warn_message_id, "00010004");
  EXPECT_EQ(r.with_precursor, 1u);
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
}

TEST(LeadTime, IgnoresWarnsOnOtherHardware) {
  std::vector<raslog::RasEvent> events = {
      event_at(900, "00010003", "R10-M0-N00-J00"),   // WARN, wrong rack
      event_at(1000, "00010005", "R00-M0-N00-J00"),  // FATAL
  };
  const raslog::RasLog log(std::move(events));
  const auto clusters = filter_events(log, FilterConfig{}).clusters;
  const auto r = warning_lead_times(log, clusters);
  EXPECT_EQ(r.with_precursor, 0u);
  EXPECT_EQ(r.without_precursor, 1u);
  EXPECT_FALSE(r.per_interruption[0].lead_seconds.has_value());
}

TEST(LeadTime, HorizonBoundsTheSearch) {
  std::vector<raslog::RasEvent> events = {
      event_at(100, "00010003", "R00-M0-N00-J00"),      // WARN, too old
      event_at(100000, "00010005", "R00-M0-N00-J00"),   // FATAL
  };
  const raslog::RasLog log(std::move(events));
  const auto clusters = filter_events(log, FilterConfig{}).clusters;
  LeadTimeConfig config;
  config.horizon_seconds = 3600;
  const auto r = warning_lead_times(log, clusters, config);
  EXPECT_EQ(r.with_precursor, 0u);
  LeadTimeConfig wide;
  wide.horizon_seconds = 200000;
  const auto r2 = warning_lead_times(log, clusters, wide);
  EXPECT_EQ(r2.with_precursor, 1u);
  EXPECT_EQ(*r2.per_interruption[0].lead_seconds, 99900);
}

TEST(LeadTime, AggregatesAcrossInterruptions) {
  std::vector<raslog::RasEvent> events = {
      event_at(900, "00010003", "R00-M0-N00-J00"),
      event_at(1000, "00010005", "R00-M0-N00-J00"),   // lead 100
      event_at(50000, "00010003", "R05-M1-N02-J00"),
      event_at(50300, "00010005", "R05-M1-N02-J00"),  // lead 300
      event_at(90000, "00010005", "R10-M0-N00-J00"),  // no precursor
  };
  const raslog::RasLog log(std::move(events));
  const auto clusters = filter_events(log, FilterConfig{}).clusters;
  ASSERT_EQ(clusters.size(), 3u);
  const auto r = warning_lead_times(log, clusters);
  EXPECT_EQ(r.with_precursor, 2u);
  EXPECT_EQ(r.without_precursor, 1u);
  EXPECT_NEAR(r.coverage, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.median_lead_seconds, 200.0);
  EXPECT_DOUBLE_EQ(r.mean_lead_seconds, 200.0);
}

TEST(LeadTime, ValidatesHorizon) {
  LeadTimeConfig config;
  config.horizon_seconds = 0;
  EXPECT_THROW(warning_lead_times(raslog::RasLog(), {}, config),
               failmine::DomainError);
}

TEST(LeadTime, EmptyClustersYieldEmptyResult) {
  const auto r = warning_lead_times(raslog::RasLog(), {});
  EXPECT_TRUE(r.per_interruption.empty());
  EXPECT_DOUBLE_EQ(r.coverage, 0.0);
}

}  // namespace
}  // namespace failmine::core
