// Unit tests for analysis/queue_wait.

#include "analysis/queue_wait.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace failmine::analysis {
namespace {

joblog::JobRecord job_with_wait(std::uint64_t id, std::int64_t wait,
                                std::uint32_t nodes, const char* queue,
                                bool failed = false) {
  joblog::JobRecord j;
  j.job_id = id;
  j.user_id = 1;
  j.project_id = 1;
  j.queue = queue;
  j.submit_time = 1000;
  j.start_time = 1000 + wait;
  j.end_time = j.start_time + 3600;
  j.nodes_used = nodes;
  j.task_count = 1;
  j.requested_walltime = 7200;
  if (failed) {
    j.exit_class = joblog::ExitClass::kUserAppError;
    j.exit_code = 1;
  }
  return j;
}

joblog::JobLog sample_log() {
  return joblog::JobLog({
      job_with_wait(1, 100, 512, "prod-short"),
      job_with_wait(2, 200, 512, "prod-short", true),
      job_with_wait(3, 300, 512, "prod-short"),
      job_with_wait(4, 5000, 4096, "prod-capability"),
      job_with_wait(5, 7000, 4096, "prod-capability"),
  });
}

TEST(WaitByScale, GroupsAndSummaries) {
  const auto by_scale = wait_by_scale(sample_log());
  ASSERT_EQ(by_scale.size(), 2u);
  const auto& small = by_scale.at(512);
  EXPECT_EQ(small.jobs, 3u);
  EXPECT_DOUBLE_EQ(small.mean_wait_seconds, 200.0);
  EXPECT_DOUBLE_EQ(small.median_wait_seconds, 200.0);
  EXPECT_DOUBLE_EQ(small.max_wait_seconds, 300.0);
  const auto& big = by_scale.at(4096);
  EXPECT_DOUBLE_EQ(big.mean_wait_seconds, 6000.0);
}

TEST(WaitByQueue, GroupsByQueueName) {
  const auto by_queue = wait_by_queue(sample_log());
  ASSERT_EQ(by_queue.size(), 2u);
  EXPECT_EQ(by_queue.at("prod-short").jobs, 3u);
  EXPECT_EQ(by_queue.at("prod-capability").jobs, 2u);
}

TEST(WaitByOutcome, SplitsPopulations) {
  const auto r = wait_by_outcome(sample_log());
  EXPECT_EQ(r.successful.jobs, 4u);
  EXPECT_EQ(r.failed.jobs, 1u);
  EXPECT_DOUBLE_EQ(r.failed.mean_wait_seconds, 200.0);
}

TEST(WaitScaleTrend, DetectsMonotoneIncrease) {
  EXPECT_DOUBLE_EQ(wait_scale_trend(sample_log()), 1.0);
}

TEST(WaitScaleTrend, SingleSizeRejected) {
  const joblog::JobLog log({job_with_wait(1, 10, 512, "q"),
                            job_with_wait(2, 20, 512, "q")});
  EXPECT_THROW(wait_scale_trend(log), failmine::DomainError);
}

TEST(WaitByOutcome, EmptyPopulationsAreZero) {
  const joblog::JobLog log({job_with_wait(1, 10, 512, "q")});
  const auto r = wait_by_outcome(log);
  EXPECT_EQ(r.failed.jobs, 0u);
  EXPECT_DOUBLE_EQ(r.failed.mean_wait_seconds, 0.0);
}

}  // namespace
}  // namespace failmine::analysis
