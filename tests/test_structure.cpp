// Unit tests for analysis/structure.

#include "analysis/structure.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace failmine::analysis {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

joblog::JobRecord make_job(std::uint64_t id, std::uint32_t nodes,
                           std::uint32_t tasks, bool failed,
                           std::int64_t runtime = 3600) {
  joblog::JobRecord j;
  j.job_id = id;
  j.user_id = 1;
  j.project_id = 1;
  j.queue = "q";
  j.submit_time = 0;
  j.start_time = 0;
  j.end_time = runtime;
  j.nodes_used = nodes;
  j.task_count = tasks;
  j.requested_walltime = runtime * 2;
  if (failed) {
    j.exit_class = joblog::ExitClass::kUserAppError;
    j.exit_code = 1;
  }
  return j;
}

TEST(FailureRateByScale, OneBucketPerDistinctSize) {
  const joblog::JobLog log({make_job(1, 512, 1, false),
                            make_job(2, 512, 1, true),
                            make_job(3, 1024, 1, true),
                            make_job(4, 2048, 1, false)});
  const auto buckets = failure_rate_by_scale(log);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0].failure_rate(), 0.5);
  EXPECT_DOUBLE_EQ(buckets[1].failure_rate(), 1.0);
  EXPECT_DOUBLE_EQ(buckets[2].failure_rate(), 0.0);
  EXPECT_EQ(buckets[0].label, "512 nodes");
}

TEST(FailureRateByTaskCount, CapBucketAbsorbsTail) {
  const joblog::JobLog log({make_job(1, 512, 1, false),
                            make_job(2, 512, 2, true),
                            make_job(3, 512, 9, true),
                            make_job(4, 512, 20, true)});
  const auto buckets = failure_rate_by_task_count(log, 4);
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0].jobs, 1u);
  EXPECT_EQ(buckets[1].jobs, 1u);
  EXPECT_EQ(buckets[3].jobs, 2u);  // >= 4 tasks
  EXPECT_EQ(buckets[3].label, ">=4 tasks");
  EXPECT_THROW(failure_rate_by_task_count(log, 1), failmine::DomainError);
}

TEST(FailureRateByCoreHours, LogBucketsCoverAllJobs) {
  const joblog::JobLog log({make_job(1, 512, 1, false, 600),
                            make_job(2, 1024, 1, true, 3600),
                            make_job(3, 49152, 1, true, 86400)});
  const auto buckets = failure_rate_by_core_hours(log, kMira, 4);
  ASSERT_EQ(buckets.size(), 4u);
  std::uint64_t total = 0;
  for (const auto& b : buckets) total += b.jobs;
  EXPECT_EQ(total, 3u);
  EXPECT_THROW(failure_rate_by_core_hours(joblog::JobLog(), kMira),
               failmine::DomainError);
}

TEST(BucketTrend, DetectsMonotoneIncrease) {
  std::vector<StructureBucket> buckets(4);
  for (std::size_t i = 0; i < 4; ++i) {
    buckets[i].lower = static_cast<double>(i);
    buckets[i].jobs = 100;
    buckets[i].failures = 10 * (i + 1);
  }
  EXPECT_DOUBLE_EQ(bucket_trend(buckets), 1.0);
}

TEST(BucketTrend, IgnoresEmptyBuckets) {
  std::vector<StructureBucket> buckets(3);
  buckets[0] = {.label = "", .lower = 1.0, .upper = 2.0, .jobs = 10, .failures = 1};
  buckets[1] = {.label = "", .lower = 2.0, .upper = 3.0, .jobs = 0, .failures = 0};
  buckets[2] = {.label = "", .lower = 3.0, .upper = 4.0, .jobs = 10, .failures = 5};
  EXPECT_DOUBLE_EQ(bucket_trend(buckets), 1.0);
}

TEST(BucketTrend, TooFewPopulatedBucketsRejected) {
  std::vector<StructureBucket> buckets(1);
  buckets[0].jobs = 5;
  EXPECT_THROW(bucket_trend(buckets), failmine::DomainError);
}

}  // namespace
}  // namespace failmine::analysis
