// Batch/stream parity — the correctness anchor of the streaming
// subsystem (ISSUE: streaming E01/E02/E03/E08 vs the batch analyzer).
//
// On the default simulated trace, the final StreamSnapshot must:
//   * match JointAnalyzer::exit_breakdown() exactly on every integer
//     count and share (core-hours within float-summation tolerance);
//   * match the batch similarity filter + MTTI exactly;
//   * match severity totals exactly;
//   * report runtime quantiles within the sketch's documented rank error;
//   * report a heavy-hitter set that is a superset of the batch top-10
//     failing users/projects;
// and all of the above must survive a bounded out-of-order replay
// (shuffled arrivals within the watermark lateness bound).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "core/joint_analyzer.hpp"
#include "sim/replay.hpp"
#include "sim/simulator.hpp"
#include "stream/pipeline.hpp"

namespace failmine::stream {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

const sim::SimResult& trace() {
  static const sim::SimResult result = [] {
    sim::SimConfig config = sim::SimConfig::test_scale();
    config.scale = 0.005;
    return sim::simulate(config);
  }();
  return result;
}

const core::JointAnalyzer& analyzer() {
  static const core::JointAnalyzer instance(trace().job_log, trace().task_log,
                                            trace().ras_log, trace().io_log,
                                            kMira);
  return instance;
}

StreamSnapshot stream_result(std::size_t shards, std::int64_t shuffle_skew) {
  StreamConfig config;
  config.shard_count = shards;
  // Twice the skew restores exact event-time order (sim/replay.hpp).
  config.max_lateness_seconds = 2 * shuffle_skew;
  StreamPipeline pipeline(config);
  pipeline.push_batch(shuffle_skew > 0
                          ? sim::shuffled_replay(trace(), shuffle_skew, 99)
                          : sim::build_replay(trace()));
  pipeline.finish();
  return pipeline.snapshot();
}

void expect_exit_breakdown_parity(const StreamSnapshot& snap) {
  const core::ExitBreakdown batch = analyzer().exit_breakdown();
  EXPECT_EQ(snap.exit_breakdown.total_jobs, batch.total_jobs);
  EXPECT_EQ(snap.exit_breakdown.total_failures, batch.total_failures);
  EXPECT_DOUBLE_EQ(snap.exit_breakdown.user_caused_share,
                   batch.user_caused_share);
  EXPECT_DOUBLE_EQ(snap.exit_breakdown.system_caused_share,
                   batch.system_caused_share);
  ASSERT_EQ(snap.exit_breakdown.rows.size(), batch.rows.size());
  for (std::size_t i = 0; i < batch.rows.size(); ++i) {
    EXPECT_EQ(snap.exit_breakdown.rows[i].exit_class, batch.rows[i].exit_class);
    EXPECT_EQ(snap.exit_breakdown.rows[i].jobs, batch.rows[i].jobs);
    EXPECT_DOUBLE_EQ(snap.exit_breakdown.rows[i].share_of_jobs,
                     batch.rows[i].share_of_jobs);
    EXPECT_DOUBLE_EQ(snap.exit_breakdown.rows[i].share_of_failures,
                     batch.rows[i].share_of_failures);
    EXPECT_NEAR(snap.exit_breakdown.rows[i].core_hours, batch.rows[i].core_hours,
                1e-9 * std::max(1.0, batch.rows[i].core_hours));
  }
}

void expect_mtti_parity(const StreamSnapshot& snap) {
  const auto batch = analyzer().interruption_analysis(core::FilterConfig{});
  EXPECT_EQ(snap.fatal_input_events, batch.filter.input_events);
  EXPECT_EQ(snap.interruptions, batch.filter.clusters.size());
  EXPECT_EQ(snap.window_begin, analyzer().window_begin());
  EXPECT_EQ(snap.window_end, analyzer().window_end());
  EXPECT_DOUBLE_EQ(snap.mtti.mtti_days, batch.mtti.mtti_days);
  EXPECT_DOUBLE_EQ(snap.mtti.span_days, batch.mtti.span_days);
  EXPECT_EQ(snap.mtti.intervals_days, batch.mtti.intervals_days);
}

void expect_severity_parity(const StreamSnapshot& snap) {
  EXPECT_EQ(snap.severity_totals, trace().ras_log.severity_counts());
}

void expect_quantile_parity(const StreamSnapshot& snap) {
  std::vector<double> runtimes;
  for (const auto& job : trace().job_log.jobs())
    runtimes.push_back(static_cast<double>(job.runtime_seconds()));
  std::sort(runtimes.begin(), runtimes.end());
  const double n = static_cast<double>(runtimes.size());
  ASSERT_EQ(snap.runtime_samples, runtimes.size());

  const auto check = [&](double q, double value) {
    // The sketched value's true rank must lie within epsilon*n of the
    // target rank — the sketch's documented bound.
    const auto lo = std::lower_bound(runtimes.begin(), runtimes.end(), value);
    const auto hi = std::upper_bound(runtimes.begin(), runtimes.end(), value);
    ASSERT_NE(lo, hi) << "sketched quantile is not a stream value";
    const double target = std::ceil(q * n);
    const double eps_n = snap.quantile_epsilon * n;
    EXPECT_LE(static_cast<double>(lo - runtimes.begin()) + 1, target + eps_n);
    EXPECT_GE(static_cast<double>(hi - runtimes.begin()), target - eps_n);
  };
  check(0.50, snap.runtime_p50);
  check(0.90, snap.runtime_p90);
  check(0.99, snap.runtime_p99);
}

void expect_heavy_hitter_superset(const StreamSnapshot& snap) {
  // Exact per-user / per-project failure counts from the batch log.
  std::map<std::uint64_t, std::uint64_t> user_failures, project_failures;
  for (const auto& job : trace().job_log.jobs()) {
    if (!job.failed()) continue;
    ++user_failures[job.user_id];
    ++project_failures[job.project_id];
  }
  const auto check = [](const std::map<std::uint64_t, std::uint64_t>& exact,
                        const std::vector<TopEntry>& reported) {
    // Batch top-10 keys, by count desc (key asc on ties) like the sketch.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranked(exact.begin(),
                                                                exact.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    const std::size_t k = std::min<std::size_t>(10, ranked.size());
    for (std::size_t i = 0; i < k; ++i) {
      const auto it =
          std::find_if(reported.begin(), reported.end(),
                       [&](const TopEntry& e) { return e.key == ranked[i].first; });
      ASSERT_NE(it, reported.end())
          << "batch top-" << k << " key " << ranked[i].first
          << " missing from streamed heavy hitters";
      // Space-saving counts never undercount, and count - error is a
      // certain lower bound on the true count.
      EXPECT_GE(it->count, ranked[i].second);
      EXPECT_LE(it->count - it->error, ranked[i].second);
    }
  };
  check(user_failures, snap.top_users_by_failures);
  check(project_failures, snap.top_projects_by_failures);
}

void expect_full_parity(const StreamSnapshot& snap) {
  EXPECT_EQ(snap.records_dropped, 0u);
  expect_exit_breakdown_parity(snap);
  expect_mtti_parity(snap);
  expect_severity_parity(snap);
  expect_quantile_parity(snap);
  expect_heavy_hitter_superset(snap);
}

TEST(StreamParity, OrderedReplaySingleShard) {
  const auto snap = stream_result(1, 0);
  EXPECT_EQ(snap.records_late, 0u);
  expect_full_parity(snap);
}

TEST(StreamParity, OrderedReplayFourShards) {
  const auto snap = stream_result(4, 0);
  EXPECT_EQ(snap.records_late, 0u);
  expect_full_parity(snap);
}

TEST(StreamParity, ShuffledReplayWithinWatermarkBound) {
  // Arrivals shuffled by up to 30 minutes; lateness bound 2x that. The
  // reorderer must restore the exact stream, so ALL batch results still
  // match exactly.
  const auto snap = stream_result(4, 1800);
  EXPECT_EQ(snap.records_late, 0u);
  expect_full_parity(snap);
}

TEST(StreamParity, TaskAndIoTotalsMatchBatchLogs) {
  const auto snap = stream_result(2, 0);
  std::uint64_t task_failures = 0;
  for (const auto& t : trace().task_log.tasks())
    if (t.failed()) ++task_failures;
  std::uint64_t io_bytes = 0;
  for (const auto& r : trace().io_log.records()) io_bytes += r.total_bytes();
  EXPECT_EQ(snap.task_failures, task_failures);
  EXPECT_EQ(snap.io_bytes_total, io_bytes);
}

}  // namespace
}  // namespace failmine::stream
