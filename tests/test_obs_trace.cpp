// Tests for the trace-span subsystem: nested-span timing monotonicity,
// per-thread depth tracking, the chrome-trace JSON export, and the
// bounded-capacity drop accounting.
//
// Spans record into the process-global tracer(), so each test clears it
// first; the binary runs these suites single-threaded.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace failmine::obs {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("failmine_obs_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

const SpanRecord* find(const std::vector<SpanRecord>& records,
                       std::string_view name) {
  const auto it = std::find_if(records.begin(), records.end(),
                               [&](const SpanRecord& r) { return r.name == name; });
  return it == records.end() ? nullptr : &*it;
}

void spin_us(std::uint64_t us) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(Trace, NestedSpansAreMonotoneAndDepthTracked) {
  tracer().clear();
  {
    FAILMINE_TRACE_SPAN("parent");
    spin_us(200);
    {
      FAILMINE_TRACE_SPAN("child");
      spin_us(200);
      {
        FAILMINE_TRACE_SPAN("grandchild");
        spin_us(200);
      }
    }
  }
  const auto records = tracer().records();
  ASSERT_EQ(records.size(), 3u);
  const SpanRecord* parent = find(records, "parent");
  const SpanRecord* child = find(records, "child");
  const SpanRecord* grandchild = find(records, "grandchild");
  ASSERT_TRUE(parent && child && grandchild);

  // Children finish before their parent, so they are recorded first.
  EXPECT_EQ(records[0].name, "grandchild");
  EXPECT_EQ(records[2].name, "parent");

  EXPECT_EQ(parent->depth, 0u);
  EXPECT_EQ(child->depth, 1u);
  EXPECT_EQ(grandchild->depth, 2u);

  // Timing monotonicity: each child is contained in its parent.
  EXPECT_LE(child->duration_us, parent->duration_us);
  EXPECT_LE(grandchild->duration_us, child->duration_us);
  EXPECT_GE(child->start_us, parent->start_us);
  EXPECT_LE(child->start_us + child->duration_us,
            parent->start_us + parent->duration_us);
  EXPECT_GT(grandchild->duration_us, 0u);
}

TEST(Trace, SiblingSpansShareDepth) {
  tracer().clear();
  {
    FAILMINE_TRACE_SPAN("root");
    { FAILMINE_TRACE_SPAN("first"); }
    { FAILMINE_TRACE_SPAN("second"); }
  }
  const auto records = tracer().records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(find(records, "first")->depth, 1u);
  EXPECT_EQ(find(records, "second")->depth, 1u);
  // Aggregates fold the two siblings' calls separately by name.
  const auto aggs = tracer().aggregates();
  const auto root = std::find_if(aggs.begin(), aggs.end(),
                                 [](const auto& a) { return a.name == "root"; });
  ASSERT_NE(root, aggs.end());
  EXPECT_EQ(root->calls, 1u);
  // root has the largest total, so it sorts first.
  EXPECT_EQ(aggs.front().name, "root");
}

TEST(Trace, ThreadsGetDistinctIdsAndIndependentDepth) {
  tracer().clear();
  std::thread worker([] {
    FAILMINE_TRACE_SPAN("worker.root");
  });
  worker.join();
  {
    FAILMINE_TRACE_SPAN("main.root");
  }
  const auto records = tracer().records();
  ASSERT_EQ(records.size(), 2u);
  const SpanRecord* a = find(records, "worker.root");
  const SpanRecord* b = find(records, "main.root");
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->thread_id, b->thread_id);
  EXPECT_EQ(a->depth, 0u);
  EXPECT_EQ(b->depth, 0u);
}

TEST(Trace, DisabledCollectorRecordsNothing) {
  tracer().clear();
  tracer().set_enabled(false);
  {
    FAILMINE_TRACE_SPAN("invisible");
  }
  tracer().set_enabled(true);
  EXPECT_EQ(tracer().size(), 0u);
  EXPECT_EQ(tracer().dropped(), 0u);
}

TEST(Trace, CapacityBoundsRetainedSpans) {
  tracer().clear();
  tracer().set_capacity(2);
  { FAILMINE_TRACE_SPAN("a"); }
  { FAILMINE_TRACE_SPAN("b"); }
  { FAILMINE_TRACE_SPAN("c"); }
  { FAILMINE_TRACE_SPAN("d"); }
  EXPECT_EQ(tracer().size(), 2u);
  EXPECT_EQ(tracer().dropped(), 2u);
  EXPECT_NE(tracer().summary_text().find("dropped"), std::string::npos);
  tracer().set_capacity(1 << 20);
  tracer().clear();
  EXPECT_EQ(tracer().dropped(), 0u);
}

TEST(Trace, ChromeJsonExportIsWellFormed) {
  tracer().clear();
  {
    FAILMINE_TRACE_SPAN("e08.mtti");
    { FAILMINE_TRACE_SPAN("e08.mtti/inner"); }
  }
  const std::string json = tracer().to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"e08.mtti\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  const std::string path = temp_path("trace.json");
  tracer().write_chrome_json(path);
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), json + "\n");
  std::remove(path.c_str());

  EXPECT_THROW(tracer().write_chrome_json("/nonexistent_dir_for_obs_test/t.json"),
               ObsError);
}

TEST(Trace, ChromeJsonExportEscapesSpanNames) {
  // Regression: span names holding quotes or backslashes (file paths on
  // exotic platforms, user-provided labels) must not break the JSON.
  tracer().clear();
  { Span span("quoted\"name\\with\\slashes"); }
  const std::string json = tracer().to_chrome_json();
  EXPECT_NE(json.find("\"name\":\"quoted\\\"name\\\\with\\\\slashes\""),
            std::string::npos)
      << json;
  // Still structurally balanced after escaping.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  tracer().clear();
}

TEST(Trace, SummaryTextListsSpans) {
  tracer().clear();
  { FAILMINE_TRACE_SPAN("phase.alpha"); }
  { FAILMINE_TRACE_SPAN("phase.alpha"); }
  const std::string text = tracer().summary_text();
  EXPECT_NE(text.find("phase.alpha"), std::string::npos);
  EXPECT_NE(text.find("2"), std::string::npos);  // two calls aggregated
  tracer().clear();
}

TEST(Trace, ElapsedWorksEvenWhenDisabled) {
  tracer().clear();
  tracer().set_enabled(false);
  Span span("timed");
  spin_us(200);
  EXPECT_GT(span.elapsed_us(), 0u);
  tracer().set_enabled(true);
}

}  // namespace
}  // namespace failmine::obs
