// Unit tests for the raslog library: enum names, the message catalog's
// internal consistency, and RasLog container + CSV round trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <unistd.h>

#include "raslog/event.hpp"
#include "raslog/message_catalog.hpp"
#include "util/error.hpp"

namespace failmine::raslog {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

TEST(SeverityNames, RoundTripAndAliases) {
  for (Severity s : kAllSeverities)
    EXPECT_EQ(severity_from_name(severity_name(s)), s);
  EXPECT_EQ(severity_from_name("warning"), Severity::kWarn);
  EXPECT_EQ(severity_from_name("fatal"), Severity::kFatal);
  EXPECT_THROW(severity_from_name("critical"), failmine::ParseError);
}

TEST(ComponentNames, RoundTrip) {
  for (Component c : kAllComponents)
    EXPECT_EQ(component_from_name(component_name(c)), c);
  EXPECT_THROW(component_from_name("NOPE"), failmine::ParseError);
}

TEST(CategoryNames, RoundTrip) {
  for (Category c : kAllCategories)
    EXPECT_EQ(category_from_name(category_name(c)), c);
  EXPECT_THROW(category_from_name("nope"), failmine::ParseError);
}

TEST(MessageCatalog, HasSixtyFourUniqueIds) {
  const auto catalog = message_catalog();
  EXPECT_EQ(catalog.size(), 64u);
  std::set<std::string_view> ids;
  for (const auto& def : catalog) ids.insert(def.id);
  EXPECT_EQ(ids.size(), catalog.size());
}

TEST(MessageCatalog, IdsAreEightHexDigits) {
  for (const auto& def : message_catalog()) {
    EXPECT_EQ(def.id.size(), 8u) << def.id;
    for (char c : def.id)
      EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'A' && c <= 'F')) << def.id;
  }
}

TEST(MessageCatalog, FatalFlagImpliesFatalSeverity) {
  for (const auto& def : message_catalog()) {
    if (def.job_fatal) EXPECT_EQ(def.severity, Severity::kFatal) << def.id;
    if (def.severity == Severity::kFatal) EXPECT_TRUE(def.job_fatal) << def.id;
  }
}

TEST(MessageCatalog, WeightsArePositiveAndInfoHeavy) {
  double info = 0.0, warn = 0.0, fatal = 0.0;
  for (const auto& def : message_catalog()) {
    EXPECT_GT(def.rate_weight, 0.0) << def.id;
    switch (def.severity) {
      case Severity::kInfo: info += def.rate_weight; break;
      case Severity::kWarn: warn += def.rate_weight; break;
      case Severity::kFatal: fatal += def.rate_weight; break;
    }
  }
  EXPECT_GT(info, 20.0 * warn);
  EXPECT_GT(warn, 5.0 * fatal);
}

TEST(MessageCatalog, LookupById) {
  const MessageDef& def = message_by_id("00010005");
  EXPECT_EQ(def.severity, Severity::kFatal);
  EXPECT_EQ(def.category, Category::kMemory);
  EXPECT_TRUE(is_known_message("00010001"));
  EXPECT_FALSE(is_known_message("FFFFFFFF"));
  EXPECT_THROW(message_by_id("FFFFFFFF"), failmine::ParseError);
}

TEST(MessageCatalog, SeverityCountsAddUp) {
  EXPECT_EQ(count_by_severity(Severity::kInfo) +
                count_by_severity(Severity::kWarn) +
                count_by_severity(Severity::kFatal),
            message_catalog().size());
}

RasEvent make_event(std::uint64_t id, util::UnixSeconds t,
                    const char* msg = "00010005") {
  RasEvent e;
  e.record_id = id;
  e.timestamp = t;
  e.message_id = msg;
  const MessageDef& def = message_by_id(msg);
  e.severity = def.severity;
  e.component = def.component;
  e.category = def.category;
  e.location = topology::Location::parse("R00-M0-N00-J00", kMira);
  e.text = std::string(def.text);
  return e;
}

TEST(RasLog, SortsOnConstruction) {
  std::vector<RasEvent> events = {make_event(2, 200), make_event(1, 100),
                                  make_event(3, 150)};
  const RasLog log(std::move(events));
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.events()[0].record_id, 1u);
  EXPECT_EQ(log.events()[1].record_id, 3u);
  EXPECT_EQ(log.events()[2].record_id, 2u);
}

TEST(RasLog, FilterBySeverityAndTime) {
  std::vector<RasEvent> events = {make_event(1, 100, "00010001"),   // INFO
                                  make_event(2, 200, "00010005"),   // FATAL
                                  make_event(3, 300, "00010003")};  // WARN
  const RasLog log(std::move(events));
  EXPECT_EQ(log.filter_severity(Severity::kFatal).size(), 1u);
  EXPECT_EQ(log.filter_time(100, 300).size(), 2u);
  const auto counts = log.severity_counts();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

class RasLogFile : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("failmine_ras_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(RasLogFile, CsvRoundTripPreservesEverything) {
  std::vector<RasEvent> events = {make_event(1, 1365465600),
                                  make_event(2, 1365465700, "00040004")};
  events[0].job_id = 1234567;
  events[1].text = "text with, comma and \"quotes\"";
  const RasLog log(std::move(events));
  log.write_csv(path_);
  const RasLog loaded = RasLog::read_csv(path_, kMira);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.events()[0], log.events()[0]);
  EXPECT_EQ(loaded.events()[1], log.events()[1]);
}

TEST_F(RasLogFile, ReadRejectsWrongHeader) {
  {
    std::ofstream out(path_);
    out << "not,a,ras,log\n";
  }
  EXPECT_THROW(RasLog::read_csv(path_, kMira), failmine::ParseError);
}

TEST_F(RasLogFile, ReadRejectsBadLocation) {
  RasLog log({make_event(1, 100)});
  log.write_csv(path_);
  // Corrupt the location column.
  std::string content;
  {
    std::ifstream in(path_);
    std::getline(in, content);
    std::string header = content;
    std::getline(in, content);
    content = header + "\n" +
              "1,1970-01-01 00:01:40,00010005,FATAL,DDR,MEMORY,R99-M0,,x\n";
  }
  {
    std::ofstream out(path_);
    out << content;
  }
  EXPECT_THROW(RasLog::read_csv(path_, kMira), failmine::Error);
}

TEST(RasLog, EmptyLogBehaves) {
  const RasLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.severity_counts()[2], 0u);
}

}  // namespace
}  // namespace failmine::raslog
