// Unit tests for the checkpoint-interval advisor.

#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace failmine::core {
namespace {

joblog::JobRecord make_job(std::uint64_t id, std::uint32_t nodes,
                           std::int64_t runtime, bool system_killed) {
  joblog::JobRecord j;
  j.job_id = id;
  j.user_id = 1;
  j.project_id = 1;
  j.queue = "q";
  j.submit_time = 0;
  j.start_time = 0;
  j.end_time = runtime;
  j.nodes_used = nodes;
  j.task_count = 1;
  j.requested_walltime = runtime * 2;
  if (system_killed) {
    j.exit_class = joblog::ExitClass::kSystemHardware;
    j.exit_code = 139;
  }
  return j;
}

TEST(EstimateHazard, KillsOverExposure) {
  // 2 kills over (512 + 512 + 1024) * 1000 node-seconds.
  const joblog::JobLog jobs({make_job(1, 512, 1000, true),
                             make_job(2, 512, 1000, true),
                             make_job(3, 1024, 1000, false)});
  const auto h = estimate_hazard(jobs);
  EXPECT_EQ(h.system_kills, 2u);
  EXPECT_DOUBLE_EQ(h.node_seconds, 2048.0 * 1000.0);
  EXPECT_DOUBLE_EQ(h.per_node_second, 2.0 / 2048000.0);
}

TEST(EstimateHazard, ZeroKillsGivesZeroHazard) {
  const joblog::JobLog jobs({make_job(1, 512, 1000, false)});
  EXPECT_DOUBLE_EQ(estimate_hazard(jobs).per_node_second, 0.0);
}

TEST(EstimateHazard, EmptyLogRejected) {
  EXPECT_THROW(estimate_hazard(joblog::JobLog()), failmine::DomainError);
}

TEST(YoungInterval, ClosedForm) {
  EXPECT_DOUBLE_EQ(young_interval(100.0, 50000.0),
                   std::sqrt(2.0 * 100.0 * 50000.0));
  EXPECT_THROW(young_interval(0.0, 1.0), failmine::DomainError);
  EXPECT_THROW(young_interval(1.0, -1.0), failmine::DomainError);
}

TEST(DalyInterval, ApproachesYoungForSmallDelta) {
  // delta << M: Daly's correction is tiny.
  const double young = young_interval(10.0, 1e7);
  const double daly = daly_interval(10.0, 1e7);
  EXPECT_NEAR(daly, young - 10.0, 0.01 * young);
}

TEST(DalyInterval, CapsAtMtbfWhenCheckpointTooExpensive) {
  EXPECT_DOUBLE_EQ(daly_interval(5000.0, 1000.0), 1000.0);  // delta >= 2M
}

TEST(DalyInterval, MinimizesTheWasteModel) {
  // The Daly optimum should (approximately) minimize waste_fraction.
  const double delta = 300.0, mtbf = 3.0e5;
  const double tau = daly_interval(delta, mtbf);
  const double at_opt = waste_fraction(tau, delta, mtbf);
  for (double factor : {0.4, 0.7, 1.5, 2.5}) {
    EXPECT_LE(at_opt, waste_fraction(tau * factor, delta, mtbf) + 1e-4)
        << "factor=" << factor;
  }
}

TEST(WasteFraction, BehavesAtExtremes) {
  // Very frequent checkpoints: overhead-dominated (-> ~1).
  EXPECT_GT(waste_fraction(1.0, 100.0, 1e6), 0.9);
  // Very rare checkpoints on a flaky machine: loss-dominated.
  EXPECT_GT(waste_fraction(1e6, 100.0, 1e4), 0.9);
  // Sane middle: small waste.
  EXPECT_LT(waste_fraction(77000.0, 300.0, 1e7), 0.01);
  EXPECT_THROW(waste_fraction(0.0, 1.0, 1.0), failmine::DomainError);
}

TEST(RecommendCheckpoints, LargerJobsCheckpointMoreOften) {
  // Build a log with enough exposure and kills to estimate a hazard.
  std::vector<joblog::JobRecord> records;
  std::uint64_t id = 1;
  for (int i = 0; i < 50; ++i) {
    records.push_back(make_job(id++, 512, 36000, i == 0));
    records.push_back(make_job(id++, 8192, 36000, i < 3));
  }
  const joblog::JobLog jobs(std::move(records));
  // 48 h reference run: long enough relative to the job MTBF that bare
  // running loses more than the checkpoint overhead costs (for a short
  // run relative to MTBF, running bare is correctly the better choice).
  const auto advice = recommend_checkpoints(jobs, 600.0, 48.0 * 3600.0);
  ASSERT_EQ(advice.size(), 2u);
  EXPECT_EQ(advice[0].nodes, 512u);
  EXPECT_EQ(advice[1].nodes, 8192u);
  EXPECT_GT(advice[0].job_mtbf_hours, advice[1].job_mtbf_hours);
  EXPECT_GT(advice[0].optimal_interval_hours,
            advice[1].optimal_interval_hours);
  EXPECT_LT(advice[0].waste_at_optimum, advice[1].waste_at_optimum);
  // Checkpointing at the optimum beats running 6 h bare for the big jobs.
  EXPECT_LT(advice[1].waste_at_optimum, advice[1].waste_without);
}

TEST(RecommendCheckpoints, NoKillsMeansNoCheckpointsNeeded) {
  const joblog::JobLog jobs({make_job(1, 512, 1000, false)});
  const auto advice = recommend_checkpoints(jobs);
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_TRUE(std::isinf(advice[0].job_mtbf_hours));
  EXPECT_DOUBLE_EQ(advice[0].waste_at_optimum, 0.0);
}

TEST(RecommendCheckpoints, SimulatedTraceGivesPlausibleIntervals) {
  sim::SimConfig config = sim::SimConfig::test_scale();
  config.scale = 0.05;
  const auto trace = sim::simulate(config);
  const auto advice = recommend_checkpoints(trace.job_log);
  ASSERT_GE(advice.size(), 5u);
  for (const auto& a : advice) {
    if (std::isinf(a.job_mtbf_hours)) continue;
    EXPECT_GT(a.optimal_interval_hours, 0.1);   // not absurdly frequent
    EXPECT_LT(a.optimal_interval_hours, 2000.0);
    EXPECT_GE(a.waste_at_optimum, 0.0);
    EXPECT_LT(a.waste_at_optimum, 0.5);
  }
}

TEST(RecommendCheckpoints, ValidatesInputs) {
  const joblog::JobLog jobs({make_job(1, 512, 1000, true)});
  EXPECT_THROW(recommend_checkpoints(jobs, 0.0), failmine::DomainError);
  EXPECT_THROW(recommend_checkpoints(jobs, 600.0, 0.0),
               failmine::DomainError);
}

}  // namespace
}  // namespace failmine::core
