// Unit tests for util/strings.

#include "util/strings.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace failmine::util {
namespace {

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a-b-c", '-'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("--", '-'), (std::vector<std::string>{"", "", ""}));
  EXPECT_EQ(split("solo", '-'), (std::vector<std::string>{"solo"}));
  EXPECT_EQ(split("", '-'), (std::vector<std::string>{""}));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("FaTaL"), "fatal");
  EXPECT_EQ(to_lower("123-XYZ"), "123-xyz");
}

TEST(Strings, ParseIntAcceptsSignedValues) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_EQ(parse_int("  8 "), 8);
}

TEST(Strings, ParseIntRejectsJunk) {
  EXPECT_THROW(parse_int(""), ParseError);
  EXPECT_THROW(parse_int("12x"), ParseError);
  EXPECT_THROW(parse_int("1.5"), ParseError);
}

TEST(Strings, ParseUintRejectsNegative) {
  EXPECT_EQ(parse_uint("99"), 99u);
  EXPECT_THROW(parse_uint("-1"), ParseError);
  EXPECT_THROW(parse_uint("abc"), ParseError);
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3"), -1000.0);
  EXPECT_THROW(parse_double(""), ParseError);
  EXPECT_THROW(parse_double("1.2.3"), ParseError);
}

TEST(Strings, FormatDoublePrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("R00-M1", "R00"));
  EXPECT_FALSE(starts_with("R0", "R00"));
  EXPECT_TRUE(starts_with("anything", ""));
}

}  // namespace
}  // namespace failmine::util
