// Unit + property tests for stats/hypothesis (KS, chi-square).

#include "stats/hypothesis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace failmine::stats {
namespace {

double uniform_cdf(double x) {
  if (x < 0) return 0.0;
  if (x > 1) return 1.0;
  return x;
}

TEST(KsTest, AcceptsOwnDistribution) {
  util::Rng rng(3);
  std::vector<double> sample(2000);
  for (auto& v : sample) v = rng.uniform();
  const TestResult r = ks_test(sample, uniform_cdf);
  EXPECT_LT(r.statistic, 0.05);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(KsTest, RejectsWrongDistribution) {
  util::Rng rng(5);
  std::vector<double> sample(2000);
  for (auto& v : sample) v = rng.uniform() * rng.uniform();  // not uniform
  const TestResult r = ks_test(sample, uniform_cdf);
  EXPECT_GT(r.statistic, 0.15);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, ExactStatisticOnTinySample) {
  // Sample {0.5}: F_n jumps 0 -> 1 at 0.5, model F(0.5) = 0.5 -> D = 0.5.
  const TestResult r = ks_test(std::vector<double>{0.5}, uniform_cdf);
  EXPECT_DOUBLE_EQ(r.statistic, 0.5);
}

TEST(KsTest, RejectsEmptySampleAndBadCdf) {
  EXPECT_THROW(ks_test({}, uniform_cdf), failmine::DomainError);
  EXPECT_THROW(ks_test(std::vector<double>{0.5}, [](double) { return 2.0; }),
               failmine::DomainError);
}

TEST(KsTwoSample, SameSourceAccepted) {
  util::Rng rng(7);
  std::vector<double> a(1500), b(1500);
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  const TestResult r = ks_two_sample(a, b);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(KsTwoSample, ShiftedSourceRejected) {
  util::Rng rng(11);
  std::vector<double> a(1500), b(1500);
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal() + 0.5;
  const TestResult r = ks_two_sample(a, b);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KolmogorovSurvival, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(kolmogorov_survival(0.0), 1.0);
  EXPECT_DOUBLE_EQ(kolmogorov_survival(-1.0), 1.0);
  EXPECT_NEAR(kolmogorov_survival(10.0), 0.0, 1e-12);
  // Known value: Q(1.0) ~= 0.27.
  EXPECT_NEAR(kolmogorov_survival(1.0), 0.27, 0.01);
}

TEST(KolmogorovSurvival, MonotoneDecreasing) {
  double prev = 1.0;
  for (double x = 0.1; x < 3.0; x += 0.1) {
    const double q = kolmogorov_survival(x);
    EXPECT_LE(q, prev + 1e-12);
    prev = q;
  }
}

TEST(ChiSquare, UniformDieRolls) {
  // 600 fair-die rolls with near-expected counts should pass easily.
  const std::vector<double> observed = {95, 102, 100, 98, 105, 100};
  const std::vector<double> expected(6, 100.0);
  const TestResult r = chi_square_test(observed, expected);
  EXPECT_LT(r.statistic, 2.0);
  EXPECT_GT(r.p_value, 0.5);
}

TEST(ChiSquare, BiasedCountsRejected) {
  const std::vector<double> observed = {300, 60, 60, 60, 60, 60};
  const std::vector<double> expected(6, 100.0);
  const TestResult r = chi_square_test(observed, expected);
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(ChiSquare, DegreesOfFreedomValidation) {
  const std::vector<double> o = {1, 2};
  const std::vector<double> e = {1.5, 1.5};
  EXPECT_NO_THROW(chi_square_test(o, e, 0));
  EXPECT_THROW(chi_square_test(o, e, 1), failmine::DomainError);
  EXPECT_THROW(chi_square_test(o, std::vector<double>{1.0, 0.0}),
               failmine::DomainError);
}

TEST(ChiSquareSurvival, MatchesExponentialForTwoDof) {
  // Chi-square with 2 dof is Exp(1/2): Q(x) = exp(-x/2).
  for (double x : {0.5, 1.0, 3.0, 8.0}) {
    EXPECT_NEAR(chi_square_survival(x, 2.0), std::exp(-x / 2.0), 1e-9);
  }
  EXPECT_THROW(chi_square_survival(1.0, 0.0), failmine::DomainError);
}

}  // namespace
}  // namespace failmine::stats
