// Unit tests for util/time: civil <-> absolute conversion, timestamp
// parsing/formatting, calendar decompositions.

#include "util/time.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace failmine::util {
namespace {

TEST(Time, EpochIsZero) {
  EXPECT_EQ(to_unix({1970, 1, 1, 0, 0, 0}), 0);
}

TEST(Time, KnownDateRoundTrips) {
  const CivilTime ct{2013, 4, 9, 0, 0, 0};
  const UnixSeconds t = to_unix(ct);
  EXPECT_EQ(t, 1365465600);
  EXPECT_EQ(to_civil(t), ct);
}

TEST(Time, DaysFromCivilMatchesKnownValues) {
  EXPECT_EQ(days_from_civil(1970, 1, 1), 0);
  EXPECT_EQ(days_from_civil(1970, 1, 2), 1);
  EXPECT_EQ(days_from_civil(1969, 12, 31), -1);
  EXPECT_EQ(days_from_civil(2000, 3, 1), 11017);
}

TEST(Time, CivilFromDaysInvertsDaysFromCivil) {
  for (std::int64_t day : {-1000000LL, -1LL, 0LL, 1LL, 719468LL, 1000000LL}) {
    int y, m, d;
    civil_from_days(day, y, m, d);
    EXPECT_EQ(days_from_civil(y, m, d), day) << "day=" << day;
  }
}

TEST(Time, LeapYearRules) {
  EXPECT_TRUE(is_leap_year(2000));
  EXPECT_TRUE(is_leap_year(2016));
  EXPECT_FALSE(is_leap_year(1900));
  EXPECT_FALSE(is_leap_year(2013));
}

TEST(Time, DaysInMonthHandlesFebruary) {
  EXPECT_EQ(days_in_month(2016, 2), 29);
  EXPECT_EQ(days_in_month(2013, 2), 28);
  EXPECT_EQ(days_in_month(2013, 12), 31);
  EXPECT_THROW(days_in_month(2013, 13), DomainError);
}

TEST(Time, ParseFormatsRoundTrip) {
  const char* samples[] = {"2013-04-09 00:00:00", "2018-09-30 23:59:59",
                           "1999-12-31 12:30:45", "2016-02-29 06:07:08"};
  for (const char* s : samples) {
    EXPECT_EQ(format_timestamp(parse_timestamp(s)), s);
  }
}

TEST(Time, ParseAcceptsTSeparator) {
  EXPECT_EQ(parse_timestamp("2013-04-09T00:00:00"), 1365465600);
}

TEST(Time, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_timestamp(""), ParseError);
  EXPECT_THROW(parse_timestamp("2013-04-09"), ParseError);
  EXPECT_THROW(parse_timestamp("2013/04/09 00:00:00"), ParseError);
  EXPECT_THROW(parse_timestamp("2013-04-09 00:00:0x"), ParseError);
  EXPECT_THROW(parse_timestamp("2013-13-09 00:00:00"), ParseError);
  EXPECT_THROW(parse_timestamp("2013-02-30 00:00:00"), ParseError);
  EXPECT_THROW(parse_timestamp("2013-04-09 25:00:00"), ParseError);
}

TEST(Time, ToUnixValidatesFields) {
  EXPECT_THROW(to_unix({2013, 0, 1, 0, 0, 0}), DomainError);
  EXPECT_THROW(to_unix({2013, 1, 32, 0, 0, 0}), DomainError);
  EXPECT_THROW(to_unix({2013, 1, 1, 24, 0, 0}), DomainError);
  EXPECT_THROW(to_unix({2013, 1, 1, 0, 60, 0}), DomainError);
  EXPECT_THROW(to_unix({2013, 1, 1, 0, 0, 60}), DomainError);
}

TEST(Time, HourOfDay) {
  EXPECT_EQ(hour_of_day(0), 0);
  EXPECT_EQ(hour_of_day(3600), 1);
  EXPECT_EQ(hour_of_day(86399), 23);
  EXPECT_EQ(hour_of_day(-1), 23);  // 1969-12-31 23:59:59
}

TEST(Time, DayOfWeek) {
  // 1970-01-01 was a Thursday -> index 3 (Monday = 0).
  EXPECT_EQ(day_of_week(0), 3);
  // 2013-04-09 was a Tuesday.
  EXPECT_EQ(day_of_week(1365465600), 1);
  // 2018-09-30 was a Sunday.
  EXPECT_EQ(day_of_week(parse_timestamp("2018-09-30 12:00:00")), 6);
}

TEST(Time, MonthIndex) {
  const UnixSeconds origin = parse_timestamp("2013-04-09 00:00:00");
  EXPECT_EQ(month_index(origin, origin), 0);
  EXPECT_EQ(month_index(origin, parse_timestamp("2013-05-01 00:00:00")), 1);
  EXPECT_EQ(month_index(origin, parse_timestamp("2014-04-01 00:00:00")), 12);
  EXPECT_EQ(month_index(origin, parse_timestamp("2013-03-31 00:00:00")), -1);
}

TEST(Time, RoundTripAcrossManyDays) {
  // Sweep a day at a time across the full Mira window.
  const UnixSeconds start = parse_timestamp("2013-04-09 13:30:11");
  for (int day = 0; day < 2001; day += 13) {
    const UnixSeconds t = start + static_cast<UnixSeconds>(day) * kSecondsPerDay;
    EXPECT_EQ(parse_timestamp(format_timestamp(t)), t) << "day=" << day;
  }
}

TEST(Time, NegativeTimesDecomposeCorrectly) {
  const CivilTime ct = to_civil(-1);
  EXPECT_EQ(ct.year, 1969);
  EXPECT_EQ(ct.month, 12);
  EXPECT_EQ(ct.day, 31);
  EXPECT_EQ(ct.second, 59);
}

}  // namespace
}  // namespace failmine::util
