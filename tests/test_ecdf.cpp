// Unit tests for stats/ecdf.

#include "stats/ecdf.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace failmine::stats {
namespace {

TEST(Ecdf, StepValues) {
  const Ecdf f(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f(2.5), 0.5);
  EXPECT_DOUBLE_EQ(f(4.0), 1.0);
  EXPECT_DOUBLE_EQ(f(100.0), 1.0);
}

TEST(Ecdf, EmptySampleThrows) {
  EXPECT_THROW(Ecdf(std::vector<double>{}), failmine::DomainError);
}

TEST(Ecdf, MonotoneNonDecreasing) {
  const Ecdf f(std::vector<double>{5, 1, 3, 3, 9, 2});
  double prev = 0.0;
  for (double x = 0.0; x <= 10.0; x += 0.25) {
    const double y = f(x);
    EXPECT_GE(y, prev);
    prev = y;
  }
}

TEST(Ecdf, HandlesDuplicates) {
  const Ecdf f(std::vector<double>{2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(f(1.9), 0.0);
  EXPECT_DOUBLE_EQ(f(2.0), 1.0);
}

TEST(Ecdf, QuantileIsLeftInverse) {
  const Ecdf f(std::vector<double>{10, 20, 30, 40, 50});
  EXPECT_DOUBLE_EQ(f.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.21), 20.0);
  EXPECT_DOUBLE_EQ(f.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.0), 10.0);
  EXPECT_THROW(f.quantile(-0.1), failmine::DomainError);
}

TEST(Ecdf, CurveCollapsesDuplicatesAndEndsAtOne) {
  const Ecdf f(std::vector<double>{1, 1, 2, 3, 3, 3});
  const auto curve = f.curve();
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].first, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].second, 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(curve[2].first, 3.0);
  EXPECT_DOUBLE_EQ(curve[2].second, 1.0);
}

}  // namespace
}  // namespace failmine::stats
