// Unit tests for stats/correlation.

#include "stats/correlation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace failmine::stats {
namespace {

TEST(Pearson, PerfectLinearRelations) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  const std::vector<double> z = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Pearson, InvariantToAffineTransforms) {
  util::Rng rng(5);
  std::vector<double> x(50), y(50), x2(50), y2(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x[i] = rng.normal();
    y[i] = 0.6 * x[i] + rng.normal();
    x2[i] = 3.0 * x[i] - 7.0;
    y2[i] = -2.0 * y[i] + 11.0;
  }
  EXPECT_NEAR(pearson(x, y), -pearson(x2, y2), 1e-12);
}

TEST(Pearson, RejectsDegenerateInputs) {
  EXPECT_THROW(pearson(std::vector<double>{1.0},
                       std::vector<double>{2.0}),
               failmine::DomainError);
  EXPECT_THROW(pearson(std::vector<double>{1, 2}, std::vector<double>{1, 2, 3}),
               failmine::DomainError);
  EXPECT_THROW(pearson(std::vector<double>{1, 1}, std::vector<double>{1, 2}),
               failmine::DomainError);
}

TEST(Spearman, MonotoneNonlinearIsPerfect) {
  const std::vector<double> x = {1, 2, 3, 4, 5, 6};
  const std::vector<double> y = {1, 8, 27, 64, 125, 216};  // x^3
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Spearman, HandlesTies) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(KendallTau, KnownSmallExample) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {1, 3, 2};
  // Pairs: (1,2) concordant, (1,3) concordant, (2,3) discordant -> 1/3.
  EXPECT_NEAR(kendall_tau(x, y), 1.0 / 3.0, 1e-12);
}

TEST(KendallTau, PerfectAgreementAndReversal) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {4, 3, 2, 1};
  EXPECT_NEAR(kendall_tau(x, x), 1.0, 1e-12);
  EXPECT_NEAR(kendall_tau(x, y), -1.0, 1e-12);
}

TEST(KendallTau, AgreesInSignWithSpearman) {
  util::Rng rng(9);
  std::vector<double> x(40), y(40);
  for (std::size_t i = 0; i < 40; ++i) {
    x[i] = rng.normal();
    y[i] = x[i] + 0.5 * rng.normal();
  }
  EXPECT_GT(kendall_tau(x, y), 0.3);
  EXPECT_GT(spearman(x, y), 0.3);
}

TEST(LinearRegression, RecoversExactLine) {
  const std::vector<double> x = {0, 1, 2, 3};
  const std::vector<double> y = {1, 3, 5, 7};  // y = 1 + 2x
  const LinearFit fit = linear_regression(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearRegression, NoisyDataHasPartialR2) {
  util::Rng rng(13);
  std::vector<double> x(200), y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x[i] = static_cast<double>(i);
    y[i] = 2.0 * x[i] + 40.0 * rng.normal();
  }
  const LinearFit fit = linear_regression(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.2);
  EXPECT_GT(fit.r_squared, 0.7);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(LinearRegression, ConstantXRejected) {
  EXPECT_THROW(
      linear_regression(std::vector<double>{1, 1}, std::vector<double>{1, 2}),
      failmine::DomainError);
}

}  // namespace
}  // namespace failmine::stats
