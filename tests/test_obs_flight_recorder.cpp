// Tests for the crash-safe flight recorder: ring semantics (wrap,
// truncation, concurrent writers), the logger-sink and tracer-hook
// wiring, and the fatal-signal crash dump (exercised in a gtest death
// test so the abort happens in a child process).

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace failmine::obs {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("failmine_fr_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) out.push_back(line);
  return out;
}

TEST(FlightRecorder, RecordsAndDumpsInOrder) {
  FlightRecorder rec(8);
  rec.record_line("{\"a\":1}");
  rec.record_line("{\"a\":2}");
  rec.record_line("{\"a\":3}");
  EXPECT_EQ(rec.recorded(), 3u);
  const auto lines = lines_of(rec.dump());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "{\"a\":1}");
  EXPECT_EQ(lines[1], "{\"a\":2}");
  EXPECT_EQ(lines[2], "{\"a\":3}");
}

TEST(FlightRecorder, WrapsKeepingTheNewestLines) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i)
    rec.record_line("{\"i\":" + std::to_string(i) + "}");
  EXPECT_EQ(rec.recorded(), 10u);
  const auto lines = lines_of(rec.dump());
  ASSERT_EQ(lines.size(), 4u);
  // Oldest-first among the survivors: 6, 7, 8, 9.
  EXPECT_EQ(lines[0], "{\"i\":6}");
  EXPECT_EQ(lines[3], "{\"i\":9}");
}

TEST(FlightRecorder, TruncatesOverlongLines) {
  FlightRecorder rec(2);
  const std::string big(FlightRecorder::kSlotBytes * 2, 'x');
  rec.record_line(big);
  const auto lines = lines_of(rec.dump());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].size(), FlightRecorder::kSlotBytes);
  EXPECT_EQ(lines[0], std::string(FlightRecorder::kSlotBytes, 'x'));
}

TEST(FlightRecorder, ClearEmptiesTheRing) {
  FlightRecorder rec(4);
  rec.record_line("{}");
  rec.clear();
  EXPECT_EQ(rec.dump(), "");
}

TEST(FlightRecorder, DumpToFdMatchesDump) {
  FlightRecorder rec(4);
  rec.record_line("{\"x\":1}");
  rec.record_line("{\"x\":2}");
  const std::string path = temp_path("fd_dump.jsonl");
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  rec.dump_to_fd(fd);
  ::close(fd);
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), rec.dump());
  std::remove(path.c_str());
}

TEST(FlightRecorder, ConcurrentWritersNeverProduceTornLines) {
  FlightRecorder rec(16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&rec, t] {
      const std::string line(64, static_cast<char>('a' + t));
      for (int i = 0; i < kPerThread; ++i) rec.record_line(line);
    });
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const std::string& line : lines_of(rec.dump())) {
        ASSERT_EQ(line.size(), 64u);
        // A torn line would mix characters from two writers.
        EXPECT_EQ(line, std::string(64, line[0]));
      }
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(rec.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(FlightRecorderWiring, LogRecordsAndSpansLandInTheGlobalRing) {
  attach_flight_recorder();
  flight_recorder().clear();
  logger().warn("fr.test_event", {{"k", "v"}});
  { Span span("fr.test_span"); }
  const std::string dump = flight_recorder().dump();
  EXPECT_NE(dump.find("\"kind\":\"log\""), std::string::npos);
  EXPECT_NE(dump.find("fr.test_event"), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"span\""), std::string::npos);
  EXPECT_NE(dump.find("fr.test_span"), std::string::npos);
}

TEST(FlightRecorderWiring, SpanNamesWithJsonMetacharactersStayValid) {
  // Regression: serialize_span used to drop '"' and '\\' from span names
  // outright; they must now land as two-character JSON escapes so every
  // ring line stays parseable.
  attach_flight_recorder();
  flight_recorder().clear();
  { Span span("fr.esc\"quote\\slash"); }
  { Span span("fr.ctl\x01name"); }
  const std::string dump = flight_recorder().dump();
  EXPECT_NE(dump.find("fr.esc\\\"quote\\\\slash"), std::string::npos) << dump;
  // Control characters are replaced, never emitted raw.
  EXPECT_EQ(dump.find('\x01'), std::string::npos);
  EXPECT_NE(dump.find("fr.ctl?name"), std::string::npos);
  // Each span line still has balanced quotes (even count).
  for (const auto& line : lines_of(dump)) {
    std::size_t unescaped = 0;
    for (std::size_t i = 0; i < line.size(); ++i)
      if (line[i] == '"' && (i == 0 || line[i - 1] != '\\')) ++unescaped;
    EXPECT_EQ(unescaped % 2, 0u) << line;
  }
}

TEST(FlightRecorderWiring, AttachIsIdempotent) {
  attach_flight_recorder();
  attach_flight_recorder();
  flight_recorder().clear();
  logger().warn("fr.once", {});
  const auto lines = lines_of(flight_recorder().dump());
  std::size_t hits = 0;
  for (const auto& line : lines)
    if (line.find("fr.once") != std::string::npos) ++hits;
  EXPECT_EQ(hits, 1u);  // one sink, not one per attach call
}

TEST(CrashDump, RejectsOverlongPath) {
  EXPECT_THROW(install_crash_dump(std::string(4096, 'p')), DomainError);
}

using CrashDumpDeathTest = ::testing::Test;

TEST(CrashDumpDeathTest, AbortDumpsTheRingAsJsonl) {
  // Default ("fast") death-test style: the child is forked right here,
  // so it inherits `path` (the threadsafe style would re-run the test
  // body and recompute it under the child's pid).
  const std::string path = temp_path("crash.jsonl");
  std::remove(path.c_str());
  // The child installs the handler, records context, then aborts; the
  // parent checks the dump the handler wrote on the way down.
  EXPECT_DEATH(
      {
        install_crash_dump(path);
        flight_recorder().record_line("{\"kind\":\"log\",\"msg\":\"pre\"}");
        logger().error("fr.crashing", {{"detail", "on purpose"}});
        std::abort();
      },
      "");
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "crash handler did not write " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto lines = lines_of(ss.str());
  ASSERT_GE(lines.size(), 3u);
  EXPECT_NE(ss.str().find("\"msg\":\"pre\""), std::string::npos);
  EXPECT_NE(ss.str().find("fr.crashing"), std::string::npos);
  // Every line is a JSON object; the last one names the fatal signal.
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  EXPECT_EQ(lines.back(),
            "{\"kind\":\"crash\",\"signal\":" + std::to_string(SIGABRT) + "}");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace failmine::obs
