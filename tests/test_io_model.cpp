// Unit tests for sim/io_model.

#include "sim/io_model.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/population.hpp"
#include "sim/workload.hpp"
#include "stats/summary.hpp"

namespace failmine::sim {
namespace {

class IoModelTest : public ::testing::Test {
 protected:
  IoModelTest()
      : config_(SimConfig::test_scale()),
        rng_(config_.seed),
        population_(config_, rng_),
        workload_(config_, population_),
        io_model_(config_) {
    jobs_ = workload_.generate(rng_);
    records_ = io_model_.generate(jobs_, rng_);
  }

  SimConfig config_;
  util::Rng rng_;
  Population population_;
  WorkloadModel workload_;
  IoModel io_model_;
  std::vector<joblog::JobRecord> jobs_;
  std::vector<iolog::IoRecord> records_;
};

TEST_F(IoModelTest, CoverageNearConfiguredFraction) {
  const double coverage = static_cast<double>(records_.size()) /
                          static_cast<double>(jobs_.size());
  EXPECT_NEAR(coverage, config_.io_coverage, 0.05);
}

TEST_F(IoModelTest, EveryRecordRefersToARealJob) {
  std::set<std::uint64_t> ids;
  for (const auto& j : jobs_) ids.insert(j.job_id);
  std::set<std::uint64_t> seen;
  for (const auto& r : records_) {
    EXPECT_TRUE(ids.contains(r.job_id));
    EXPECT_TRUE(seen.insert(r.job_id).second) << "duplicate I/O record";
  }
}

TEST_F(IoModelTest, FieldsAreSane) {
  for (const auto& r : records_) {
    EXPECT_GE(r.files_accessed, 1u);
    EXPECT_GE(r.ranks_doing_io, 1u);
    EXPECT_GE(r.read_time_seconds, 0.0);
    EXPECT_GE(r.write_time_seconds, 0.0);
  }
}

TEST_F(IoModelTest, IoVolumeScalesWithCoreHours) {
  // Median total bytes of the biggest-quartile jobs should exceed the
  // smallest-quartile's.
  std::vector<std::pair<double, double>> ch_bytes;
  std::map<std::uint64_t, const joblog::JobRecord*> by_id;
  for (const auto& j : jobs_) by_id[j.job_id] = &j;
  for (const auto& r : records_)
    ch_bytes.push_back({by_id[r.job_id]->core_hours(config_.machine),
                        static_cast<double>(r.total_bytes())});
  std::sort(ch_bytes.begin(), ch_bytes.end());
  const std::size_t q = ch_bytes.size() / 4;
  std::vector<double> low, high;
  for (std::size_t i = 0; i < q; ++i) low.push_back(ch_bytes[i].second);
  for (std::size_t i = ch_bytes.size() - q; i < ch_bytes.size(); ++i)
    high.push_back(ch_bytes[i].second);
  EXPECT_GT(stats::median(high), 3.0 * stats::median(low));
}

TEST_F(IoModelTest, FailedJobsWriteLessAtComparableScale) {
  std::map<std::uint64_t, const joblog::JobRecord*> by_id;
  for (const auto& j : jobs_) by_id[j.job_id] = &j;
  std::vector<double> failed_ratio, ok_ratio;
  for (const auto& r : records_) {
    const auto* j = by_id[r.job_id];
    const double ch = j->core_hours(config_.machine);
    if (ch <= 0) continue;
    const double per_ch = static_cast<double>(r.bytes_written) / ch;
    (j->failed() ? failed_ratio : ok_ratio).push_back(per_ch);
  }
  ASSERT_GT(failed_ratio.size(), 30u);
  ASSERT_GT(ok_ratio.size(), 30u);
  EXPECT_LT(stats::median(failed_ratio), stats::median(ok_ratio));
}

TEST(IoModel, ZeroCoverageYieldsNoRecords) {
  SimConfig config = SimConfig::test_scale();
  config.io_coverage = 0.0;
  util::Rng rng(3);
  const Population pop(config, rng);
  const WorkloadModel workload(config, pop);
  const auto jobs = workload.generate(rng);
  const IoModel io(config);
  EXPECT_TRUE(io.generate(jobs, rng).empty());
}

}  // namespace
}  // namespace failmine::sim
