// Tests for the incremental streaming operators: rolling windows, the
// streaming interruption clusterer (vs the batch filter), the exit
// breakdown accumulator (vs the batch analyzer), and shard routing.

#include "stream/operators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/simulator.hpp"
#include "topology/location.hpp"
#include "util/error.hpp"

namespace failmine::stream {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

const sim::SimResult& trace() {
  static const sim::SimResult result = [] {
    sim::SimConfig config = sim::SimConfig::test_scale();
    config.scale = 0.004;
    return sim::simulate(config);
  }();
  return result;
}

// ---- RollingWindow ----------------------------------------------------

TEST(RollingWindow, CountsOnlyTrailingBuckets) {
  RollingWindow<1> w(/*bucket_seconds=*/10, /*bucket_count=*/3);
  EXPECT_EQ(w.window_seconds(), 30);
  w.add(5, 0);    // bucket 0
  w.add(15, 0);   // bucket 1
  w.add(25, 0);   // bucket 2
  EXPECT_EQ(w.totals(25)[0], 3u);
  // Advancing "now" ages one bucket out of the 3-bucket window at a time:
  // at 35 the window is buckets [1,3], at 45 it is [2,4], at 55 it is [3,5].
  EXPECT_EQ(w.totals(35)[0], 2u);
  EXPECT_EQ(w.totals(45)[0], 1u);
  EXPECT_EQ(w.totals(55)[0], 0u);
}

TEST(RollingWindow, ReclaimedSlotsResetLazily) {
  RollingWindow<2> w(10, 2);
  w.add(5, 0, 7);
  // Bucket index 2 reclaims bucket 0's slot; the old counts must vanish.
  w.add(25, 1, 3);
  const auto t = w.totals(25);
  EXPECT_EQ(t[0], 0u);
  EXPECT_EQ(t[1], 3u);
}

TEST(RollingWindow, StaleSlotsExcludedEvenIfNotReclaimed) {
  RollingWindow<1> w(10, 4);
  w.add(0, 0, 5);
  // "now" far ahead, slot never overwritten: totals must not resurrect it.
  EXPECT_EQ(w.totals(1000)[0], 0u);
}

TEST(RollingWindow, NegativeTimesBucketCorrectly) {
  RollingWindow<1> w(10, 4);
  w.add(-5, 0);   // bucket -1 under floor division
  w.add(-15, 0);  // bucket -2
  EXPECT_EQ(w.totals(-1)[0], 2u);
}

// ---- StreamingInterruptions vs batch filter ---------------------------

TEST(StreamingInterruptions, MatchesBatchFilterOnSimulatedTrace) {
  const core::FilterConfig config;
  const core::FilterResult batch =
      core::filter_events(trace().ras_log, config);

  StreamingInterruptions streaming(config);
  for (const auto& event : trace().ras_log.events()) streaming.add(event);

  EXPECT_EQ(streaming.input_events(), batch.input_events);
  EXPECT_EQ(streaming.interruptions(), batch.clusters.size());
}

TEST(StreamingInterruptions, MttiMatchesBatchOnSimulatedTrace) {
  const core::FilterConfig config;
  const auto& ras = trace().ras_log;
  ASSERT_FALSE(ras.empty());
  const util::UnixSeconds begin = ras.events().front().timestamp;
  const util::UnixSeconds end = ras.events().back().timestamp + 1;

  const core::FilterResult batch = core::filter_events(ras, config);
  const core::MttiResult expected =
      core::compute_mtti(batch.clusters, begin, end);

  StreamingInterruptions streaming(config);
  for (const auto& event : ras.events()) streaming.add(event);
  const core::MttiResult got = streaming.mtti(begin, end);

  EXPECT_EQ(got.interruptions, expected.interruptions);
  EXPECT_DOUBLE_EQ(got.mtti_days, expected.mtti_days);
  EXPECT_DOUBLE_EQ(got.span_days, expected.span_days);
  EXPECT_EQ(got.intervals_days, expected.intervals_days);
}

TEST(StreamingInterruptions, EmptyWindowThrows) {
  StreamingInterruptions s{core::FilterConfig{}};
  EXPECT_THROW(s.mtti(10, 10), DomainError);
}

// ---- ExitBreakdownAccumulator vs batch analyzer -----------------------

TEST(ExitBreakdown, ShardedAccumulationMatchesBatchExactly) {
  const core::JointAnalyzer analyzer(trace().job_log, trace().task_log,
                                     trace().ras_log, trace().io_log, kMira);
  const core::ExitBreakdown batch = analyzer.exit_breakdown();

  // Partition jobs across four accumulators by user hash (as the
  // pipeline shards do), then merge.
  std::vector<ExitBreakdownAccumulator> shards(4);
  for (const auto& job : trace().job_log.jobs())
    shards[mix64(job.user_id) % 4].add(job, kMira);
  ExitBreakdownAccumulator merged;
  for (const auto& s : shards) merged.merge(s);
  const core::ExitBreakdown got = merged.finalize();

  EXPECT_EQ(got.total_jobs, batch.total_jobs);
  EXPECT_EQ(got.total_failures, batch.total_failures);
  EXPECT_DOUBLE_EQ(got.user_caused_share, batch.user_caused_share);
  EXPECT_DOUBLE_EQ(got.system_caused_share, batch.system_caused_share);
  ASSERT_EQ(got.rows.size(), batch.rows.size());
  for (std::size_t i = 0; i < got.rows.size(); ++i) {
    EXPECT_EQ(got.rows[i].exit_class, batch.rows[i].exit_class);
    EXPECT_EQ(got.rows[i].jobs, batch.rows[i].jobs);
    EXPECT_DOUBLE_EQ(got.rows[i].share_of_jobs, batch.rows[i].share_of_jobs);
    EXPECT_DOUBLE_EQ(got.rows[i].share_of_failures,
                     batch.rows[i].share_of_failures);
    // Core-hours are a float sum, so summation order across shards can
    // differ from the batch loop in the last bits.
    EXPECT_NEAR(got.rows[i].core_hours, batch.rows[i].core_hours,
                1e-9 * std::max(1.0, batch.rows[i].core_hours));
  }
}

// ---- shard routing and board keys -------------------------------------

TEST(ShardRouting, DeterministicAndInRange) {
  std::vector<StreamRecord> replayable;
  for (const auto& job : trace().job_log.jobs())
    replayable.push_back({job.end_time, 0, job});
  for (const auto& event : trace().ras_log.events())
    replayable.push_back({event.timestamp, 0, event});
  for (const auto& r : replayable) {
    const std::size_t s = shard_of(r, 4);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, shard_of(r, 4));  // stable
    EXPECT_EQ(shard_of(r, 1), 0u);
  }
}

TEST(ShardRouting, JobRecordsOfOneUserShareAShard) {
  joblog::JobRecord a, b;
  a.user_id = b.user_id = 42;
  a.job_id = 1;
  b.job_id = 2;
  EXPECT_EQ(shard_of({0, 0, a}, 8), shard_of({0, 0, b}, 8));
}

TEST(BoardKey, NameRoundTripsLocation) {
  const auto loc = topology::Location::parse("R12-M1-N09-J03", kMira);
  EXPECT_EQ(board_key_name(board_key(loc)), "R12-M1-N09");
  const auto midplane = topology::Location::parse("R00-M0", kMira);
  EXPECT_EQ(board_key_name(board_key(midplane)), "R00-M0");
  // Distinct boards map to distinct keys.
  EXPECT_NE(board_key(topology::Location::parse("R12-M1-N09", kMira)),
            board_key(topology::Location::parse("R12-M0-N09", kMira)));
}

}  // namespace
}  // namespace failmine::stream
