// Tests for the structured logger: level thresholds, sink fan-out, field
// rendering, and the JSONL file sink (including its ObsError contract).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <unistd.h>

#include "obs/log.hpp"
#include "util/error.hpp"

namespace failmine::obs {
namespace {

/// Sink that stores every record it receives.
class CaptureSink : public LogSink {
 public:
  void write(const LogRecord& record) override { records.push_back(record); }
  std::vector<LogRecord> records;
};

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("failmine_obs_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(LogLevel, NamesRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff})
    EXPECT_EQ(log_level_from_name(log_level_name(level)), level);
  EXPECT_THROW(log_level_from_name("loud"), ParseError);
}

TEST(Logger, ThresholdFiltersRecords) {
  Logger log(LogLevel::kWarn);
  auto sink = std::make_shared<CaptureSink>();
  log.add_sink(sink);

  log.debug("quiet");
  log.info("quiet");
  log.warn("loud");
  log.error("loud");
  ASSERT_EQ(sink->records.size(), 2u);
  EXPECT_EQ(sink->records[0].level, LogLevel::kWarn);
  EXPECT_EQ(sink->records[1].level, LogLevel::kError);

  log.set_level(LogLevel::kDebug);
  log.debug("now visible");
  EXPECT_EQ(sink->records.size(), 3u);

  log.set_level(LogLevel::kOff);
  log.error("dropped");
  EXPECT_EQ(sink->records.size(), 3u);
  EXPECT_FALSE(log.enabled(LogLevel::kError));
}

TEST(Logger, FieldsArriveTypedAndOrdered) {
  Logger log(LogLevel::kInfo);
  auto sink = std::make_shared<CaptureSink>();
  log.add_sink(sink);

  log.info("parse.row_rejected", {{"file", "jobs.csv"},
                                  {"row", 17},
                                  {"ratio", 0.5},
                                  {"fatal", false},
                                  {"count", std::size_t{42}}});
  ASSERT_EQ(sink->records.size(), 1u);
  const LogRecord& r = sink->records[0];
  EXPECT_EQ(r.event, "parse.row_rejected");
  ASSERT_EQ(r.fields.size(), 5u);
  EXPECT_EQ(r.fields[0].key, "file");
  EXPECT_EQ(r.fields[0].value_string(), "jobs.csv");
  EXPECT_EQ(r.fields[1].value_string(), "17");
  EXPECT_EQ(r.fields[2].value_string(), "0.5");
  EXPECT_EQ(r.fields[3].value_string(), "false");
  EXPECT_EQ(r.fields[4].value_string(), "42");
}

TEST(Logger, FansOutToAllSinks) {
  Logger log(LogLevel::kInfo);
  auto a = std::make_shared<CaptureSink>();
  auto b = std::make_shared<CaptureSink>();
  log.add_sink(a);
  log.add_sink(b);
  log.warn("event");
  EXPECT_EQ(a->records.size(), 1u);
  EXPECT_EQ(b->records.size(), 1u);
}

TEST(JsonlFileSink, WritesOneJsonObjectPerRecord) {
  const std::string path = temp_path("sink.jsonl");
  std::remove(path.c_str());
  {
    Logger log(LogLevel::kInfo);
    log.add_sink(std::make_shared<JsonlFileSink>(path));
    log.warn("parse.row_rejected", {{"file", "a\"b.csv"}, {"row", 3}});
    log.info("second");
    log.flush();
  }
  const std::string content = slurp(path);
  // Two lines, each a JSON object.
  ASSERT_EQ(std::count(content.begin(), content.end(), '\n'), 2);
  EXPECT_NE(content.find("\"event\":\"parse.row_rejected\""), std::string::npos);
  EXPECT_NE(content.find("\"file\":\"a\\\"b.csv\""), std::string::npos);
  EXPECT_NE(content.find("\"row\":3"), std::string::npos);
  EXPECT_NE(content.find("\"level\":\"warn\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(JsonlFileSink, UnopenablePathThrowsObsError) {
  EXPECT_THROW(JsonlFileSink("/nonexistent_dir_for_obs_test/x.jsonl"), ObsError);
}

TEST(GlobalLogger, IsSharedAndAcceptsSinks) {
  Logger& a = logger();
  Logger& b = logger();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace failmine::obs
