// Unit tests for core/trend (monthly reliability trend).

#include "core/trend.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace failmine::core {
namespace {

constexpr util::UnixSeconds kOrigin = 1365465600;  // 2013-04-09

EventCluster cluster_at(util::UnixSeconds t) {
  EventCluster c;
  c.first_time = t;
  c.last_time = t;
  c.member_count = 1;
  return c;
}

TEST(InterruptionTrend, CountsPerCalendarMonth) {
  const util::UnixSeconds end = kOrigin + 120 * util::kSecondsPerDay;
  std::vector<EventCluster> clusters = {
      cluster_at(kOrigin + 1 * util::kSecondsPerDay),
      cluster_at(kOrigin + 2 * util::kSecondsPerDay),
      cluster_at(kOrigin + 40 * util::kSecondsPerDay),
      cluster_at(kOrigin + 100 * util::kSecondsPerDay),
  };
  const auto r = interruption_trend(clusters, kOrigin, end);
  // Apr 9 + 120 days lands in early August: Apr..Aug = 5 calendar months.
  ASSERT_EQ(r.monthly_counts.size(), 5u);
  EXPECT_EQ(r.monthly_counts[0], 2u);
  EXPECT_EQ(r.monthly_counts[1], 1u);
  EXPECT_EQ(r.monthly_counts[3], 1u);
}

TEST(InterruptionTrend, StationaryStreamHasSmallRelativeSlope) {
  const util::UnixSeconds end = kOrigin + 600 * util::kSecondsPerDay;
  std::vector<EventCluster> clusters;
  // One interruption every 5 days: perfectly stationary.
  for (util::UnixSeconds t = kOrigin; t < end; t += 5 * util::kSecondsPerDay)
    clusters.push_back(cluster_at(t));
  const auto r = interruption_trend(clusters, kOrigin, end);
  EXPECT_NEAR(r.relative_slope, 0.0, 0.02);
  EXPECT_NEAR(r.mean_per_month, 6.0, 0.5);
}

TEST(InterruptionTrend, DetectsGrowingRate) {
  const util::UnixSeconds end = kOrigin + 300 * util::kSecondsPerDay;
  std::vector<EventCluster> clusters;
  // Month m gets ~m interruptions.
  for (int month = 0; month < 10; ++month) {
    for (int k = 0; k < month; ++k) {
      clusters.push_back(cluster_at(kOrigin +
                                    (static_cast<util::UnixSeconds>(month) * 30 + k) *
                                        util::kSecondsPerDay));
    }
  }
  const auto r = interruption_trend(clusters, kOrigin, end);
  EXPECT_GT(r.fit.slope, 0.5);
  EXPECT_GT(r.relative_slope, 0.1);
}

TEST(InterruptionTrend, ValidatesWindow) {
  EXPECT_THROW(interruption_trend({}, kOrigin, kOrigin), failmine::DomainError);
  // < 3 months of span.
  EXPECT_THROW(
      interruption_trend({}, kOrigin, kOrigin + 20 * util::kSecondsPerDay),
      failmine::DomainError);
}

TEST(FailureTrend, CountsFailedJobsByEndMonth) {
  joblog::JobRecord ok;
  ok.job_id = 1;
  ok.submit_time = kOrigin;
  ok.start_time = kOrigin;
  ok.end_time = kOrigin + 10;
  ok.nodes_used = 512;
  ok.task_count = 1;
  ok.requested_walltime = 100;
  joblog::JobRecord bad = ok;
  bad.job_id = 2;
  bad.exit_class = joblog::ExitClass::kUserAppError;
  bad.exit_code = 1;
  bad.end_time = kOrigin + 45 * util::kSecondsPerDay;
  const joblog::JobLog jobs({ok, bad});
  const auto r =
      failure_trend(jobs, kOrigin, kOrigin + 100 * util::kSecondsPerDay);
  ASSERT_GE(r.monthly_counts.size(), 3u);
  EXPECT_EQ(r.monthly_counts[0], 0u);  // successful job doesn't count
  EXPECT_EQ(r.monthly_counts[1], 1u);
}

}  // namespace
}  // namespace failmine::core
