// Parameterized cross-seed invariants: every structural guarantee of the
// simulator must hold for arbitrary seeds, not just the default one.

#include <gtest/gtest.h>

#include <set>

#include "core/report.hpp"
#include "sim/simulator.hpp"

namespace failmine::sim {
namespace {

class SimSeedInvariants : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  SimSeedInvariants() {
    SimConfig config = SimConfig::test_scale();
    config.scale = 0.02;
    config.seed = GetParam();
    config_ = config;
    trace_ = simulate(config);
  }
  SimConfig config_;
  SimResult trace_;
};

TEST_P(SimSeedInvariants, FailureShareStaysCalibrated) {
  std::size_t failures = 0, user = 0;
  for (const auto& j : trace_.job_log.jobs()) {
    if (!j.failed()) continue;
    ++failures;
    if (joblog::is_user_caused(j.exit_class)) ++user;
  }
  ASSERT_GT(failures, 100u);
  const double rate = static_cast<double>(failures) /
                      static_cast<double>(trace_.job_log.size());
  EXPECT_NEAR(rate, 0.198, 0.025);
  EXPECT_GT(static_cast<double>(user) / static_cast<double>(failures), 0.98);
}

TEST_P(SimSeedInvariants, TaskStructureConsistent) {
  for (const auto& j : trace_.job_log.jobs()) {
    const auto tasks = trace_.task_log.tasks_of_job(j.job_id);
    ASSERT_EQ(tasks.size(), j.task_count);
    ASSERT_FALSE(tasks.empty());
    EXPECT_EQ(tasks.front().start_time, j.start_time);
    EXPECT_EQ(tasks.back().end_time, j.end_time);
  }
}

TEST_P(SimSeedInvariants, SystemKillsAlwaysHaveEpisodes) {
  std::set<std::uint64_t> victims;
  for (const auto& ep : trace_.episodes)
    if (ep.victim_job) victims.insert(*ep.victim_job);
  for (const auto& j : trace_.job_log.jobs()) {
    if (joblog::is_system_caused(j.exit_class))
      EXPECT_TRUE(victims.contains(j.job_id)) << "seed " << GetParam();
  }
}

TEST_P(SimSeedInvariants, StructuralTakeawaysHold) {
  const core::JointAnalyzer analyzer(trace_.job_log, trace_.task_log,
                                     trace_.ras_log, trace_.io_log,
                                     config_.machine);
  core::ReportConfig rc;
  rc.trace_scale = config_.scale;
  const auto takeaways = core::evaluate_takeaways(analyzer, rc);
  for (const auto& t : takeaways) {
    // Count-calibrated and small-sample claims are noise-exempt at 1/50
    // scale (same exemptions as the default-seed report test).
    if (t.id == "T-A1" || t.id == "T-F2" || t.id == "T-E1" ||
        t.id == "T-C4" || t.id == "T-C5")
      continue;
    EXPECT_TRUE(t.pass) << "seed " << GetParam() << " " << t.id << ": "
                        << t.claim << " measured " << t.measured;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimSeedInvariants,
                         ::testing::Values(7ULL, 1234567ULL, 0xABCDEFULL),
                         [](const auto& info) {
                           return "seed_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace failmine::sim
