// Unit tests for core/mtbf (grouped MTBF + availability).

#include "core/mtbf.hpp"

#include <gtest/gtest.h>

#include "raslog/message_catalog.hpp"
#include "util/error.hpp"

namespace failmine::core {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

EventCluster cluster(util::UnixSeconds t, const char* msg, const char* loc) {
  EventCluster c;
  c.first_time = t;
  c.last_time = t;
  c.member_count = 1;
  const auto& def = raslog::message_by_id(msg);
  c.representative.timestamp = t;
  c.representative.message_id = msg;
  c.representative.severity = def.severity;
  c.representative.component = def.component;
  c.representative.category = def.category;
  c.representative.location = topology::Location::parse(loc, kMira);
  return c;
}

std::vector<EventCluster> sample_clusters() {
  return {
      cluster(1 * 86400, "00010005", "R00-M0-N00-J00"),  // DDR / MEMORY
      cluster(3 * 86400, "00010005", "R01-M0-N00-J00"),  // DDR / MEMORY
      cluster(5 * 86400, "00040004", "R02-M0-N03"),      // ND / NETWORK
      cluster(7 * 86400, "00200003", "R03"),             // BULKPOWER / POWER (rack)
  };
}

TEST(MtbfByComponent, GroupsAndShares) {
  const auto rows = mtbf_by_component(sample_clusters(), 0, 10 * 86400);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows.at(raslog::Component::kDdr).interruptions, 2u);
  EXPECT_DOUBLE_EQ(rows.at(raslog::Component::kDdr).mtbf_days, 5.0);
  EXPECT_DOUBLE_EQ(rows.at(raslog::Component::kDdr).share, 0.5);
  EXPECT_EQ(rows.at(raslog::Component::kNd).interruptions, 1u);
  EXPECT_DOUBLE_EQ(rows.at(raslog::Component::kNd).mtbf_days, 10.0);
}

TEST(MtbfByCategory, GroupsByCategory) {
  const auto rows = mtbf_by_category(sample_clusters(), 0, 10 * 86400);
  EXPECT_EQ(rows.at(raslog::Category::kMemory).interruptions, 2u);
  EXPECT_EQ(rows.at(raslog::Category::kNetwork).interruptions, 1u);
  EXPECT_EQ(rows.at(raslog::Category::kPower).interruptions, 1u);
}

TEST(Mtbf, WindowFiltersClusters) {
  const auto rows = mtbf_by_component(sample_clusters(), 0, 4 * 86400);
  ASSERT_EQ(rows.size(), 1u);  // only the two DDR clusters fall in window
  EXPECT_EQ(rows.at(raslog::Component::kDdr).interruptions, 2u);
}

TEST(Mtbf, EmptyWindowRejected) {
  EXPECT_THROW(mtbf_by_component({}, 5, 5), failmine::DomainError);
}

TEST(Availability, HandComputed) {
  AvailabilityConfig config;
  config.mean_repair_hours = 4.0;
  config.default_blast_midplanes = 1;
  const auto r =
      estimate_availability(sample_clusters(), kMira, 0, 10 * 86400, config);
  EXPECT_EQ(r.interruptions, 4u);
  EXPECT_DOUBLE_EQ(r.span_days, 10.0);
  EXPECT_DOUBLE_EQ(r.total_midplane_hours, 96.0 * 10.0 * 24.0);
  // Three midplane-level clusters x 1 midplane + one rack-level x 2.
  EXPECT_DOUBLE_EQ(r.lost_midplane_hours, (3.0 * 1 + 1.0 * 2) * 4.0);
  EXPECT_NEAR(r.availability, 1.0 - 20.0 / 23040.0, 1e-12);
}

TEST(Availability, NoInterruptionsIsFullyAvailable) {
  const auto r = estimate_availability({}, kMira, 0, 86400);
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
  EXPECT_EQ(r.interruptions, 0u);
}

TEST(Availability, ValidatesConfig) {
  AvailabilityConfig bad;
  bad.mean_repair_hours = -1.0;
  EXPECT_THROW(estimate_availability({}, kMira, 0, 86400, bad),
               failmine::DomainError);
  bad = AvailabilityConfig{};
  bad.default_blast_midplanes = 0;
  EXPECT_THROW(estimate_availability({}, kMira, 0, 86400, bad),
               failmine::DomainError);
}

}  // namespace
}  // namespace failmine::core
