// Tests for core/distfit_study: the per-exit-class fitting study must
// recover the simulator's generative families (takeaway T-C).

#include "core/distfit_study.hpp"

#include <gtest/gtest.h>

#include "distfit/fit.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace failmine::core {
namespace {

class StudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new sim::SimResult(sim::simulate(sim::SimConfig::test_scale()));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static sim::SimResult* result_;
};

sim::SimResult* StudyTest::result_ = nullptr;

TEST_F(StudyTest, RuntimeSampleExtractsOnlyTheClass) {
  const auto sample =
      runtime_sample(result_->job_log, joblog::ExitClass::kUserAppError);
  std::size_t expected = 0;
  for (const auto& j : result_->job_log.jobs())
    if (j.exit_class == joblog::ExitClass::kUserAppError) ++expected;
  EXPECT_EQ(sample.size(), expected);
  for (double v : sample) EXPECT_GT(v, 0.0);
}

TEST_F(StudyTest, StudyCoversThePopulatedFailureClasses) {
  const auto rows = fit_by_exit_class(result_->job_log, 50);
  ASSERT_GE(rows.size(), 3u);
  for (const auto& row : rows) {
    EXPECT_TRUE(joblog::is_failure(row.exit_class));
    EXPECT_NE(row.exit_class, joblog::ExitClass::kWalltimeLimit);
    EXPECT_GE(row.sample_size, 50u);
    EXPECT_FALSE(row.fits.empty());
    EXPECT_LT(row.best_by_ks, row.fits.size());
  }
}

TEST_F(StudyTest, GenerativeFamiliesAreRecovered) {
  const auto rows = fit_by_exit_class(result_->job_log, 50);
  for (const auto& row : rows) {
    const std::string best = best_family_name(row);
    switch (row.exit_class) {
      case joblog::ExitClass::kUserAppError:
        EXPECT_TRUE(best == "weibull" || best == "gamma") << best;
        break;
      case joblog::ExitClass::kUserKill:
        EXPECT_EQ(best, "pareto");
        break;
      case joblog::ExitClass::kUserConfigError:
        EXPECT_TRUE(best == "erlang" || best == "gamma" ||
                    best == "exponential")
            << best;
        break;
      default:
        break;  // small-system classes: no claim at this sample size
    }
  }
}

TEST_F(StudyTest, WalltimeInclusionIsOptIn) {
  const auto without = fit_by_exit_class(result_->job_log, 50, false);
  for (const auto& row : without)
    EXPECT_NE(row.exit_class, joblog::ExitClass::kWalltimeLimit);
}

TEST(FitSampleUnit, RanksByAllCriteria) {
  util::Rng rng(5);
  const auto sample = distfit::Weibull(0.8, 100.0).sample_many(rng, 3000);
  const ClassFitRow row = fit_sample(sample);
  EXPECT_EQ(row.sample_size, 3000u);
  EXPECT_LT(row.best_by_ks, row.fits.size());
  EXPECT_LT(row.best_by_aic, row.fits.size());
  EXPECT_LT(row.best_by_bic, row.fits.size());
  EXPECT_EQ(best_family_name(row), "weibull");
}

TEST(FitSampleUnit, TinySampleRejected) {
  EXPECT_THROW(fit_sample({1.0}), failmine::DomainError);
}

}  // namespace
}  // namespace failmine::core
