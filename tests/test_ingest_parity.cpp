// Serial vs parallel ingest parity on a real simulated trace: for all
// four log types the mmap engine must produce element-wise identical
// records at every thread count, identical parse.* metric deltas, and —
// on corrupted input — the identical error the serial reader throws.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "ingest/loader.hpp"
#include "iolog/io_record.hpp"
#include "joblog/job.hpp"
#include "obs/metrics.hpp"
#include "raslog/event.hpp"
#include "sim/simulator.hpp"
#include "tasklog/task.hpp"
#include "util/error.hpp"

namespace failmine {
namespace {

ingest::LoadOptions mapped_options(unsigned threads) {
  ingest::LoadOptions options;
  options.threads = threads;
  // A tiny floor keeps the plan genuinely multi-chunk even on the small
  // test-scale CSVs.
  options.min_chunk_bytes = 512;
  return options;
}

struct ParseDeltas {
  std::uint64_t lines_total;
  std::uint64_t lines_rejected;
  std::uint64_t records;

  static ParseDeltas snap(const char* records_counter) {
    obs::MetricsRegistry& m = obs::metrics();
    return {m.counter("parse.lines_total").value(),
            m.counter("parse.lines_rejected").value(),
            m.counter(records_counter).value()};
  }
  ParseDeltas since(const ParseDeltas& base) const {
    return {lines_total - base.lines_total,
            lines_rejected - base.lines_rejected, records - base.records};
  }
  friend bool operator==(const ParseDeltas&, const ParseDeltas&) = default;
};

class IngestParity : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(
        (std::filesystem::temp_directory_path() /
         ("failmine_ingest_parity_" + std::to_string(::getpid())))
            .string());
    std::filesystem::create_directories(*dir_);
    sim::SimConfig config = sim::SimConfig::test_scale();
    config.scale = 0.002;
    trace_ = new sim::SimResult(sim::simulate(config));
    machine_ = new topology::MachineConfig(config.machine);
    sim::write_dataset(*trace_, *dir_);
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete trace_;
    delete machine_;
    delete dir_;
    trace_ = nullptr;
    machine_ = nullptr;
    dir_ = nullptr;
  }

  static std::string path(const char* name) { return *dir_ + "/" + name; }

  static std::string* dir_;
  static sim::SimResult* trace_;
  static topology::MachineConfig* machine_;
};

std::string* IngestParity::dir_ = nullptr;
sim::SimResult* IngestParity::trace_ = nullptr;
topology::MachineConfig* IngestParity::machine_ = nullptr;

/// Loads one log serially and through the mmap engine at 1, 2 and 8
/// threads, asserting identical record sequences and parse.* deltas.
/// `load` is `Records(const ingest::LoadOptions&, ingest::Engine)`.
template <class LoadFn>
void expect_parity(const char* records_counter, LoadFn&& load) {
  ParseDeltas before = ParseDeltas::snap(records_counter);
  const auto serial =
      load(ingest::LoadOptions{}, ingest::Engine::kSerial);
  const ParseDeltas serial_delta =
      ParseDeltas::snap(records_counter).since(before);

  for (unsigned threads : {1u, 2u, 8u}) {
    before = ParseDeltas::snap(records_counter);
    const auto parallel = load(mapped_options(threads), ingest::Engine::kMapped);
    const ParseDeltas delta = ParseDeltas::snap(records_counter).since(before);
    ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.size(); ++i)
      ASSERT_EQ(parallel[i], serial[i])
          << "threads=" << threads << " record=" << i;
    EXPECT_EQ(delta, serial_delta) << "threads=" << threads;
  }
}

TEST_F(IngestParity, RasLogMatchesSerial) {
  expect_parity("parse.raslog.records",
                [](const ingest::LoadOptions& o, ingest::Engine e) {
                  return raslog::RasLog::read_csv(path("ras.csv"), *machine_, o,
                                                  e)
                      .events();
                });
}

TEST_F(IngestParity, JobLogMatchesSerial) {
  expect_parity("parse.joblog.records",
                [](const ingest::LoadOptions& o, ingest::Engine e) {
                  return joblog::JobLog::read_csv(path("jobs.csv"), o, e).jobs();
                });
}

TEST_F(IngestParity, TaskLogMatchesSerial) {
  expect_parity("parse.tasklog.records",
                [](const ingest::LoadOptions& o, ingest::Engine e) {
                  return tasklog::TaskLog::read_csv(path("tasks.csv"), o, e)
                      .tasks();
                });
}

TEST_F(IngestParity, IoLogMatchesSerial) {
  expect_parity("parse.iolog.records",
                [](const ingest::LoadOptions& o, ingest::Engine e) {
                  return iolog::IoLog::read_csv(path("io.csv"), o, e).records();
                });
}

TEST_F(IngestParity, StreamFallbackMatchesMapped) {
  ingest::LoadOptions mapped = mapped_options(4);
  ingest::LoadOptions streamed = mapped;
  streamed.force_stream = true;
  EXPECT_EQ(joblog::JobLog::read_csv(path("jobs.csv"), mapped,
                                     ingest::Engine::kMapped)
                .jobs(),
            joblog::JobLog::read_csv(path("jobs.csv"), streamed,
                                     ingest::Engine::kMapped)
                .jobs());
}

TEST_F(IngestParity, LoadDatasetDefaultsToIngestEngine) {
  obs::MetricsRegistry& m = obs::metrics();
  const std::uint64_t bytes_before = m.counter("ingest.bytes_mapped").value();
  const sim::SimResult loaded = sim::load_dataset(*dir_, *machine_);
  EXPECT_EQ(loaded.job_log.size(), trace_->job_log.size());
  EXPECT_EQ(loaded.ras_log.size(), trace_->ras_log.size());
  EXPECT_EQ(loaded.task_log.size(), trace_->task_log.size());
  EXPECT_EQ(loaded.io_log.size(), trace_->io_log.size());
  // The default path goes through the mmap engine, so the ingest
  // counters must have advanced by at least the four files' bytes.
  EXPECT_GT(m.counter("ingest.bytes_mapped").value(), bytes_before);
}

TEST_F(IngestParity, CorruptedRowFailsIdenticallyToSerial) {
  // Append a malformed row (wrong arity) to a copy of the job log; the
  // parallel engine must reject it with the serial reader's exact
  // message and metric deltas.
  const std::string corrupted = *dir_ + "/jobs_corrupted.csv";
  std::filesystem::copy_file(path("jobs.csv"), corrupted,
                             std::filesystem::copy_options::overwrite_existing);
  { std::ofstream(corrupted, std::ios::app) << "999,bad,row\n"; }

  std::string serial_error;
  ParseDeltas before = ParseDeltas::snap("parse.joblog.records");
  try {
    joblog::JobLog::read_csv(corrupted, {}, ingest::Engine::kSerial);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    serial_error = e.what();
  }
  const ParseDeltas serial_delta =
      ParseDeltas::snap("parse.joblog.records").since(before);
  EXPECT_EQ(serial_delta.lines_rejected, 1u);

  for (unsigned threads : {1u, 2u, 8u}) {
    before = ParseDeltas::snap("parse.joblog.records");
    try {
      joblog::JobLog::read_csv(corrupted, mapped_options(threads),
                               ingest::Engine::kMapped);
      FAIL() << "expected ParseError (threads=" << threads << ")";
    } catch (const ParseError& e) {
      EXPECT_EQ(std::string(e.what()), serial_error)
          << "threads=" << threads;
    }
    EXPECT_EQ(ParseDeltas::snap("parse.joblog.records").since(before),
              serial_delta)
        << "threads=" << threads;
  }
  std::filesystem::remove(corrupted);
}

}  // namespace
}  // namespace failmine
