// Unit tests for the parallel zero-copy ingest engine: quote-aware
// chunk planning, the in-chunk record cursor, mmap/stream file access,
// the zero-copy field splitter and the parallel loader's determinism
// (records, metrics and error reporting identical to the serial path).

#include "ingest/chunk.hpp"
#include "ingest/loader.hpp"
#include "ingest/mapped_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace failmine::ingest {
namespace {

// ---------------------------------------------------------------- helpers

/// All records of `data` via one cursor (the chunking-free reference).
std::vector<std::string> records_of(std::string_view data) {
  std::vector<std::string> out;
  CsvCursor cursor(data);
  std::string_view record;
  while (cursor.next(record)) out.emplace_back(record);
  return out;
}

/// All records of `data` re-assembled from a chunk plan.
std::vector<std::string> records_via_chunks(std::string_view data,
                                            std::size_t target_chunks,
                                            std::size_t min_chunk_bytes) {
  std::vector<std::string> out;
  for (const Chunk& chunk : plan_chunks(data, target_chunks, min_chunk_bytes)) {
    CsvCursor cursor(chunk.data);
    std::string_view record;
    while (cursor.next(record)) out.emplace_back(record);
  }
  return out;
}

/// Asserts the chunk plan partitions `data` exactly and preserves the
/// record sequence, for a handful of chunk-count targets.
void expect_plan_is_partition(std::string_view data) {
  const std::vector<std::string> reference = records_of(data);
  for (std::size_t target : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                             std::size_t{7}, std::size_t{64}}) {
    const auto chunks = plan_chunks(data, target, 1);
    std::string reassembled;
    for (const auto& c : chunks) reassembled += std::string(c.data);
    EXPECT_EQ(reassembled, data) << "target=" << target;
    EXPECT_EQ(records_via_chunks(data, target, 1), reference)
        << "target=" << target;
    for (std::size_t i = 0; i < chunks.size(); ++i)
      EXPECT_EQ(chunks[i].index, i);
  }
}

class IngestFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("failmine_ingest_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".csv"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write(std::string_view content) {
    std::ofstream out(path_, std::ios::binary);
    out << content;
  }

  std::string path_;
};

// ---------------------------------------------------------------- chunker

TEST(IngestChunker, EmptyInputYieldsNoChunks) {
  EXPECT_TRUE(plan_chunks("", 8).empty());
}

TEST(IngestChunker, FileSmallerThanOneChunkStaysWhole) {
  const std::string data = "1,a\n2,b\n3,c\n";
  const auto chunks = plan_chunks(data, 8);  // default 64 KiB floor
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].data, data);
}

TEST(IngestChunker, SplitsPlainRecordsOnNewlines) {
  std::string data;
  for (int i = 0; i < 100; ++i) data += std::to_string(i) + ",x\n";
  expect_plan_is_partition(data);
}

TEST(IngestChunker, QuotedNewlineNeverSplitsARecord) {
  // Every record carries a quoted '\n'; a parity-blind chunker would cut
  // half the records in two at some target count.
  std::string data;
  for (int i = 0; i < 60; ++i)
    data += std::to_string(i) + ",\"line one\nline two\"\n";
  expect_plan_is_partition(data);
  for (const auto& record : records_of(data))
    EXPECT_NE(record.find('\n'), std::string::npos);
}

TEST(IngestChunker, EscapedQuotesStraddlingBoundariesKeepParity) {
  // Runs of "" flip parity twice; records alternate between quoted text
  // with escaped quotes and quoted newlines so most candidate offsets
  // land inside some quoted region.
  std::string data;
  for (int i = 0; i < 60; ++i) {
    data += std::to_string(i) + ",\"say \"\"hi\"\"\"\n";
    data += std::to_string(i) + ",\"a\nb\",\"\"\"\"\n";
  }
  expect_plan_is_partition(data);
}

TEST(IngestChunker, TrailingRecordWithoutNewline) {
  const std::string data = "1,a\n2,b\n3,c";  // no trailing '\n'
  expect_plan_is_partition(data);
  EXPECT_EQ(records_of(data),
            (std::vector<std::string>{"1,a", "2,b", "3,c"}));
}

TEST(IngestChunker, ChunkSizeFloorLimitsChunkCount) {
  std::string data;
  for (int i = 0; i < 100; ++i) data += std::to_string(i) + ",x\n";
  // ~590 bytes with a 300-byte floor: at most 1 boundary may be placed.
  const auto chunks = plan_chunks(data, 64, 300);
  EXPECT_LE(chunks.size(), 2u);
}

// ----------------------------------------------------------------- cursor

TEST(IngestCursor, StripsCrLfTerminators) {
  EXPECT_EQ(records_of("1,a\r\n2,b\r\n"),
            (std::vector<std::string>{"1,a", "2,b"}));
}

TEST(IngestCursor, EmptyLinesAreRecords) {
  EXPECT_EQ(records_of("a\n\nb\n"), (std::vector<std::string>{"a", "", "b"}));
}

TEST(IngestCursor, UnterminatedQuoteRunsToEndOfChunk) {
  // Every byte after the stray quote is "inside quotes", including the
  // final newline; split_csv_fields rejects the record either way.
  EXPECT_EQ(records_of("1,\"oops\n2,b\n"),
            (std::vector<std::string>{"1,\"oops\n2,b\n"}));
}

// ----------------------------------------------------------- mapped file

TEST_F(IngestFileTest, MapsRegularFile) {
  write("hello,world\n");
  MappedFile file(path_);
  EXPECT_TRUE(file.mapped());
  EXPECT_EQ(file.view(), "hello,world\n");
}

TEST_F(IngestFileTest, StreamFallbackReadsIdenticalBytes) {
  std::string content;
  for (int i = 0; i < 5000; ++i) content += std::to_string(i) + ",payload\n";
  write(content);
  MappedFile mapped(path_);
  MappedFile streamed(path_, /*force_stream=*/true);
  EXPECT_TRUE(mapped.mapped());
  EXPECT_FALSE(streamed.mapped());
  EXPECT_EQ(mapped.view(), streamed.view());
  EXPECT_EQ(streamed.view(), content);
}

TEST_F(IngestFileTest, EmptyFileHasEmptyView) {
  write("");
  MappedFile file(path_);
  EXPECT_TRUE(file.view().empty());
  EXPECT_EQ(file.size(), 0u);
}

TEST(IngestMappedFile, MissingFileThrows) {
  EXPECT_THROW(MappedFile("/nonexistent/ingest/file.csv"), IoError);
}

TEST_F(IngestFileTest, MoveTransfersView) {
  write("a,b\n");
  MappedFile src(path_, /*force_stream=*/true);
  MappedFile dst(std::move(src));
  EXPECT_EQ(dst.view(), "a,b\n");
}

// ------------------------------------------------------ zero-copy fields

std::vector<std::string> fields_as_strings(const util::FieldVec& fields) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < fields.size(); ++i)
    out.emplace_back(fields[i]);
  return out;
}

TEST(IngestCsvFields, AgreesWithStringSplitter) {
  const std::vector<std::string> lines = {
      "a,b,c",
      ",,",
      "",
      R"("a,b","say ""hi""")",
      "plain,\"quoted\",end",
      "\"multi\nline\",x",
      "\"\",\"\"\"\"",
  };
  util::FieldVec fields;
  for (const auto& line : lines) {
    util::split_csv_fields(line, fields);
    EXPECT_EQ(fields_as_strings(fields), util::split_csv_line(line))
        << "line=" << line;
  }
}

TEST(IngestCsvFields, PlainFieldsAreViewsIntoTheLine) {
  const std::string line = "alpha,\"beta,gamma\",delta";
  util::FieldVec fields;
  util::split_csv_fields(line, fields);
  ASSERT_EQ(fields.size(), 3u);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const std::string_view v = fields[i];
    EXPECT_GE(v.data(), line.data());
    EXPECT_LE(v.data() + v.size(), line.data() + line.size());
  }
}

TEST(IngestCsvFields, EscapedQuotesUseScratchAndSurviveGrowth) {
  // Many escaped-quote fields in one line: the scratch buffer must grow
  // mid-parse without dangling the refs recorded earlier.
  std::string line;
  std::vector<std::string> expected;
  for (int i = 0; i < 50; ++i) {
    if (i > 0) line += ',';
    line += "\"f" + std::to_string(i) + " says \"\"" +
            std::string(16, 'x') + "\"\"\"";
    expected.push_back("f" + std::to_string(i) + " says \"" +
                       std::string(16, 'x') + "\"");
  }
  util::FieldVec fields;
  util::split_csv_fields(line, fields);
  EXPECT_EQ(fields_as_strings(fields), expected);
}

TEST(IngestCsvFields, ReusedAcrossRowsWithoutLeakingState) {
  util::FieldVec fields;
  util::split_csv_fields("a,\"b\"\"c\",d", fields);
  ASSERT_EQ(fields.size(), 3u);
  util::split_csv_fields("x,y", fields);
  EXPECT_EQ(fields_as_strings(fields), (std::vector<std::string>{"x", "y"}));
}

TEST(IngestCsvFields, UnterminatedQuoteThrows) {
  util::FieldVec fields;
  EXPECT_THROW(util::split_csv_fields("\"abc", fields), ParseError);
}

// ----------------------------------------------------------------- loader

struct TestRecord {
  std::uint64_t id = 0;
  std::string text;

  friend bool operator==(const TestRecord&, const TestRecord&) = default;
};

constexpr char kPoisonText[] = "poison";

TestRecord parse_test_record(const util::FieldVec& row) {
  TestRecord r;
  r.id = util::parse_uint(row[0]);
  r.text = std::string(row[1]);
  if (r.text == kPoisonText)
    throw ParseError("record " + std::to_string(r.id) + " is poisoned");
  return r;
}

const std::vector<std::string> kTestHeader = {"id", "text"};
constexpr char kTestCounter[] = "test.ingest.records";

std::vector<TestRecord> load_test(const std::string& path,
                                  const LoadOptions& options) {
  return load_csv<TestRecord>(path, kTestHeader, "testlog", "test log",
                              kTestCounter, parse_test_record, options);
}

LoadOptions tiny_chunks(unsigned threads) {
  LoadOptions options;
  options.threads = threads;
  options.min_chunk_bytes = 1;  // force a real multi-chunk plan
  return options;
}

struct ParseCounters {
  std::uint64_t lines_total;
  std::uint64_t lines_rejected;
  std::uint64_t records;

  static ParseCounters snap() {
    obs::MetricsRegistry& m = obs::metrics();
    return {m.counter("parse.lines_total").value(),
            m.counter("parse.lines_rejected").value(),
            m.counter(kTestCounter).value()};
  }
  ParseCounters delta_since(const ParseCounters& base) const {
    return {lines_total - base.lines_total,
            lines_rejected - base.lines_rejected, records - base.records};
  }
};

TEST_F(IngestFileTest, LoadsRecordsInFileOrder) {
  std::string content = "id,text\n";
  std::vector<TestRecord> expected;
  for (std::uint64_t i = 0; i < 500; ++i) {
    content += std::to_string(i) + ",row " + std::to_string(i) + "\n";
    expected.push_back({i, "row " + std::to_string(i)});
  }
  write(content);
  for (unsigned threads : {1u, 2u, 8u}) {
    const ParseCounters before = ParseCounters::snap();
    const auto records = load_test(path_, tiny_chunks(threads));
    const ParseCounters d = ParseCounters::snap().delta_since(before);
    EXPECT_EQ(records, expected) << "threads=" << threads;
    EXPECT_EQ(d.lines_total, 500u);
    EXPECT_EQ(d.records, 500u);
    EXPECT_EQ(d.lines_rejected, 0u);
  }
}

TEST_F(IngestFileTest, QuotedFieldsSurviveParallelLoad) {
  std::string content = "id,text\n";
  std::vector<TestRecord> expected;
  for (std::uint64_t i = 0; i < 200; ++i) {
    content += std::to_string(i) + ",\"line one\nsays \"\"hi\"\"\"\n";
    expected.push_back({i, "line one\nsays \"hi\""});
  }
  write(content);
  EXPECT_EQ(load_test(path_, tiny_chunks(8)), expected);
}

TEST_F(IngestFileTest, StreamFallbackLoadsIdentically) {
  std::string content = "id,text\n";
  for (std::uint64_t i = 0; i < 300; ++i)
    content += std::to_string(i) + ",t\n";
  write(content);
  LoadOptions mapped = tiny_chunks(4);
  LoadOptions streamed = mapped;
  streamed.force_stream = true;
  EXPECT_EQ(load_test(path_, mapped), load_test(path_, streamed));
}

TEST_F(IngestFileTest, EmptyFileThrows) {
  write("");
  try {
    load_test(path_, tiny_chunks(2));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.what(), "parse error: empty CSV file: " + path_);
  }
}

TEST_F(IngestFileTest, HeaderMismatchThrows) {
  write("wrong,header\n1,a\n");
  try {
    load_test(path_, tiny_chunks(2));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.what(), "parse error: unexpected test log header in " + path_);
  }
}

TEST_F(IngestFileTest, HeaderOnlyFileLoadsZeroRecords) {
  write("id,text\n");
  const ParseCounters before = ParseCounters::snap();
  EXPECT_TRUE(load_test(path_, tiny_chunks(4)).empty());
  const ParseCounters d = ParseCounters::snap().delta_since(before);
  EXPECT_EQ(d.lines_total, 0u);
  EXPECT_EQ(d.records, 0u);
}

TEST_F(IngestFileTest, ArityMismatchReportsSerialRowNumber) {
  std::string content = "id,text\n";
  for (std::uint64_t i = 0; i < 100; ++i)
    content += std::to_string(i) + ",ok\n";
  content += "100,too,many\n";  // data row 101 → file row 102
  for (std::uint64_t i = 101; i < 200; ++i)
    content += std::to_string(i) + ",ok\n";
  write(content);
  for (unsigned threads : {1u, 8u}) {
    const ParseCounters before = ParseCounters::snap();
    try {
      load_test(path_, tiny_chunks(threads));
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.what(), "parse error: row 102 of " + path_ +
                              " has 3 fields, expected 2");
    }
    const ParseCounters d = ParseCounters::snap().delta_since(before);
    EXPECT_EQ(d.lines_total, 101u) << "threads=" << threads;
    EXPECT_EQ(d.records, 100u);
    EXPECT_EQ(d.lines_rejected, 1u);
  }
}

TEST_F(IngestFileTest, RecordErrorPropagatesWithCounters) {
  std::string content = "id,text\n";
  for (std::uint64_t i = 0; i < 50; ++i)
    content += std::to_string(i) + ",ok\n";
  content += "50," + std::string(kPoisonText) + "\n";
  for (std::uint64_t i = 51; i < 100; ++i)
    content += std::to_string(i) + ",ok\n";
  write(content);
  const ParseCounters before = ParseCounters::snap();
  try {
    load_test(path_, tiny_chunks(8));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(std::string(e.what()), "parse error: record 50 is poisoned");
  }
  const ParseCounters d = ParseCounters::snap().delta_since(before);
  EXPECT_EQ(d.lines_total, 51u);
  EXPECT_EQ(d.records, 50u);
  EXPECT_EQ(d.lines_rejected, 1u);
}

TEST_F(IngestFileTest, FirstBadRowInFileOrderWinsAcrossChunks) {
  // Two bad rows in different chunks: whatever order the workers hit
  // them, the error must name the earlier one, like the serial reader.
  std::string content = "id,text\n";
  for (std::uint64_t i = 0; i < 40; ++i)
    content += std::to_string(i) + ",ok\n";
  content += "40," + std::string(kPoisonText) + "\n";  // earlier failure
  for (std::uint64_t i = 41; i < 80; ++i)
    content += std::to_string(i) + ",ok\n";
  content += "80,too,many\n";  // later failure, different kind
  write(content);
  for (int attempt = 0; attempt < 10; ++attempt) {
    try {
      load_test(path_, tiny_chunks(8));
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_EQ(std::string(e.what()), "parse error: record 40 is poisoned");
    }
  }
}

TEST_F(IngestFileTest, IngestCountersAdvance) {
  write("id,text\n1,a\n2,b\n");
  obs::MetricsRegistry& m = obs::metrics();
  const std::uint64_t bytes_before = m.counter("ingest.bytes_mapped").value();
  const std::uint64_t chunks_before = m.counter("ingest.chunks").value();
  load_test(path_, tiny_chunks(2));
  EXPECT_EQ(m.counter("ingest.bytes_mapped").value() - bytes_before,
            std::string("id,text\n1,a\n2,b\n").size());
  EXPECT_GE(m.counter("ingest.chunks").value() - chunks_before, 1u);
}

}  // namespace
}  // namespace failmine::ingest
