// Unit tests for stats/histogram.

#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace failmine::stats {
namespace {

TEST(Histogram, LinearBinAssignment) {
  Histogram h = Histogram::linear(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.9);   // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(10.0);  // upper edge -> last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, UnderflowOverflowTracked) {
  Histogram h = Histogram::linear(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.1);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.fraction(1), 1.0);
}

TEST(Histogram, LogarithmicEdgesAreGeometric) {
  Histogram h = Histogram::logarithmic(1.0, 1000.0, 3);
  const auto& e = h.edges();
  ASSERT_EQ(e.size(), 4u);
  EXPECT_DOUBLE_EQ(e[0], 1.0);
  EXPECT_NEAR(e[1], 10.0, 1e-9);
  EXPECT_NEAR(e[2], 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(e[3], 1000.0);
}

TEST(Histogram, LogRejectsNonPositiveRange) {
  EXPECT_THROW(Histogram::logarithmic(0.0, 10.0, 3), failmine::DomainError);
  EXPECT_THROW(Histogram::logarithmic(5.0, 5.0, 3), failmine::DomainError);
}

TEST(Histogram, ExplicitEdgesValidated) {
  EXPECT_THROW(Histogram(std::vector<double>{1.0}), failmine::DomainError);
  EXPECT_THROW(Histogram(std::vector<double>{1.0, 1.0}), failmine::DomainError);
  EXPECT_THROW(Histogram(std::vector<double>{2.0, 1.0}), failmine::DomainError);
}

TEST(Histogram, AddAllAndFractions) {
  Histogram h = Histogram::linear(0.0, 4.0, 4);
  h.add_all(std::vector<double>{0.5, 1.5, 1.6, 3.5});
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.25);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction(3), 0.25);
}

TEST(Histogram, EmptyHistogramFractionIsZero) {
  Histogram h = Histogram::linear(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, BinLabelFormatting) {
  Histogram h = Histogram::linear(0.0, 10.0, 2);
  EXPECT_EQ(h.bin_label(0), "0..5");
  EXPECT_EQ(h.bin_label(1), "5..10");
  EXPECT_THROW(h.bin_label(2), failmine::DomainError);
}

TEST(Histogram, ZeroBinCountRejected) {
  EXPECT_THROW(Histogram::linear(0.0, 1.0, 0), failmine::DomainError);
}

}  // namespace
}  // namespace failmine::stats
