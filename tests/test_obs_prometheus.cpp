// Tests for the Prometheus text exposition renderer: number spelling
// (the exposition format keeps NaN/Inf where JSON degrades them to
// null), name sanitization, and the histogram triple — cumulative
// buckets must be monotone and `_count` must equal the `+Inf` bucket.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/causal.hpp"
#include "obs/json.hpp"
#include "obs/labels.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"

namespace failmine::obs {
namespace {

// ---- prometheus_number vs json_number ---------------------------------

TEST(PrometheusNumber, SpellsNonFiniteValues) {
  EXPECT_EQ(prometheus_number(std::numeric_limits<double>::quiet_NaN()),
            "NaN");
  EXPECT_EQ(prometheus_number(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(prometheus_number(-std::numeric_limits<double>::infinity()),
            "-Inf");
}

TEST(PrometheusNumber, FiniteValuesRoundTrip) {
  EXPECT_EQ(prometheus_number(0.0), "0");
  EXPECT_EQ(prometheus_number(42.0), "42");
  // %.17g preserves the value exactly.
  EXPECT_DOUBLE_EQ(std::stod(prometheus_number(0.1)), 0.1);
  EXPECT_DOUBLE_EQ(std::stod(prometheus_number(-1.5e300)), -1.5e300);
}

TEST(PrometheusNumber, JsonNumberDegradesWherePrometheusDoesNot) {
  // The two formats must stay deliberately different: JSON has no
  // spelling for non-finite doubles, the exposition format does.
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_NE(prometheus_number(std::numeric_limits<double>::quiet_NaN()),
            json_number(std::numeric_limits<double>::quiet_NaN()));
}

// ---- prometheus_name ---------------------------------------------------

TEST(PrometheusName, ReplacesCharactersOutsideTheAlphabet) {
  EXPECT_EQ(prometheus_name("stream.records_in"), "stream_records_in");
  EXPECT_EQ(prometheus_name("a.b-c d"), "a_b_c_d");
  EXPECT_EQ(prometheus_name("already_fine:subsystem"),
            "already_fine:subsystem");
}

TEST(PrometheusName, PrefixesLeadingDigit) {
  EXPECT_EQ(prometheus_name("2fast"), "_2fast");
}

// ---- renderer ----------------------------------------------------------

TEST(RenderPrometheus, CountersAndGaugesRenderWithHelpAndType) {
  MetricsRegistry reg;
  reg.counter("x.total").add(7);
  reg.gauge("x.level").set(2.5);
  const std::string text = render_prometheus(reg);
  EXPECT_NE(text.find("# HELP x_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE x_total counter"), std::string::npos);
  EXPECT_NE(text.find("\nx_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE x_level gauge"), std::string::npos);
  EXPECT_NE(text.find("\nx_level 2.5\n"), std::string::npos);
}

TEST(RenderPrometheus, GaugeNonFiniteValuesUseExpositionSpelling) {
  MetricsRegistry reg;
  reg.gauge("weird").set(std::numeric_limits<double>::infinity());
  const std::string text = render_prometheus(reg);
  EXPECT_NE(text.find("\nweird +Inf\n"), std::string::npos);
  EXPECT_EQ(text.find("null"), std::string::npos);
}

/// Parses every `NAME_bucket{le="..."} N` sample of `NAME` in order.
std::vector<std::pair<std::string, std::uint64_t>> parse_buckets(
    const std::string& text, const std::string& name) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  std::istringstream in(text);
  std::string line;
  const std::string prefix = name + "_bucket{le=\"";
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t quote = line.find('"', prefix.size());
    if (quote == std::string::npos) {
      ADD_FAILURE() << "malformed bucket line: " << line;
      continue;
    }
    const std::string le = line.substr(prefix.size(), quote - prefix.size());
    const std::string value = line.substr(line.find('}') + 2);
    out.emplace_back(le, std::stoull(value));
  }
  return out;
}

/// Finds `NAME VALUE` and returns VALUE as uint64.
std::uint64_t parse_sample(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (line.rfind(name + " ", 0) == 0)
      return std::stoull(line.substr(name.size() + 1));
  ADD_FAILURE() << "sample " << name << " not found";
  return 0;
}

TEST(RenderPrometheus, HistogramBucketsAreCumulativeAndMonotone) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat.us", {1.0, 2.0, 5.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(4.0);
  h.observe(100.0);  // overflow
  const std::string text = render_prometheus(reg);

  const auto buckets = parse_buckets(text, "lat_us");
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + +Inf
  EXPECT_EQ(buckets[0].first, "1");
  EXPECT_EQ(buckets[1].first, "2");
  EXPECT_EQ(buckets[2].first, "5");
  EXPECT_EQ(buckets[3].first, "+Inf");
  // Cumulative: 1, 2, 3, 4.
  EXPECT_EQ(buckets[0].second, 1u);
  EXPECT_EQ(buckets[1].second, 2u);
  EXPECT_EQ(buckets[2].second, 3u);
  EXPECT_EQ(buckets[3].second, 4u);
  for (std::size_t i = 1; i < buckets.size(); ++i)
    EXPECT_GE(buckets[i].second, buckets[i - 1].second);

  EXPECT_EQ(parse_sample(text, "lat_us_count"), 4u);
  EXPECT_NE(text.find("lat_us_sum 106\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_us histogram"), std::string::npos);
}

TEST(RenderPrometheus, HistogramCountEqualsInfBucket) {
  // The exposition contract scrapers rely on: `_count` == the `+Inf`
  // bucket, and the bucket series is monotone. The renderer derives both
  // from the same per-bucket snapshot, so the invariant holds even when
  // the histogram is being observed concurrently.
  MetricsRegistry reg;
  Histogram& h = reg.histogram("concurrent.us", {10.0, 100.0, 1000.0});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed))
      h.observe(static_cast<double>(++i % 2000));
  });
  for (int round = 0; round < 50; ++round) {
    const std::string text = render_prometheus(reg);
    const auto buckets = parse_buckets(text, "concurrent_us");
    ASSERT_EQ(buckets.size(), 4u);
    for (std::size_t i = 1; i < buckets.size(); ++i)
      EXPECT_GE(buckets[i].second, buckets[i - 1].second) << "round " << round;
    EXPECT_EQ(parse_sample(text, "concurrent_us_count"),
              buckets.back().second)
        << "round " << round;
  }
  stop.store(true);
  writer.join();
}

TEST(RenderPrometheus, SampleOverloadMatchesRegistryOverload) {
  MetricsRegistry reg;
  reg.counter("a").add(1);
  reg.gauge("b").set(2.0);
  reg.histogram("c", {1.0}).observe(0.5);
  EXPECT_EQ(render_prometheus(reg.sample()), render_prometheus(reg));
}

TEST(RenderPrometheus, EmptyRegistryRendersEmptyDocument) {
  MetricsRegistry reg;
  EXPECT_EQ(render_prometheus(reg), "");
}

// ---- label escaping ----------------------------------------------------

TEST(PrometheusLabels, EscapeCoversBackslashQuoteAndNewline) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(unescape_label_value("a\\\\b\\\"c\\nd"), "a\\b\"c\nd");
  // Lenient decode: an unknown escape yields the bare character.
  EXPECT_EQ(unescape_label_value("a\\xb"), "axb");
}

TEST(PrometheusLabels, HostileLabelValueRoundTripsThroughExposition) {
  // The regression this exists for: a label value holding every escape
  // class at once (backslash, quote, newline). The newline is the
  // dangerous one — emitted raw it splits the sample line and corrupts
  // the whole exposition document.
  const std::string hostile = "a\\b\"c\nd";
  MetricsRegistry reg;
  reg.counter("fleet.hits", {{"twin", hostile}}).add(3);
  const std::string text = render_prometheus(reg);
  EXPECT_NE(text.find("fleet_hits{twin=\"a\\\\b\\\"c\\nd\"} 3"),
            std::string::npos)
      << text;
  // No raw newline may survive inside a sample line: every line must
  // still end in a value.
  EXPECT_EQ(text.find("c\nd"), std::string::npos) << text;

  // The canonical inline spelling parses back to the original value.
  ParsedMetricName parsed;
  ASSERT_TRUE(
      parse_metric_name(labeled_name("fleet.hits", {{"twin", hostile}}),
                        parsed));
  EXPECT_EQ(parsed.family, "fleet.hits");
  ASSERT_NE(parsed.find("twin"), nullptr);
  EXPECT_EQ(*parsed.find("twin"), hostile);
}

TEST(PrometheusLabels, LabeledHistogramRendersEscapedBucketLines) {
  MetricsRegistry reg;
  reg.histogram("lat.us", {{"twin", "t\"0"}}, {10.0}).observe(5.0);
  const std::string text = render_prometheus(reg);
  EXPECT_NE(text.find("lat_us_bucket{twin=\"t\\\"0\",le=\"10\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_us_count{twin=\"t\\\"0\"} 1"), std::string::npos)
      << text;
}

// ---- OpenMetrics variant ----------------------------------------------

TEST(RenderOpenMetrics, TerminatesWithEofAndMatchesPrometheusOtherwise) {
  MetricsRegistry reg;
  reg.counter("a").add(3);
  reg.gauge("b").set(1.5);
  const std::string om = render_openmetrics(reg);
  ASSERT_GE(om.size(), 6u);
  EXPECT_EQ(om.substr(om.size() - 6), "# EOF\n");
  // Without exemplars the body is the 0.0.4 exposition plus the EOF line.
  EXPECT_EQ(om, render_prometheus(reg) + "# EOF\n");
}

TEST(RenderOpenMetrics, ExemplarAttachesToTheObservedBucketOnly) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("ex.us", {10.0, 100.0});
  h.observe(5.0);
  h.observe(50.0, /*exemplar_trace_id=*/0xabc123ULL);
  const std::string om = render_openmetrics(reg);

  // The le="100" bucket (where 50.0 landed) carries the exemplar.
  const std::string hex = causal_trace_id_hex(0xabc123ULL);
  const std::size_t pos = om.find("ex_us_bucket{le=\"100\"} 2 # {trace_id=\"" +
                                  hex + "\"} 50");
  EXPECT_NE(pos, std::string::npos) << om;
  // Other buckets stay bare.
  EXPECT_NE(om.find("ex_us_bucket{le=\"10\"} 1\n"), std::string::npos);

  // The 0.0.4 exposition must never leak exemplar syntax: the e2e
  // scraper contract rejects '#' inside sample lines.
  const std::string plain = render_prometheus(reg);
  EXPECT_EQ(plain.find("trace_id"), std::string::npos);
  EXPECT_NE(plain.find("ex_us_bucket{le=\"100\"} 2\n"), std::string::npos);
}

TEST(RenderOpenMetrics, OverflowBucketCanCarryAnExemplar) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("of.us", {1.0});
  h.observe(999.0, /*exemplar_trace_id=*/0x77ULL);
  const std::string om = render_openmetrics(reg);
  EXPECT_NE(om.find("of_us_bucket{le=\"+Inf\"} 1 # {trace_id=\"" +
                    causal_trace_id_hex(0x77) + "\"}"),
            std::string::npos)
      << om;
}

TEST(RenderOpenMetrics, ContentTypeConstantIsOpenMetrics) {
  EXPECT_NE(std::string(kOpenMetricsContentType).find("openmetrics-text"),
            std::string::npos);
  EXPECT_NE(std::string(kOpenMetricsContentType).find("version=1.0.0"),
            std::string::npos);
}

}  // namespace
}  // namespace failmine::obs
