// Tests for the bench harness's scale parsing: valid scales are taken
// verbatim, anything std::strtod does not fully consume (or that is
// non-finite / non-positive) falls back to the default with a structured
// warning naming the rejected value.

#include "bench_common.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "obs/log.hpp"

namespace failmine::bench {
namespace {

/// Sink that stores every record it receives.
class CaptureSink : public obs::LogSink {
 public:
  void write(const obs::LogRecord& record) override {
    records.push_back(record);
  }
  std::vector<obs::LogRecord> records;
};

/// Attaches a capture sink to the global logger for one test and restores
/// a clean sink list afterwards (parse_bench_scale warns via
/// obs::logger(), not an injectable logger).
class BenchScaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sink_ = std::make_shared<CaptureSink>();
    previous_level_ = obs::logger().level();
    obs::logger().set_level(obs::LogLevel::kWarn);
    obs::logger().set_sinks({sink_});
  }
  void TearDown() override {
    obs::logger().set_sinks({});
    obs::logger().set_level(previous_level_);
  }

  std::shared_ptr<CaptureSink> sink_;
  obs::LogLevel previous_level_ = obs::LogLevel::kInfo;
};

TEST_F(BenchScaleTest, AcceptsFullyConsumedPositiveNumbers) {
  EXPECT_DOUBLE_EQ(parse_bench_scale("0.5", 0.1), 0.5);
  EXPECT_DOUBLE_EQ(parse_bench_scale("1", 0.1), 1.0);
  EXPECT_DOUBLE_EQ(parse_bench_scale("2e-3", 0.1), 2e-3);
  EXPECT_DOUBLE_EQ(parse_bench_scale("  0.25", 0.1), 0.25);  // strtod skips ws
  EXPECT_TRUE(sink_->records.empty());
}

TEST_F(BenchScaleTest, RejectsTrailingGarbage) {
  // atof("0.5x") would silently return 0.5; the parser must refuse it so
  // a typo'd FAILMINE_BENCH_SCALE is loud rather than half-honored.
  EXPECT_DOUBLE_EQ(parse_bench_scale("0.5x", 0.1), 0.1);
  ASSERT_EQ(sink_->records.size(), 1u);
  EXPECT_EQ(sink_->records[0].event, "bench.scale_rejected");
  ASSERT_EQ(sink_->records[0].fields.size(), 2u);
  EXPECT_EQ(sink_->records[0].fields[0].key, "value");
  EXPECT_EQ(sink_->records[0].fields[0].value_string(), "0.5x");
  EXPECT_EQ(sink_->records[0].fields[1].key, "fallback");
}

TEST_F(BenchScaleTest, RejectsNonNumbersAndEmpty) {
  EXPECT_DOUBLE_EQ(parse_bench_scale("", 0.1), 0.1);
  EXPECT_DOUBLE_EQ(parse_bench_scale("abc", 0.1), 0.1);
  EXPECT_EQ(sink_->records.size(), 2u);
}

TEST_F(BenchScaleTest, RejectsNonPositiveAndNonFinite) {
  EXPECT_DOUBLE_EQ(parse_bench_scale("-1", 0.1), 0.1);
  EXPECT_DOUBLE_EQ(parse_bench_scale("0", 0.1), 0.1);
  EXPECT_DOUBLE_EQ(parse_bench_scale("inf", 0.1), 0.1);
  EXPECT_DOUBLE_EQ(parse_bench_scale("nan", 0.1), 0.1);
  EXPECT_EQ(sink_->records.size(), 4u);
}

TEST_F(BenchScaleTest, FallbackIsCallerChosen) {
  EXPECT_DOUBLE_EQ(parse_bench_scale("bogus", 0.25), 0.25);
}

}  // namespace
}  // namespace failmine::bench
