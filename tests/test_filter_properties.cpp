// Parameterized property tests of the similarity filter on simulated
// traces: monotonicity in the window, radius ordering, and agreement with
// the injected ground truth across seeds.

#include <gtest/gtest.h>

#include "core/event_filter.hpp"
#include "sim/simulator.hpp"

namespace failmine::core {
namespace {

sim::SimResult trace_for_seed(std::uint64_t seed) {
  sim::SimConfig config = sim::SimConfig::test_scale();
  config.scale = 0.02;
  config.seed = seed;
  return sim::simulate(config);
}

class FilterPropertyOnTrace : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  FilterPropertyOnTrace() : trace_(trace_for_seed(GetParam())) {}
  sim::SimResult trace_;
};

TEST_P(FilterPropertyOnTrace, WindowMonotonicity) {
  std::size_t prev = SIZE_MAX;
  for (std::int64_t window : {30, 120, 600, 1800, 7200, 43200}) {
    FilterConfig config;
    config.window_seconds = window;
    const auto r = filter_events(trace_.ras_log, config);
    EXPECT_LE(r.clusters.size(), prev) << "window=" << window;
    prev = r.clusters.size();
  }
}

TEST_P(FilterPropertyOnTrace, CoarserRadiusNeverIncreasesClusters) {
  std::size_t prev = 0;
  bool first = true;
  // Card -> board -> midplane -> rack: strictly coarser merges.
  for (auto level :
       {topology::Level::kComputeCard, topology::Level::kNodeBoard,
        topology::Level::kMidplane, topology::Level::kRack}) {
    FilterConfig config;
    config.spatial_level = level;
    const auto r = filter_events(trace_.ras_log, config);
    if (!first) EXPECT_LE(r.clusters.size(), prev);
    prev = r.clusters.size();
    first = false;
  }
}

TEST_P(FilterPropertyOnTrace, MemberCountsSumToInput) {
  const auto r = filter_events(trace_.ras_log, FilterConfig{});
  std::uint64_t members = 0;
  for (const auto& c : r.clusters) members += c.member_count;
  EXPECT_EQ(members, r.input_events);
}

TEST_P(FilterPropertyOnTrace, ClusterWindowsAreInternallyConsistent) {
  const auto r = filter_events(trace_.ras_log, FilterConfig{});
  for (const auto& c : r.clusters) {
    EXPECT_LE(c.first_time, c.last_time);
    EXPECT_EQ(c.representative.timestamp, c.first_time);
    EXPECT_GE(c.member_count, 1u);
  }
  // Clusters come back ordered by first member.
  for (std::size_t i = 1; i < r.clusters.size(); ++i)
    EXPECT_GE(r.clusters[i].first_time, r.clusters[i - 1].first_time);
}

TEST_P(FilterPropertyOnTrace, RecoversGroundTruthEpisodeCount) {
  const auto r = filter_events(trace_.ras_log, FilterConfig{});
  const double truth = static_cast<double>(trace_.episodes.size());
  if (truth == 0) {
    SUCCEED();
    return;
  }
  // Within 2x of the injected episode count for any seed.
  EXPECT_GT(static_cast<double>(r.clusters.size()), 0.5 * truth);
  EXPECT_LT(static_cast<double>(r.clusters.size()), 2.0 * truth);
}

TEST_P(FilterPropertyOnTrace, MessageStrictFilterIsFiner) {
  FilterConfig lax;
  FilterConfig strict;
  strict.require_same_message = true;
  const auto r_lax = filter_events(trace_.ras_log, lax);
  const auto r_strict = filter_events(trace_.ras_log, strict);
  EXPECT_GE(r_strict.clusters.size(), r_lax.clusters.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterPropertyOnTrace,
                         ::testing::Values(1ULL, 42ULL, 20130409ULL,
                                           0xDEADBEEFULL),
                         [](const auto& info) {
                           return "seed_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace failmine::core
