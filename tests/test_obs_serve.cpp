// Tests for the embedded telemetry server: ephemeral-port binding, the
// four routes, content types, error paths (404 / 400), the health
// callback flipping /healthz between 200 and 503, and clean
// stop()/restart semantics. Uses only the obs subsystem so the same
// source also runs under the sanitized test variant.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/serve.hpp"
#include "util/error.hpp"

namespace failmine::obs {
namespace {

TEST(TelemetryServer, BindsAnEphemeralPortAndStops) {
  TelemetryServer server;
  EXPECT_FALSE(server.running());
  server.start();
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(TelemetryServer, StopWithoutStartIsHarmless) {
  TelemetryServer server;
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(TelemetryServer, MetricsEndpointServesPrometheusText) {
  metrics().counter("serve_test.hits").add(3);
  TelemetryServer server;
  server.start();
  const HttpResponse r = http_get(server.port(), "/metrics");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(r.body.find("# TYPE serve_test_hits counter"), std::string::npos);
  EXPECT_NE(r.body.find("serve_test_hits 3"), std::string::npos);
  server.stop();
}

TEST(TelemetryServer, SnapshotEndpointUsesTheHandler) {
  TelemetryServer server;
  server.start();
  // Unset handler -> 404.
  EXPECT_EQ(http_get(server.port(), "/snapshot").status, 404);
  server.set_snapshot_handler([] { return std::string("{\"live\":true}"); });
  const HttpResponse r = http_get(server.port(), "/snapshot");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("application/json"), std::string::npos);
  EXPECT_EQ(r.body, "{\"live\":true}");
  server.stop();
}

TEST(TelemetryServer, HealthzFollowsTheCallback) {
  std::atomic<bool> healthy{true};
  TelemetryServer server;
  server.set_health_handler([&healthy] { return healthy.load(); });
  server.start();
  EXPECT_EQ(http_get(server.port(), "/healthz").status, 200);
  EXPECT_EQ(http_get(server.port(), "/healthz").body, "ok\n");
  healthy.store(false);
  EXPECT_EQ(http_get(server.port(), "/healthz").status, 503);
  EXPECT_EQ(http_get(server.port(), "/healthz").body, "unhealthy\n");
  healthy.store(true);
  EXPECT_EQ(http_get(server.port(), "/healthz").status, 200);
  server.stop();
}

TEST(TelemetryServer, HealthzDefaultsHealthyWithoutCallback) {
  TelemetryServer server;
  server.start();
  EXPECT_EQ(http_get(server.port(), "/healthz").status, 200);
  server.stop();
}

TEST(TelemetryServer, FlightRecorderEndpointDumpsTheRing) {
  flight_recorder().clear();
  flight_recorder().record_line("{\"kind\":\"log\",\"event\":\"serve.seen\"}");
  TelemetryServer server;
  server.start();
  const HttpResponse r = http_get(server.port(), "/flightrecorder");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("application/x-ndjson"), std::string::npos);
  EXPECT_NE(r.body.find("serve.seen"), std::string::npos);
  server.stop();
}

TEST(TelemetryServer, UnknownPathIs404) {
  TelemetryServer server;
  server.start();
  EXPECT_EQ(http_get(server.port(), "/no/such/route").status, 404);
  server.stop();
}

TEST(TelemetryServer, SelfMetricsCountRequests) {
  TelemetryServer server;
  server.start();
  const std::uint64_t before = metrics().counter_value("obs.serve.requests");
  (void)http_get(server.port(), "/healthz");
  (void)http_get(server.port(), "/healthz");
  const std::uint64_t after = metrics().counter_value("obs.serve.requests");
  EXPECT_GE(after, before + 2);
  server.stop();
}

TEST(TelemetryServer, ConcurrentScrapesAllSucceed) {
  TelemetryServer server;
  server.start();
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int i = 0; i < kClients; ++i)
    clients.emplace_back([&server, &ok] {
      for (int round = 0; round < 5; ++round)
        if (http_get(server.port(), "/metrics").status == 200) ok.fetch_add(1);
    });
  for (auto& c : clients) c.join();
  EXPECT_EQ(ok.load(), kClients * 5);
  server.stop();
}

TEST(TelemetryServer, RestartBindsANewPort) {
  TelemetryServer server;
  server.start();
  const std::uint16_t first = server.port();
  EXPECT_GT(first, 0);
  server.stop();
  server.start();
  EXPECT_TRUE(server.running());
  EXPECT_EQ(http_get(server.port(), "/healthz").status, 200);
  server.stop();
}

TEST(TelemetryServer, ExplicitPortConflictThrowsObsError) {
  TelemetryServer first;
  first.start();
  ServeConfig conflicting;
  conflicting.port = first.port();
  TelemetryServer second(conflicting);
  EXPECT_THROW(second.start(), ObsError);
  first.stop();
}

TEST(HttpGet, ConnectFailureThrowsObsError) {
  // Port 1 on loopback is essentially never listening.
  EXPECT_THROW(http_get(1, "/metrics", 1), ObsError);
}

}  // namespace
}  // namespace failmine::obs
