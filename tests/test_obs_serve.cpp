// Tests for the embedded telemetry server: ephemeral-port binding, the
// routes, content types, error paths (404 / 400), the health callback
// flipping /healthz between 200 and 503, the per-path request counters
// and latency histogram, and clean stop()/restart semantics. Uses only
// the obs subsystem so the same source also runs under the sanitized
// test variant. (/profile itself is covered end-to-end in
// test_stream_profile_e2e.cpp and test_obs_profile.cpp.)

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <chrono>

#include "obs/alerts.hpp"
#include "obs/causal.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/serve.hpp"
#include "obs/tsdb.hpp"
#include "util/error.hpp"

namespace failmine::obs {
namespace {

TEST(TelemetryServer, BindsAnEphemeralPortAndStops) {
  TelemetryServer server;
  EXPECT_FALSE(server.running());
  server.start();
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(TelemetryServer, StopWithoutStartIsHarmless) {
  TelemetryServer server;
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(TelemetryServer, MetricsEndpointServesPrometheusText) {
  metrics().counter("serve_test.hits").add(3);
  TelemetryServer server;
  server.start();
  const HttpResponse r = http_get(server.port(), "/metrics");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(r.body.find("# TYPE serve_test_hits counter"), std::string::npos);
  EXPECT_NE(r.body.find("serve_test_hits 3"), std::string::npos);
  server.stop();
}

TEST(TelemetryServer, SnapshotEndpointUsesTheHandler) {
  TelemetryServer server;
  server.start();
  // Unset handler -> 404.
  EXPECT_EQ(http_get(server.port(), "/snapshot").status, 404);
  server.set_snapshot_handler([] { return std::string("{\"live\":true}"); });
  const HttpResponse r = http_get(server.port(), "/snapshot");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("application/json"), std::string::npos);
  EXPECT_EQ(r.body, "{\"live\":true}");
  server.stop();
}

TEST(TelemetryServer, HealthzFollowsTheCallback) {
  std::atomic<bool> healthy{true};
  TelemetryServer server;
  server.set_health_handler([&healthy] { return healthy.load(); });
  server.start();
  HttpResponse r = http_get(server.port(), "/healthz");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("application/json"), std::string::npos);
  EXPECT_NE(r.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(r.body.find("\"alerts_firing\":"), std::string::npos);
  healthy.store(false);
  r = http_get(server.port(), "/healthz");
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("\"status\":\"unhealthy\""), std::string::npos);
  healthy.store(true);
  EXPECT_EQ(http_get(server.port(), "/healthz").status, 200);
  server.stop();
}

TEST(TelemetryServer, HealthzDefaultsHealthyWithoutCallback) {
  TelemetryServer server;
  server.start();
  EXPECT_EQ(http_get(server.port(), "/healthz").status, 200);
  server.stop();
}

TEST(TelemetryServer, FlightRecorderEndpointDumpsTheRing) {
  flight_recorder().clear();
  flight_recorder().record_line("{\"kind\":\"log\",\"event\":\"serve.seen\"}");
  TelemetryServer server;
  server.start();
  const HttpResponse r = http_get(server.port(), "/flightrecorder");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("application/x-ndjson"), std::string::npos);
  EXPECT_NE(r.body.find("serve.seen"), std::string::npos);
  server.stop();
}

TEST(TelemetryServer, UnknownPathIs404) {
  TelemetryServer server;
  server.start();
  EXPECT_EQ(http_get(server.port(), "/no/such/route").status, 404);
  server.stop();
}

TEST(TelemetryServer, SelfMetricsCountRequests) {
  TelemetryServer server;
  server.start();
  const std::uint64_t before = metrics().counter_value("obs.serve.requests");
  (void)http_get(server.port(), "/healthz");
  (void)http_get(server.port(), "/healthz");
  const std::uint64_t after = metrics().counter_value("obs.serve.requests");
  EXPECT_GE(after, before + 2);
  server.stop();
}

TEST(TelemetryServer, PerPathCountersAndLatencyHistogram) {
  TelemetryServer server;
  server.start();
  const std::uint64_t healthz_before =
      metrics().counter_value("obs.serve.requests{path=\"/healthz\"}");
  const std::uint64_t other_before =
      metrics().counter_value("obs.serve.requests{path=\"other\"}");
  const std::uint64_t latency_before =
      metrics().histogram("obs.serve.latency_us").count();
  (void)http_get(server.port(), "/healthz");
  (void)http_get(server.port(), "/no/such/route");  // unknowns -> "other"
  EXPECT_EQ(metrics().counter_value("obs.serve.requests{path=\"/healthz\"}"),
            healthz_before + 1);
  EXPECT_EQ(metrics().counter_value("obs.serve.requests{path=\"other\"}"),
            other_before + 1);
  EXPECT_GE(metrics().histogram("obs.serve.latency_us").count(),
            latency_before + 2);

  // The labelled counters render as real labelled exposition series with
  // one HELP/TYPE header for the whole family.
  const std::string body = http_get(server.port(), "/metrics").body;
  EXPECT_NE(body.find("obs_serve_requests{path=\"/healthz\"} "),
            std::string::npos);
  EXPECT_NE(body.find("obs_serve_requests{path=\"/metrics\"} "),
            std::string::npos);
  std::size_t headers = 0;
  for (std::size_t pos = body.find("# TYPE obs_serve_requests counter");
       pos != std::string::npos;
       pos = body.find("# TYPE obs_serve_requests counter", pos + 1))
    ++headers;
  EXPECT_EQ(headers, 1u);
  server.stop();
}

TEST(TelemetryServer, RouteCountersArePreRegistered) {
  TelemetryServer server;
  server.start();
  // Without a single request, the metrics body already lists every
  // route's counter (pre-registered at start) so dashboards can build
  // the full family from the first scrape of a fresh process — and the
  // one scrape this makes must not create anything new.
  const std::string body = http_get(server.port(), "/metrics").body;
  for (const char* route : {"/metrics", "/snapshot", "/healthz",
                            "/flightrecorder", "/profile", "/trace",
                            "/alerts"})
    EXPECT_NE(body.find("obs_serve_requests{path=\"" + std::string(route) +
                        "\"} "),
              std::string::npos)
        << route;
  EXPECT_NE(body.find("obs_profile_samples "), std::string::npos);
  EXPECT_NE(body.find("obs_serve_latency_us_bucket"), std::string::npos);
  // Alert-engine instruments and the process gauges ride along.
  EXPECT_NE(body.find("obs_alerts_firing "), std::string::npos);
  EXPECT_NE(body.find("process_start_time_seconds "), std::string::npos);
  EXPECT_NE(body.find("failmine_uptime_seconds "), std::string::npos);
  server.stop();
}

TEST(TelemetryServer, ProcessMetricsRefreshPerScrape) {
  TelemetryServer server;
  server.start();
  (void)http_get(server.port(), "/metrics");
  const double start1 = metrics().gauge("process_start_time_seconds").value();
  const double up1 = metrics().gauge("failmine_uptime_seconds").value();
  EXPECT_GT(start1, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  (void)http_get(server.port(), "/metrics");
  const double start2 = metrics().gauge("process_start_time_seconds").value();
  const double up2 = metrics().gauge("failmine_uptime_seconds").value();
  EXPECT_EQ(start1, start2);  // the start anchor never moves
  EXPECT_GT(up2, up1);        // uptime advances between scrapes
  server.stop();
}

TEST(TelemetryServer, TraceEndpointResolvesSampledIds) {
  causal_tracer().configure({"serve_a", "serve_b"}, /*sample_period=*/1);
  const std::uint32_t ref = causal_tracer().maybe_begin(1234);
  ASSERT_NE(ref, 0u);
  causal_tracer().stamp(ref, 1);
  const std::uint64_t id = causal_tracer().trace_id_of(ref);

  TelemetryServer server;
  server.start();
  const HttpResponse hit =
      http_get(server.port(), "/trace?id=" + causal_trace_id_hex(id));
  EXPECT_EQ(hit.status, 200);
  EXPECT_NE(hit.headers.find("application/json"), std::string::npos);
  EXPECT_NE(hit.body.find(causal_trace_id_hex(id)), std::string::npos);
  EXPECT_NE(hit.body.find("\"stage\":\"serve_b\""), std::string::npos);

  EXPECT_EQ(http_get(server.port(), "/trace?id=ffffffffffffffff").status,
            404);
  EXPECT_EQ(http_get(server.port(), "/trace").status, 400);
  EXPECT_EQ(http_get(server.port(), "/trace?id=nothex").status, 400);
  server.stop();
}

TEST(TelemetryServer, AlertsEndpointServesEngineState) {
  alerts().set_rules(parse_alert_rules(
      "serve-test-alert: value(serve_test.alert_gauge) > 5\n"));
  metrics().gauge("serve_test.alert_gauge").set(10.0);
  alerts().evaluate_now();

  TelemetryServer server;
  server.start();
  const HttpResponse r = http_get(server.port(), "/alerts");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("application/json"), std::string::npos);
  EXPECT_NE(r.body.find("\"name\":\"serve-test-alert\""), std::string::npos);
  EXPECT_NE(r.body.find("\"state\":\"firing\""), std::string::npos);
  EXPECT_NE(r.body.find("\"firing\":1"), std::string::npos);

  // The firing count also shows in the /healthz body.
  EXPECT_NE(http_get(server.port(), "/healthz").body.find(
                "\"alerts_firing\":1"),
            std::string::npos);
  server.stop();
  alerts().set_rules({});  // leave no firing state behind for other tests
}

TEST(TelemetryServer, OpenMetricsFormatCarriesExemplars) {
  causal_tracer().configure({"om_a", "om_b"}, /*sample_period=*/1);
  const std::uint32_t ref = causal_tracer().maybe_begin(77);
  ASSERT_NE(ref, 0u);
  causal_tracer().stamp(ref, 1);
  const std::string hex =
      causal_trace_id_hex(causal_tracer().trace_id_of(ref));

  TelemetryServer server;
  server.start();
  const HttpResponse om =
      http_get(server.port(), "/metrics?format=openmetrics");
  EXPECT_EQ(om.status, 200);
  EXPECT_NE(om.headers.find("application/openmetrics-text"),
            std::string::npos);
  EXPECT_NE(om.body.find("# EOF\n"), std::string::npos);
  EXPECT_NE(om.body.find("# {trace_id=\"" + hex + "\"}"), std::string::npos);

  // The default exposition must stay exemplar-free 0.0.4.
  const HttpResponse plain = http_get(server.port(), "/metrics");
  EXPECT_NE(plain.headers.find("version=0.0.4"), std::string::npos);
  EXPECT_EQ(plain.body.find("trace_id="), std::string::npos);
  EXPECT_EQ(plain.body.find("# EOF"), std::string::npos);
  server.stop();
}

TEST(TelemetryServer, QueryPercentDecodesLabelSelectorCharacters) {
  // The label-selector grammar leans on characters curl percent-encodes
  // by default ({, }, ", ~, [, ], spaces), so GET /query must decode
  // the expr parameter before parsing. One counter carries a hostile
  // label value (backslash, quote, newline) to prove the escaped
  // spelling survives the decode + matcher-unescape round trip.
  metrics().counter("pctq.jobs", {{"twin", "t-0"}}).add(7);
  metrics().counter("pctq.hostile", {{"twin", "a\\b\"c\nd"}}).add(9);
  tsdb().scrape_once(1'700'000'040'000);
  metrics().counter("pctq.jobs", {{"twin", "t-0"}}).add(5);
  tsdb().scrape_once(1'700'000'100'000);

  TelemetryServer server;
  server.start();
  const auto port = server.port();
  // value(pctq.jobs{twin="t-0"}) with every reserved character encoded.
  const HttpResponse r = http_get(
      port,
      "/query?expr=value%28pctq.jobs%7Btwin%3D%22t-0%22%7D%29");
  EXPECT_EQ(r.status, 200) << r.body;
  EXPECT_NE(r.body.find("12"), std::string::npos) << r.body;

  // value(pctq.hostile{twin="a\\b\"c\nd"}) — the matcher spells the
  // value in escaped form and must decode back to the raw one.
  const HttpResponse hostile = http_get(
      port,
      "/query?expr=value%28pctq.hostile%7Btwin%3D%22"
      "a%5C%5Cb%5C%22c%5Cnd%22%7D%29");
  EXPECT_EQ(hostile.status, 200) << hostile.body;
  EXPECT_NE(hostile.body.find("9"), std::string::npos) << hostile.body;
  // And the same hostile series is intact in the /metrics exposition.
  const std::string exposition = http_get(port, "/metrics").body;
  EXPECT_NE(exposition.find("pctq_hostile{twin=\"a\\\\b\\\"c\\nd\"} 9"),
            std::string::npos);

  // sum by (twin) (increase(pctq.jobs{twin=~"*"}[1m])) — the full
  // aggregation spelling survives encoding too.
  const HttpResponse agg = http_get(
      port,
      "/query?expr=sum%20by%20%28twin%29%20%28increase%28pctq.jobs"
      "%7Btwin%3D~%22*%22%7D%5B1m%5D%29%29");
  EXPECT_EQ(agg.status, 200) << agg.body;
  EXPECT_NE(agg.body.find("{twin=\\\"t-0\\\"}"), std::string::npos)
      << agg.body;

  // Malformed escapes are a 400 with a pointed message, not a mangled
  // expression handed to the parser.
  for (const char* path :
       {"/query?expr=value(x)%2", "/query?expr=%zzvalue(x)"}) {
    const HttpResponse bad = http_get(port, path);
    EXPECT_EQ(bad.status, 400) << path;
    EXPECT_NE(bad.body.find("malformed %-escape"), std::string::npos)
        << bad.body;
  }
  server.stop();
}

TEST(TelemetryServer, FleetEndpointNeedsAHandler) {
  TelemetryServer server;
  server.start();
  const HttpResponse missing = http_get(server.port(), "/fleet");
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("no fleet attached (run with --fleet)"),
            std::string::npos)
      << missing.body;

  server.set_fleet_handler([] { return std::string("{\"twins\":[]}"); });
  const HttpResponse r = http_get(server.port(), "/fleet");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("application/json"), std::string::npos);
  EXPECT_EQ(r.body, "{\"twins\":[]}");

  // The route has its own pre-registered per-path request counter.
  EXPECT_GE(metrics().counter_value("obs.serve.requests{path=\"/fleet\"}"),
            2u);
  server.stop();
}

TEST(TelemetryServer, ConcurrentScrapesAllSucceed) {
  TelemetryServer server;
  server.start();
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int i = 0; i < kClients; ++i)
    clients.emplace_back([&server, &ok] {
      for (int round = 0; round < 5; ++round)
        if (http_get(server.port(), "/metrics").status == 200) ok.fetch_add(1);
    });
  for (auto& c : clients) c.join();
  EXPECT_EQ(ok.load(), kClients * 5);
  server.stop();
}

TEST(TelemetryServer, RestartBindsANewPort) {
  TelemetryServer server;
  server.start();
  const std::uint16_t first = server.port();
  EXPECT_GT(first, 0);
  server.stop();
  server.start();
  EXPECT_TRUE(server.running());
  EXPECT_EQ(http_get(server.port(), "/healthz").status, 200);
  server.stop();
}

TEST(TelemetryServer, ExplicitPortConflictThrowsObsError) {
  TelemetryServer first;
  first.start();
  ServeConfig conflicting;
  conflicting.port = first.port();
  TelemetryServer second(conflicting);
  EXPECT_THROW(second.start(), ObsError);
  first.stop();
}

TEST(HttpGet, ConnectFailureThrowsObsError) {
  // Port 1 on loopback is essentially never listening.
  EXPECT_THROW(http_get(1, "/metrics", 1), ObsError);
}

}  // namespace
}  // namespace failmine::obs
