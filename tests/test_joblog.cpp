// Unit tests for the joblog library: exit-status taxonomy, derived
// metrics, container behaviour and CSV round trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "joblog/job.hpp"
#include "util/error.hpp"

namespace failmine::joblog {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

TEST(ExitClassNames, RoundTrip) {
  for (ExitClass c : kAllExitClasses)
    EXPECT_EQ(exit_class_from_name(exit_class_name(c)), c);
  EXPECT_THROW(exit_class_from_name("WHAT"), failmine::ParseError);
}

TEST(ExitClass, CausePredicatesPartitionFailures) {
  for (ExitClass c : kAllExitClasses) {
    if (c == ExitClass::kSuccess) {
      EXPECT_FALSE(is_failure(c));
      EXPECT_FALSE(is_user_caused(c));
      EXPECT_FALSE(is_system_caused(c));
    } else {
      EXPECT_TRUE(is_failure(c));
      EXPECT_NE(is_user_caused(c), is_system_caused(c));
    }
  }
}

struct ClassifyCase {
  int exit_code;
  int signal;
  bool system;
  bool io;
  bool software;
  ExitClass expected;
};

class ClassifyExit : public ::testing::TestWithParam<ClassifyCase> {};

TEST_P(ClassifyExit, MapsToExpectedClass) {
  const auto& c = GetParam();
  EXPECT_EQ(classify_exit(c.exit_code, c.signal, c.system, c.io, c.software),
            c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Table, ClassifyExit,
    ::testing::Values(
        ClassifyCase{0, 0, false, false, false, ExitClass::kSuccess},
        ClassifyCase{1, 0, false, false, false, ExitClass::kUserAppError},
        ClassifyCase{17, 11, false, false, false, ExitClass::kUserAppError},
        ClassifyCase{125, 0, false, false, false, ExitClass::kUserConfigError},
        ClassifyCase{127, 0, false, false, false, ExitClass::kUserConfigError},
        ClassifyCase{0, 15, false, false, false, ExitClass::kUserKill},
        ClassifyCase{0, 2, false, false, false, ExitClass::kUserKill},
        ClassifyCase{24, 9, false, false, false, ExitClass::kWalltimeLimit},
        ClassifyCase{139, 7, true, false, false, ExitClass::kSystemHardware},
        ClassifyCase{135, 11, true, false, true, ExitClass::kSystemSoftware},
        ClassifyCase{135, 11, true, true, false, ExitClass::kSystemIo}));

JobRecord make_job(std::uint64_t id, util::UnixSeconds start,
                   util::UnixSeconds end, std::uint32_t nodes = 512) {
  JobRecord j;
  j.job_id = id;
  j.user_id = 1;
  j.project_id = 2;
  j.queue = "prod-short";
  j.submit_time = start - 100;
  j.start_time = start;
  j.end_time = end;
  j.nodes_used = nodes;
  j.task_count = 1;
  j.requested_walltime = 3600;
  return j;
}

TEST(JobRecord, DerivedMetrics) {
  const JobRecord j = make_job(1, 1000, 4600, 1024);
  EXPECT_EQ(j.runtime_seconds(), 3600);
  EXPECT_EQ(j.wait_seconds(), 100);
  EXPECT_DOUBLE_EQ(j.core_hours(kMira), 1024.0 * 16.0);
}

TEST(JobRecord, PartitionDerivation) {
  JobRecord j = make_job(1, 0, 100, 1024);
  j.partition_first_midplane = 4;
  const auto p = j.partition(kMira);
  EXPECT_EQ(p.first_midplane(), 4);
  EXPECT_EQ(p.midplane_count(), 2);
}

TEST(JobLog, SortsByStartTimeAndIndexes) {
  JobLog log({make_job(3, 300, 400), make_job(1, 100, 200),
              make_job(2, 200, 300)});
  EXPECT_EQ(log.jobs()[0].job_id, 1u);
  EXPECT_EQ(log.jobs()[2].job_id, 3u);
  EXPECT_TRUE(log.contains(2));
  EXPECT_FALSE(log.contains(99));
  EXPECT_EQ(log.by_id(3).start_time, 300);
  EXPECT_THROW(log.by_id(99), failmine::DomainError);
}

TEST(JobLog, DuplicateIdsRejected) {
  EXPECT_THROW(JobLog({make_job(1, 0, 1), make_job(1, 2, 3)}),
               failmine::DomainError);
}

TEST(JobLog, FailuresAndTotals) {
  JobRecord ok = make_job(1, 0, 3600);
  JobRecord bad = make_job(2, 0, 1800);
  bad.exit_class = ExitClass::kUserAppError;
  bad.exit_code = 1;
  JobLog log({ok, bad});
  EXPECT_EQ(log.failures().size(), 1u);
  EXPECT_EQ(log.failures()[0].job_id, 2u);
  EXPECT_DOUBLE_EQ(log.total_core_hours(kMira),
                   512.0 * 16.0 * 1.0 + 512.0 * 16.0 * 0.5);
}

TEST(JobLog, SpanDays) {
  JobLog log({make_job(1, 100, 100 + 86400)});
  EXPECT_NEAR(log.span_days(), 1.0 + 100.0 / 86400.0, 1e-9);
  EXPECT_DOUBLE_EQ(JobLog().span_days(), 0.0);
}

class JobLogFile : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("failmine_jobs_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(JobLogFile, CsvRoundTrip) {
  JobRecord a = make_job(101, 1365465600, 1365469200);
  a.exit_class = ExitClass::kSystemHardware;
  a.exit_code = 139;
  a.exit_signal = 7;
  a.queue = "prod-capability";
  JobRecord b = make_job(102, 1365465700, 1365465800, 49152);
  JobLog log({a, b});
  log.write_csv(path_);
  const JobLog loaded = JobLog::read_csv(path_);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.jobs()[0], log.jobs()[0]);
  EXPECT_EQ(loaded.jobs()[1], log.jobs()[1]);
}

TEST_F(JobLogFile, ReadRejectsInvertedTimes) {
  JobRecord a = make_job(1, 1000, 2000);
  JobLog log({a});
  log.write_csv(path_);
  std::string header, row;
  {
    std::ifstream in(path_);
    std::getline(in, header);
    std::getline(in, row);
  }
  // Swap start/end by rewriting with end < start.
  {
    std::ofstream out(path_);
    out << header << "\n"
        << "1,1,2,prod-short,1970-01-01 00:15:00,1970-01-01 00:16:40,"
           "1970-01-01 00:00:10,512,1,3600,0,0,SUCCESS,0\n";
  }
  EXPECT_THROW(JobLog::read_csv(path_), failmine::ParseError);
}

TEST_F(JobLogFile, ReadRejectsUnknownExitClass) {
  {
    std::ofstream out(path_);
    out << "job_id,user_id,project_id,queue,submit_time,start_time,end_time,"
           "nodes_used,task_count,requested_walltime,exit_code,exit_signal,"
           "exit_class,partition_first_midplane\n"
        << "1,1,2,q,1970-01-01 00:00:00,1970-01-01 00:00:01,"
           "1970-01-01 00:00:02,512,1,60,0,0,BOGUS,0\n";
  }
  EXPECT_THROW(JobLog::read_csv(path_), failmine::ParseError);
}

}  // namespace
}  // namespace failmine::joblog
