// Unit tests for topology/location: parsing, formatting, containment,
// node-index mapping.

#include "topology/location.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace failmine::topology {
namespace {

const MachineConfig kMira = MachineConfig::mira();

TEST(Location, ParseFormatsRoundTrip) {
  for (const char* s : {"R00", "R2F", "R17-M1", "R05-M0-N09",
                        "R13-M1-N15-J31", "R00-M0-N00-J00-C15"}) {
    EXPECT_EQ(Location::parse(s, kMira).to_string(), s);
  }
}

TEST(Location, ParseRejectsMalformedStrings) {
  EXPECT_THROW(Location::parse("", kMira), failmine::ParseError);
  EXPECT_THROW(Location::parse("X00", kMira), failmine::ParseError);
  EXPECT_THROW(Location::parse("R0", kMira), failmine::ParseError);
  EXPECT_THROW(Location::parse("R00-Mx", kMira), failmine::ParseError);
  EXPECT_THROW(Location::parse("R00-M0-N1", kMira), failmine::ParseError);
  EXPECT_THROW(Location::parse("R00-M0-N01-J02-C03-X04", kMira),
               failmine::ParseError);
}

TEST(Location, ParseRejectsOutOfMachineComponents) {
  EXPECT_THROW(Location::parse("R30", kMira), failmine::DomainError);  // row 3
  EXPECT_THROW(Location::parse("R00-M2", kMira), failmine::DomainError);
  EXPECT_THROW(Location::parse("R00-M0-N16", kMira), failmine::DomainError);
  EXPECT_THROW(Location::parse("R00-M0-N00-J32", kMira), failmine::DomainError);
  EXPECT_THROW(Location::parse("R00-M0-N00-J00-C16", kMira),
               failmine::DomainError);
}

TEST(Location, HexRackColumnsParse) {
  const Location loc = Location::parse("R2A", kMira);
  EXPECT_EQ(loc.rack_row(), 2);
  EXPECT_EQ(loc.rack_column(), 10);
  EXPECT_EQ(loc.rack_index(kMira), 2 * 16 + 10);
}

TEST(Location, LevelAccessorsValidateDepth) {
  const Location rack = Location::parse("R00", kMira);
  EXPECT_EQ(rack.level(), Level::kRack);
  EXPECT_THROW(rack.midplane(), failmine::DomainError);
  const Location card = Location::parse("R00-M1-N02-J03", kMira);
  EXPECT_EQ(card.midplane(), 1);
  EXPECT_EQ(card.board(), 2);
  EXPECT_EQ(card.card(), 3);
  EXPECT_THROW(card.core(), failmine::DomainError);
}

TEST(Location, ContainmentFollowsHierarchy) {
  const Location rack = Location::parse("R05", kMira);
  const Location mid = Location::parse("R05-M1", kMira);
  const Location board = Location::parse("R05-M1-N03", kMira);
  const Location card = Location::parse("R05-M1-N03-J07", kMira);
  const Location other = Location::parse("R06-M1-N03-J07", kMira);

  EXPECT_TRUE(rack.contains(card));
  EXPECT_TRUE(mid.contains(board));
  EXPECT_TRUE(board.contains(card));
  EXPECT_TRUE(card.contains(card));
  EXPECT_FALSE(card.contains(board));
  EXPECT_FALSE(rack.contains(other));
  EXPECT_FALSE(mid.contains(Location::parse("R05-M0", kMira)));
}

TEST(Location, AncestorTruncates) {
  const Location core = Location::parse("R11-M0-N14-J22-C09", kMira);
  EXPECT_EQ(core.ancestor(Level::kNodeBoard).to_string(), "R11-M0-N14");
  EXPECT_EQ(core.ancestor(Level::kRack).to_string(), "R11");
  EXPECT_EQ(core.ancestor(Level::kCore), core);
  const Location rack = Location::parse("R11", kMira);
  EXPECT_THROW(rack.ancestor(Level::kMidplane), failmine::DomainError);
}

TEST(Location, CommonLevel) {
  const Location a = Location::parse("R05-M1-N03-J07", kMira);
  const Location b = Location::parse("R05-M1-N03-J08", kMira);
  const Location c = Location::parse("R05-M0-N03-J07", kMira);
  const Location d = Location::parse("R06", kMira);
  EXPECT_EQ(a.common_level(b), Level::kNodeBoard);
  EXPECT_EQ(a.common_level(a), Level::kComputeCard);
  EXPECT_EQ(a.common_level(c), Level::kRack);
  EXPECT_EQ(a.common_level(d), std::nullopt);
}

TEST(Location, CommonLevelWithShallowLocation) {
  const Location card = Location::parse("R05-M1-N03-J07", kMira);
  const Location mid = Location::parse("R05-M1", kMira);
  EXPECT_EQ(card.common_level(mid), Level::kMidplane);
}

TEST(Location, NodeIndexRoundTrips) {
  for (NodeIndex n : {0u, 511u, 512u, 1024u, 49151u, 33333u}) {
    const Location loc = Location::from_node_index(n, kMira);
    EXPECT_EQ(loc.level(), Level::kComputeCard);
    EXPECT_EQ(loc.node_index(kMira), n);
  }
  EXPECT_THROW(Location::from_node_index(49152u, kMira), failmine::DomainError);
}

TEST(Location, NodeIndexRequiresCardDepth) {
  const Location board = Location::parse("R00-M0-N00", kMira);
  EXPECT_THROW(board.node_index(kMira), failmine::DomainError);
}

TEST(Location, NodeIndexLayoutIsHierarchical) {
  // First card of rack 1 comes right after the last card of rack 0.
  const Location last_r0 = Location::parse("R00-M1-N15-J31", kMira);
  const Location first_r1 = Location::parse("R01-M0-N00-J00", kMira);
  EXPECT_EQ(last_r0.node_index(kMira) + 1, first_r1.node_index(kMira));
}

TEST(Location, OrderingIsConsistent) {
  const Location a = Location::parse("R00-M0-N00-J00", kMira);
  const Location b = Location::parse("R00-M0-N00-J01", kMira);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, a);
}

TEST(LevelName, AllLevelsNamed) {
  EXPECT_EQ(level_name(Level::kRack), "rack");
  EXPECT_EQ(level_name(Level::kCore), "core");
}

}  // namespace
}  // namespace failmine::topology
