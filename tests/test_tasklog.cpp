// Unit tests for the tasklog library.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "tasklog/task.hpp"
#include "util/error.hpp"

namespace failmine::tasklog {
namespace {

TaskRecord make_task(std::uint64_t task_id, std::uint64_t job_id,
                     std::uint32_t seq, util::UnixSeconds start,
                     util::UnixSeconds end) {
  TaskRecord t;
  t.task_id = task_id;
  t.job_id = job_id;
  t.sequence = seq;
  t.start_time = start;
  t.end_time = end;
  t.nodes_used = 512;
  t.ranks_per_node = 16;
  return t;
}

TEST(TaskRecord, DerivedMetrics) {
  TaskRecord t = make_task(1, 10, 0, 100, 400);
  EXPECT_EQ(t.runtime_seconds(), 300);
  EXPECT_FALSE(t.failed());
  t.exit_code = 1;
  EXPECT_TRUE(t.failed());
  t.exit_code = 0;
  t.exit_signal = 9;
  EXPECT_TRUE(t.failed());
}

TEST(TaskLog, GroupsByJobInSequenceOrder) {
  TaskLog log({make_task(3, 20, 1, 0, 1), make_task(1, 10, 0, 0, 1),
               make_task(2, 10, 1, 1, 2)});
  EXPECT_EQ(log.task_count(10), 2u);
  EXPECT_EQ(log.task_count(20), 1u);
  EXPECT_EQ(log.task_count(99), 0u);
  const auto of_ten = log.tasks_of_job(10);
  ASSERT_EQ(of_ten.size(), 2u);
  EXPECT_EQ(of_ten[0].sequence, 0u);
  EXPECT_EQ(of_ten[1].sequence, 1u);
  EXPECT_TRUE(log.tasks_of_job(99).empty());
}

class TaskLogFile : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("failmine_tasks_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(TaskLogFile, CsvRoundTrip) {
  TaskRecord a = make_task(1, 10, 0, 1365465600, 1365465700);
  a.exit_code = 1;
  a.exit_signal = 11;
  TaskLog log({a, make_task(2, 10, 1, 1365465700, 1365465900)});
  log.write_csv(path_);
  const TaskLog loaded = TaskLog::read_csv(path_);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.tasks()[0], log.tasks()[0]);
  EXPECT_EQ(loaded.tasks()[1], log.tasks()[1]);
}

TEST_F(TaskLogFile, ReadRejectsWrongHeader) {
  {
    std::ofstream out(path_);
    out << "nope\n1\n";
  }
  EXPECT_THROW(TaskLog::read_csv(path_), failmine::ParseError);
}

TEST_F(TaskLogFile, ReadRejectsInvertedWindow) {
  {
    std::ofstream out(path_);
    out << "task_id,job_id,sequence,start_time,end_time,nodes_used,"
           "ranks_per_node,exit_code,exit_signal\n"
        << "1,10,0,1970-01-01 00:10:00,1970-01-01 00:05:00,512,16,0,0\n";
  }
  EXPECT_THROW(TaskLog::read_csv(path_), failmine::ParseError);
}

TEST(TaskLog, EmptyLog) {
  const TaskLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.task_count(1), 0u);
}

}  // namespace
}  // namespace failmine::tasklog
