// Unit tests for util/csv: RFC 4180 quoting, round trips, failure modes.

#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/error.hpp"

namespace failmine::util {
namespace {

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("failmine_csv_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".csv"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST(CsvSplit, PlainFields) {
  EXPECT_EQ(split_csv_line("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvSplit, EmptyFieldsPreserved) {
  EXPECT_EQ(split_csv_line(",,"), (std::vector<std::string>{"", "", ""}));
  EXPECT_EQ(split_csv_line(""), (std::vector<std::string>{""}));
}

TEST(CsvSplit, QuotedCommaAndQuote) {
  EXPECT_EQ(split_csv_line(R"("a,b","say ""hi""")"),
            (std::vector<std::string>{"a,b", "say \"hi\""}));
}

TEST(CsvSplit, UnterminatedQuoteThrows) {
  EXPECT_THROW(split_csv_line("\"abc"), ParseError);
}

TEST(CsvEscape, OnlyQuotesWhenNeeded) {
  EXPECT_EQ(escape_csv_field("plain"), "plain");
  EXPECT_EQ(escape_csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(escape_csv_field("q\"q"), "\"q\"\"q\"");
}

TEST(CsvJoin, RoundTripsThroughSplit) {
  const std::vector<std::string> fields = {"x", "a,b", "\"quoted\"", "", "multi\nline"};
  EXPECT_EQ(split_csv_line(join_csv_line(fields)), fields);
}

TEST_F(CsvFileTest, WriteThenReadRoundTrips) {
  {
    CsvWriter writer(path_, {"id", "name"});
    writer.write_row({"1", "alpha,beta"});
    writer.write_row({"2", "with \"quotes\""});
    writer.close();
    EXPECT_EQ(writer.rows_written(), 2u);
  }
  CsvReader reader(path_);
  EXPECT_EQ(reader.header(), (std::vector<std::string>{"id", "name"}));
  std::vector<std::string> row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row, (std::vector<std::string>{"1", "alpha,beta"}));
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row, (std::vector<std::string>{"2", "with \"quotes\""}));
  EXPECT_FALSE(reader.next(row));
  EXPECT_EQ(reader.rows_read(), 2u);
}

TEST_F(CsvFileTest, WriterRejectsWrongArity) {
  CsvWriter writer(path_, {"a", "b"});
  EXPECT_THROW(writer.write_row({"only-one"}), DomainError);
}

TEST_F(CsvFileTest, ReaderRejectsWrongArity) {
  {
    std::ofstream out(path_);
    out << "a,b\n1,2\n1,2,3\n";
  }
  CsvReader reader(path_);
  std::vector<std::string> row;
  EXPECT_TRUE(reader.next(row));
  EXPECT_THROW(reader.next(row), ParseError);
}

TEST_F(CsvFileTest, ReaderHandlesCrLf) {
  {
    std::ofstream out(path_);
    out << "a,b\r\n1,2\r\n";
  }
  CsvReader reader(path_);
  EXPECT_EQ(reader.header(), (std::vector<std::string>{"a", "b"}));
  std::vector<std::string> row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row, (std::vector<std::string>{"1", "2"}));
}

TEST_F(CsvFileTest, EmptyFileThrows) {
  { std::ofstream out(path_); }
  EXPECT_THROW(CsvReader reader(path_), ParseError);
}

TEST(CsvReader, MissingFileThrows) {
  EXPECT_THROW(CsvReader("/nonexistent/file.csv"), IoError);
}

TEST(CsvWriter, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent/dir/file.csv", {"a"}), IoError);
}

TEST(CsvWriter, EmptyHeaderThrows) {
  EXPECT_THROW(CsvWriter("/tmp/failmine_header.csv", {}), DomainError);
}

}  // namespace
}  // namespace failmine::util
