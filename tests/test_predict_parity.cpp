// Batch/stream parity for the prediction subsystem — the correctness
// anchor of src/predict (ISSUE P01).
//
// On a simulated trace, the PredictOperator riding the real pipeline
// must reproduce the OFFLINE X02 lead-time study exactly: same
// deduplicated interruptions, same per-interruption precursor
// attribution (lead and message id), same medians. And because the miner
// scores against watermark time, not arrival time, the entire predict
// snapshot must be bit-identical between an ordered replay and a seeded
// skew-shuffled replay within the lateness bound.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/checkpoint.hpp"
#include "core/joint_analyzer.hpp"
#include "core/lead_time.hpp"
#include "predict/operator.hpp"
#include "sim/replay.hpp"
#include "sim/simulator.hpp"
#include "stream/pipeline.hpp"

namespace failmine::predict {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

const sim::SimResult& trace() {
  static const sim::SimResult result = [] {
    sim::SimConfig config = sim::SimConfig::test_scale();
    config.scale = 0.005;
    return sim::simulate(config);
  }();
  return result;
}

const core::JointAnalyzer& analyzer() {
  static const core::JointAnalyzer instance(trace().job_log, trace().task_log,
                                            trace().ras_log, trace().io_log,
                                            kMira);
  return instance;
}

core::LeadTimeResult offline_lead_times() {
  const auto filtered = analyzer().interruption_analysis(core::FilterConfig{});
  core::LeadTimeConfig config;
  config.horizon_seconds = kDefaultPrecursorHorizonSeconds;
  return core::warning_lead_times(analyzer().ras(), filtered.filter.clusters,
                                  config);
}

/// Runs the full pipeline with the predictor attached and returns the
/// operator (quiescent after finish()).
std::shared_ptr<PredictOperator> stream_predict(std::size_t shards,
                                                std::int64_t shuffle_skew) {
  PredictConfig predict_config;
  predict_config.machine = kMira;
  auto op = std::make_shared<PredictOperator>(predict_config);

  stream::StreamConfig config;
  config.shard_count = shards;
  config.max_lateness_seconds = 2 * shuffle_skew;
  config.router_operator = op;
  stream::StreamPipeline pipeline(config);
  pipeline.push_batch(shuffle_skew > 0
                          ? sim::shuffled_replay(trace(), shuffle_skew, 99)
                          : sim::build_replay(trace()));
  pipeline.finish();
  EXPECT_EQ(pipeline.snapshot().records_dropped, 0u);
  return op;
}

void expect_exact_lead_time_parity(const PredictOperator& op) {
  const auto batch = offline_lead_times();
  const auto streamed = op.miner().lead_time_result();

  ASSERT_EQ(streamed.per_interruption.size(), batch.per_interruption.size());
  EXPECT_EQ(streamed.with_precursor, batch.with_precursor);
  EXPECT_EQ(streamed.without_precursor, batch.without_precursor);
  for (std::size_t i = 0; i < batch.per_interruption.size(); ++i) {
    const auto& b = batch.per_interruption[i];
    const auto& s = streamed.per_interruption[i];
    EXPECT_EQ(s.interruption_time, b.interruption_time) << "interruption " << i;
    EXPECT_EQ(s.lead_seconds, b.lead_seconds) << "interruption " << i;
    EXPECT_EQ(s.warn_message_id, b.warn_message_id) << "interruption " << i;
  }
  EXPECT_DOUBLE_EQ(streamed.coverage, batch.coverage);
  EXPECT_DOUBLE_EQ(streamed.median_lead_seconds, batch.median_lead_seconds);
  EXPECT_DOUBLE_EQ(streamed.mean_lead_seconds, batch.mean_lead_seconds);
}

TEST(PredictParity, OrderedReplayMatchesBatchLeadTimes) {
  const auto op = stream_predict(2, 0);
  expect_exact_lead_time_parity(*op);

  // The miner's interruption count must equal the batch filter's.
  const auto filtered = analyzer().interruption_analysis(core::FilterConfig{});
  EXPECT_EQ(op->miner().clusters_resolved(), filtered.filter.clusters.size());
  EXPECT_EQ(op->miner().pending_clusters(), 0u);

  // Every job in the trace was scored, none left live.
  const auto snap = op->snapshot();
  EXPECT_EQ(snap.jobs_scored, trace().job_log.size());
  EXPECT_EQ(snap.risk_tp + snap.risk_fp + snap.risk_fn + snap.risk_tn,
            snap.jobs_scored);
  EXPECT_EQ(snap.policies.size(), 3u);
  EXPECT_EQ(snap.policies[0].jobs, trace().job_log.size());
}

TEST(PredictParity, ShuffledReplayMatchesBatchLeadTimes) {
  // Arrivals shuffled by up to 30 minutes (seeded), lateness bound 2x:
  // the reorderer restores exact watermark order, and the miner's
  // deferred scoring window must make the result identical — including
  // WARNs whose timestamp equals the fatal's but which arrive after it.
  const auto op = stream_predict(4, 1800);
  expect_exact_lead_time_parity(*op);
}

TEST(PredictParity, ShuffledSnapshotIsBitIdenticalToOrdered) {
  const auto ordered = stream_predict(2, 0);
  const auto shuffled = stream_predict(4, 1800);
  EXPECT_EQ(ordered->snapshot_json(), shuffled->snapshot_json());
}

TEST(PredictParity, HazardConvergesToBatchEstimate) {
  const auto op = stream_predict(2, 0);
  const auto batch = core::estimate_hazard(analyzer().jobs());
  EXPECT_EQ(op->policy().system_kills(), batch.system_kills);
  EXPECT_NEAR(op->policy().node_seconds(), batch.node_seconds,
              1e-6 * batch.node_seconds);
  if (batch.system_kills > 0)
    EXPECT_NEAR(op->policy().hazard_per_node_second(), batch.per_node_second,
                1e-9 * batch.per_node_second);
}

}  // namespace
}  // namespace failmine::predict
