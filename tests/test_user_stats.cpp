// Unit tests for analysis/user_stats with a hand-built job log.

#include "analysis/user_stats.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace failmine::analysis {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

joblog::JobRecord make_job(std::uint64_t id, std::uint32_t user,
                           std::uint32_t project, bool failed,
                           bool system = false) {
  joblog::JobRecord j;
  j.job_id = id;
  j.user_id = user;
  j.project_id = project;
  j.queue = "q";
  j.submit_time = 0;
  j.start_time = 0;
  j.end_time = 3600;  // 1 hour on 512 nodes = 8192 core-hours
  j.nodes_used = 512;
  j.task_count = 1;
  j.requested_walltime = 7200;
  if (failed) {
    j.exit_class = system ? joblog::ExitClass::kSystemHardware
                          : joblog::ExitClass::kUserAppError;
    j.exit_code = system ? 139 : 1;
  }
  return j;
}

joblog::JobLog sample_log() {
  return joblog::JobLog({
      make_job(1, 10, 100, false),
      make_job(2, 10, 100, true),
      make_job(3, 10, 100, true, /*system=*/true),
      make_job(4, 20, 100, false),
      make_job(5, 30, 200, true),
  });
}

TEST(PerUserStats, AggregatesCorrectly) {
  const auto stats = per_user_stats(sample_log(), kMira);
  ASSERT_EQ(stats.size(), 3u);
  // Sorted by user id.
  EXPECT_EQ(stats[0].group_id, 10u);
  EXPECT_EQ(stats[0].jobs, 3u);
  EXPECT_EQ(stats[0].failures, 2u);
  EXPECT_EQ(stats[0].user_caused_failures, 1u);
  EXPECT_EQ(stats[0].system_caused_failures, 1u);
  EXPECT_DOUBLE_EQ(stats[0].core_hours, 3.0 * 8192.0);
  EXPECT_DOUBLE_EQ(stats[0].failed_core_hours, 2.0 * 8192.0);
  EXPECT_NEAR(stats[0].failure_rate(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(stats[1].group_id, 20u);
  EXPECT_EQ(stats[1].failures, 0u);
  EXPECT_DOUBLE_EQ(stats[1].failure_rate(), 0.0);
}

TEST(PerProjectStats, GroupsAcrossUsers) {
  const auto stats = per_project_stats(sample_log(), kMira);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].group_id, 100u);
  EXPECT_EQ(stats[0].jobs, 4u);
  EXPECT_EQ(stats[0].failures, 2u);
  EXPECT_EQ(stats[1].group_id, 200u);
  EXPECT_EQ(stats[1].jobs, 1u);
}

TEST(MetricColumn, SelectsRequestedMetric) {
  const auto stats = per_user_stats(sample_log(), kMira);
  EXPECT_EQ(metric_column(stats, GroupMetric::kJobs),
            (std::vector<double>{3.0, 1.0, 1.0}));
  EXPECT_EQ(metric_column(stats, GroupMetric::kFailures),
            (std::vector<double>{2.0, 0.0, 1.0}));
}

TEST(Concentration, SummaryFields) {
  const auto stats = per_user_stats(sample_log(), kMira);
  const auto c = concentration(stats, GroupMetric::kJobs);
  EXPECT_EQ(c.group_count, 3u);
  EXPECT_DOUBLE_EQ(c.top1_share, 0.6);
  EXPECT_DOUBLE_EQ(c.top10_share, 1.0);
  EXPECT_EQ(c.groups_for_half, 1u);
  EXPECT_GT(c.gini, 0.0);
}

TEST(Concentration, EmptyStatsRejected) {
  EXPECT_THROW(concentration({}, GroupMetric::kJobs), failmine::DomainError);
}

}  // namespace
}  // namespace failmine::analysis
