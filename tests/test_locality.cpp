// Unit tests for analysis/locality.

#include "analysis/locality.hpp"

#include <gtest/gtest.h>

#include "raslog/message_catalog.hpp"

namespace failmine::analysis {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

raslog::RasEvent fatal_at(const char* loc, util::UnixSeconds t = 0) {
  raslog::RasEvent e;
  e.timestamp = t;
  e.message_id = "00010005";
  e.severity = raslog::Severity::kFatal;
  e.location = topology::Location::parse(loc, kMira);
  return e;
}

raslog::RasLog hotspot_log() {
  std::vector<raslog::RasEvent> events;
  for (int i = 0; i < 8; ++i)
    events.push_back(fatal_at("R00-M0-N03-J01", i * 10));
  events.push_back(fatal_at("R05-M1-N09-J00", 1000));
  events.push_back(fatal_at("R11-M0-N00-J00", 2000));
  return raslog::RasLog(std::move(events));
}

TEST(EventsPerComponent, CountsAtRequestedLevel) {
  const auto per_board = events_per_component(
      hotspot_log(), topology::Level::kNodeBoard);
  ASSERT_EQ(per_board.size(), 3u);
  EXPECT_EQ(per_board[0].events, 8u);  // hottest first
  EXPECT_EQ(per_board[0].location.to_string(), "R00-M0-N03");

  const auto per_rack =
      events_per_component(hotspot_log(), topology::Level::kRack);
  ASSERT_EQ(per_rack.size(), 3u);
  EXPECT_EQ(per_rack[0].events, 8u);
}

TEST(EventsPerComponent, SkipsShallowerLocations) {
  std::vector<raslog::RasEvent> events = {fatal_at("R00-M0-N03-J01"),
                                          fatal_at("R00")};
  const auto per_board = events_per_component(
      raslog::RasLog(std::move(events)), topology::Level::kNodeBoard);
  ASSERT_EQ(per_board.size(), 1u);
}

TEST(EventsPerComponent, SeverityThresholdFiltersInfos) {
  std::vector<raslog::RasEvent> events = {fatal_at("R00-M0-N03-J01")};
  events[0].severity = raslog::Severity::kInfo;
  const auto counts = events_per_component(raslog::RasLog(std::move(events)),
                                           topology::Level::kNodeBoard);
  EXPECT_TRUE(counts.empty());
  const auto all = events_per_component(
      raslog::RasLog({fatal_at("R00-M0-N03-J01")}), topology::Level::kNodeBoard,
      raslog::Severity::kInfo);
  EXPECT_EQ(all.size(), 1u);
}

TEST(ComponentsAtLevel, MachineArithmetic) {
  EXPECT_EQ(components_at_level(kMira, topology::Level::kRack), 48u);
  EXPECT_EQ(components_at_level(kMira, topology::Level::kMidplane), 96u);
  EXPECT_EQ(components_at_level(kMira, topology::Level::kNodeBoard), 1536u);
  EXPECT_EQ(components_at_level(kMira, topology::Level::kComputeCard), 49152u);
}

TEST(LocalitySummary, HotspotDominatesShares) {
  const auto s =
      locality_summary(hotspot_log(), kMira, topology::Level::kNodeBoard);
  EXPECT_EQ(s.components_hit, 3u);
  EXPECT_EQ(s.components_total, 1536u);
  EXPECT_DOUBLE_EQ(s.top1_share, 0.8);
  EXPECT_DOUBLE_EQ(s.top5_share, 1.0);
  EXPECT_GT(s.gini, 0.4);
}

TEST(LocalitySummary, EmptyLogYieldsZeroes) {
  const auto s =
      locality_summary(raslog::RasLog(), kMira, topology::Level::kRack);
  EXPECT_EQ(s.components_hit, 0u);
  EXPECT_DOUBLE_EQ(s.top1_share, 0.0);
}

}  // namespace
}  // namespace failmine::analysis
