// Integration test: the takeaway report must pass end-to-end on the
// default-seed test-scale trace, and its formatting must be stable.

#include "core/report.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace failmine::core {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new sim::SimConfig(sim::SimConfig::test_scale());
    result_ = new sim::SimResult(sim::simulate(*config_));
    analyzer_ = new JointAnalyzer(result_->job_log, result_->task_log,
                                  result_->ras_log, result_->io_log,
                                  config_->machine);
  }
  static void TearDownTestSuite() {
    delete analyzer_;
    delete result_;
    delete config_;
    analyzer_ = nullptr;
    result_ = nullptr;
    config_ = nullptr;
  }
  static sim::SimConfig* config_;
  static sim::SimResult* result_;
  static JointAnalyzer* analyzer_;
};

sim::SimConfig* ReportTest::config_ = nullptr;
sim::SimResult* ReportTest::result_ = nullptr;
JointAnalyzer* ReportTest::analyzer_ = nullptr;

TEST_F(ReportTest, CoversEveryHeadlineTakeaway) {
  ReportConfig rc;
  rc.trace_scale = config_->scale;
  const auto takeaways = evaluate_takeaways(*analyzer_, rc);
  ASSERT_EQ(takeaways.size(), 22u);
  // Every id family from DESIGN.md appears.
  for (const char* prefix : {"T-A", "T-B", "T-C", "T-D", "T-E", "T-F"}) {
    bool found = false;
    for (const auto& t : takeaways)
      found = found || t.id.rfind(prefix, 0) == 0;
    EXPECT_TRUE(found) << prefix;
  }
}

TEST_F(ReportTest, StructuralTakeawaysPassAtTestScale) {
  ReportConfig rc;
  rc.trace_scale = config_->scale;
  const auto takeaways = evaluate_takeaways(*analyzer_, rc);
  for (const auto& t : takeaways) {
    // At 1/100 scale, small-sample noise exempts only the tight
    // count-calibrated claims from a hard assertion; structural claims
    // must hold at any scale. T-C4/T-C5 need >= 30 system failures /
    // >= 20 interruption intervals, which a 1/100 trace does not contain.
    if (t.id == "T-A1" || t.id == "T-F2" || t.id == "T-E1" ||
        t.id == "T-C4" || t.id == "T-C5")
      continue;
    EXPECT_TRUE(t.pass) << t.id << ": " << t.claim << " expected "
                        << t.expected << " measured " << t.measured;
  }
}

TEST_F(ReportTest, CalibratedCountsAreInTheRightBallpark) {
  ReportConfig rc;
  rc.trace_scale = config_->scale;
  const auto takeaways = evaluate_takeaways(*analyzer_, rc);
  for (const auto& t : takeaways) {
    if (t.id == "T-A1") EXPECT_NEAR(t.measured, t.expected, 0.2 * t.expected);
    if (t.id == "T-F2") EXPECT_NEAR(t.measured, t.expected, 0.3 * t.expected);
    if (t.id == "T-E1") EXPECT_NEAR(t.measured, t.expected, 0.8 * t.expected);
  }
}

TEST_F(ReportTest, FormatProducesOneLinePerTakeawayPlusHeader) {
  ReportConfig rc;
  rc.trace_scale = config_->scale;
  const auto takeaways = evaluate_takeaways(*analyzer_, rc);
  const std::string text = format_report(takeaways);
  const std::size_t lines =
      static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n'));
  EXPECT_EQ(lines, takeaways.size() + 2);
  EXPECT_NE(text.find("T-A1"), std::string::npos);
  EXPECT_NE(text.find("PASS"), std::string::npos);
}

TEST_F(ReportTest, JsonOutputIsWellFormedAndComplete) {
  ReportConfig rc;
  rc.trace_scale = config_->scale;
  const auto takeaways = evaluate_takeaways(*analyzer_, rc);
  const std::string json = format_report_json(takeaways);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  // One object per takeaway, comma-separated.
  const auto count = [&](const std::string& needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = json.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  EXPECT_EQ(count("\"id\":"), takeaways.size());
  EXPECT_EQ(count("\"pass\":"), takeaways.size());
  EXPECT_EQ(count("},"), takeaways.size() - 1);
  EXPECT_NE(json.find("\"T-A1\""), std::string::npos);
}

TEST(ReportUnit, JsonEscapesSpecialCharacters) {
  std::vector<Takeaway> takeaways(1);
  takeaways[0].id = "T-X";
  takeaways[0].claim = "has \"quotes\" and \\backslash\\ and\nnewline";
  takeaways[0].unit = "u";
  const std::string json = format_report_json(takeaways);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\backslash\\\\"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(ReportUnit, AllPassDetectsFailure) {
  std::vector<Takeaway> takeaways(2);
  takeaways[0].pass = true;
  takeaways[1].pass = true;
  EXPECT_TRUE(all_pass(takeaways));
  takeaways[1].pass = false;
  EXPECT_FALSE(all_pass(takeaways));
  EXPECT_TRUE(all_pass({}));
}

}  // namespace
}  // namespace failmine::core
