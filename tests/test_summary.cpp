// Unit tests for stats/summary.

#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace failmine::stats {
namespace {

TEST(Summary, HandComputedValues) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.sum, 40.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, EmptySampleThrows) {
  EXPECT_THROW(summarize({}), failmine::DomainError);
  EXPECT_THROW(mean({}), failmine::DomainError);
  EXPECT_THROW(variance({}), failmine::DomainError);
}

TEST(Summary, SingleValue) {
  const std::vector<double> v = {3.5};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.skewness, 0.0);
}

TEST(Summary, SkewnessSignDetectsAsymmetry) {
  const std::vector<double> right = {1, 1, 1, 2, 2, 3, 10};
  const std::vector<double> left = {-10, -3, -2, -2, -1, -1, -1};
  EXPECT_GT(summarize(right).skewness, 0.5);
  EXPECT_LT(summarize(left).skewness, -0.5);
}

TEST(Median, OddAndEvenSizes) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
}

TEST(Quantile, Type7Interpolation) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);
  EXPECT_THROW(quantile(v, 1.5), failmine::DomainError);
}

TEST(Quantile, SortedVariantAgreesWithUnsorted) {
  const std::vector<double> unsorted = {9, 2, 7, 4, 1};
  std::vector<double> sorted = unsorted;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {0.1, 0.33, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(quantile(unsorted, p), quantile_sorted(sorted, p));
  }
}

TEST(GeometricMean, PositiveValuesOnly) {
  EXPECT_NEAR(geometric_mean(std::vector<double>{1, 4, 16}), 4.0, 1e-12);
  EXPECT_THROW(geometric_mean(std::vector<double>{1.0, 0.0}),
               failmine::DomainError);
}

TEST(Ranks, TiesGetMidRanks) {
  const std::vector<double> v = {10, 20, 20, 30};
  const auto r = ranks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Ranks, AllEqualValues) {
  const auto r = ranks(std::vector<double>{5, 5, 5});
  for (double x : r) EXPECT_DOUBLE_EQ(x, 2.0);
}

}  // namespace
}  // namespace failmine::stats
