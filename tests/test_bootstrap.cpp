// Unit + property tests for stats/bootstrap.

#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/summary.hpp"
#include "util/error.hpp"

namespace failmine::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, double mean, double sd,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal(mean, sd);
  return v;
}

TEST(Bootstrap, IntervalBracketsTruthForTheMean) {
  const auto sample = normal_sample(400, 10.0, 2.0, 7);
  util::Rng rng(1);
  const auto r = bootstrap_mean(sample, 500, 0.95, rng);
  EXPECT_LE(r.lower, r.point_estimate);
  EXPECT_GE(r.upper, r.point_estimate);
  EXPECT_LE(r.lower, 10.0);
  EXPECT_GE(r.upper, 10.0);
  // Theoretical SE = 2/sqrt(400) = 0.1.
  EXPECT_NEAR(r.standard_error, 0.1, 0.03);
}

TEST(Bootstrap, PointEstimateMatchesDirectStatistic) {
  const auto sample = normal_sample(100, 0.0, 1.0, 9);
  util::Rng rng(2);
  const auto r = bootstrap_median(sample, 200, 0.9, rng);
  EXPECT_DOUBLE_EQ(r.point_estimate, median(sample));
  EXPECT_EQ(r.replicates, 200u);
}

TEST(Bootstrap, WiderConfidenceGivesWiderInterval) {
  const auto sample = normal_sample(200, 5.0, 3.0, 11);
  util::Rng r1(3), r2(3);
  const auto narrow = bootstrap_mean(sample, 400, 0.80, r1);
  const auto wide = bootstrap_mean(sample, 400, 0.99, r2);
  EXPECT_LT(wide.lower, narrow.lower);
  EXPECT_GT(wide.upper, narrow.upper);
}

TEST(Bootstrap, GiniWrapperWorksOnSkewedData) {
  util::Rng data_rng(13);
  std::vector<double> v(300);
  for (auto& x : v) x = data_rng.pareto(1.0, 1.5);
  util::Rng rng(4);
  const auto r = bootstrap_gini(v, 300, 0.95, rng);
  EXPECT_GT(r.point_estimate, 0.2);
  EXPECT_LT(r.upper, 1.0);
  EXPECT_GT(r.lower, 0.0);
}

TEST(Bootstrap, DeterministicGivenRngSeed) {
  const auto sample = normal_sample(50, 1.0, 1.0, 17);
  util::Rng r1(5), r2(5);
  const auto a = bootstrap_mean(sample, 100, 0.9, r1);
  const auto b = bootstrap_mean(sample, 100, 0.9, r2);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(Bootstrap, ValidatesArguments) {
  util::Rng rng(6);
  const std::vector<double> sample = {1.0, 2.0, 3.0};
  EXPECT_THROW(bootstrap_mean({}, 100, 0.9, rng), failmine::DomainError);
  EXPECT_THROW(bootstrap_mean(sample, 10, 0.9, rng), failmine::DomainError);
  EXPECT_THROW(bootstrap_mean(sample, 100, 0.0, rng), failmine::DomainError);
  EXPECT_THROW(bootstrap_mean(sample, 100, 1.0, rng), failmine::DomainError);
}

TEST(Bootstrap, CustomStatisticCallable) {
  const std::vector<double> sample = {1, 2, 3, 4, 5, 6, 7, 8};
  util::Rng rng(7);
  const auto r = bootstrap_ci(
      sample,
      [](std::span<const double> s) {
        double mx = s[0];
        for (double v : s) mx = std::max(mx, v);
        return mx;
      },
      100, 0.9, rng);
  EXPECT_DOUBLE_EQ(r.point_estimate, 8.0);
  EXPECT_LE(r.upper, 8.0);  // resample max can never exceed the sample max
}

}  // namespace
}  // namespace failmine::stats
