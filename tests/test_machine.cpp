// Unit tests for topology/machine: machine arithmetic and the 5D torus.

#include "topology/machine.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace failmine::topology {
namespace {

TEST(MachineConfig, MiraDimensions) {
  const MachineConfig m = MachineConfig::mira();
  EXPECT_EQ(m.racks(), 48);
  EXPECT_EQ(m.nodes_per_board(), 32u);
  EXPECT_EQ(m.nodes_per_midplane(), 512u);
  EXPECT_EQ(m.nodes_per_rack(), 1024u);
  EXPECT_EQ(m.total_nodes(), 49152u);
  EXPECT_EQ(m.total_cores(), 786432u);
}

TEST(MachineConfig, SingleRack) {
  const MachineConfig m = MachineConfig::single_rack();
  EXPECT_EQ(m.racks(), 1);
  EXPECT_EQ(m.total_nodes(), 1024u);
}

TEST(TorusShape, MiraShapeVolumeMatchesNodes) {
  const MachineConfig m = MachineConfig::mira();
  const TorusShape t = TorusShape::for_machine(m);
  EXPECT_EQ(t.volume(), 49152u);
  EXPECT_EQ(t.extent[0], 8);
  EXPECT_EQ(t.extent[1], 12);
  EXPECT_EQ(t.extent[2], 16);
  EXPECT_EQ(t.extent[3], 16);
  EXPECT_EQ(t.extent[4], 2);
}

TEST(TorusShape, CoordRoundTrips) {
  const TorusShape t = TorusShape::for_machine(MachineConfig::mira());
  for (NodeIndex n : {0u, 1u, 511u, 512u, 49151u, 12345u}) {
    EXPECT_EQ(t.node_of(t.coord_of(n)), n) << "n=" << n;
  }
  EXPECT_THROW(t.coord_of(49152u), failmine::DomainError);
}

TEST(TorusShape, NodeOfValidatesCoordinates) {
  const TorusShape t = TorusShape::for_machine(MachineConfig::mira());
  TorusCoord c{};
  c.dims = {8, 0, 0, 0, 0};  // A extent is 8 -> out of range
  EXPECT_THROW(t.node_of(c), failmine::DomainError);
  c.dims = {0, 0, 0, 0, -1};
  EXPECT_THROW(t.node_of(c), failmine::DomainError);
}

TEST(TorusShape, DistanceUsesWraparound) {
  const TorusShape t = TorusShape::for_machine(MachineConfig::mira());
  TorusCoord a{}, b{};
  a.dims = {0, 0, 0, 0, 0};
  b.dims = {7, 0, 0, 0, 0};
  EXPECT_EQ(t.torus_distance(a, b), 1);  // wrap: 8-7
  b.dims = {4, 0, 0, 0, 0};
  EXPECT_EQ(t.torus_distance(a, b), 4);
  b.dims = {4, 6, 8, 8, 1};
  EXPECT_EQ(t.torus_distance(a, b), 4 + 6 + 8 + 8 + 1);
}

TEST(TorusShape, DistanceIsSymmetricAndZeroOnSelf) {
  const TorusShape t = TorusShape::for_machine(MachineConfig::mira());
  const TorusCoord a = t.coord_of(1234);
  const TorusCoord b = t.coord_of(45678);
  EXPECT_EQ(t.torus_distance(a, b), t.torus_distance(b, a));
  EXPECT_EQ(t.torus_distance(a, a), 0);
}

TEST(TorusShape, OddConfigFallsBackTo1D) {
  MachineConfig m = MachineConfig::single_rack();
  m.cards_per_board = 31;  // breaks the 12*16*16*2 divisibility
  const TorusShape t = TorusShape::for_machine(m);
  EXPECT_EQ(t.volume(), m.total_nodes());
}

}  // namespace
}  // namespace failmine::topology
