#!/bin/sh
# Regenerates the test list from the test_*.cpp files present.
cd "$(dirname "$0")"
{
  cat <<'HDR'
function(failmine_test name)
  add_executable(${name} ${name}.cpp)
  target_link_libraries(${name} PRIVATE
    failmine_core failmine_analysis failmine_sim failmine_distfit
    failmine_raslog failmine_joblog failmine_tasklog failmine_iolog
    failmine_topology failmine_stats failmine_util
    GTest::gtest GTest::gtest_main)
  target_include_directories(${name} PRIVATE ${PROJECT_SOURCE_DIR}/src)
  gtest_discover_tests(${name} DISCOVERY_TIMEOUT 120)
endfunction()

HDR
  for f in test_*.cpp; do
    echo "failmine_test(${f%.cpp})"
  done
} > CMakeLists.txt
