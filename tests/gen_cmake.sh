#!/bin/sh
# Regenerates the test list from the test_*.cpp files present.
cd "$(dirname "$0")"
{
  cat <<'HDR'
function(failmine_test name)
  add_executable(${name} ${name}.cpp)
  target_link_libraries(${name} PRIVATE
    failmine_core failmine_analysis failmine_sim failmine_stream
    failmine_distfit failmine_raslog failmine_joblog failmine_tasklog
    failmine_iolog failmine_topology failmine_stats failmine_util
    failmine_obs GTest::gtest GTest::gtest_main)
  target_include_directories(${name} PRIVATE ${PROJECT_SOURCE_DIR}/src)
  gtest_discover_tests(${name} DISCOVERY_TIMEOUT 120)
endfunction()

HDR
  for f in test_*.cpp; do
    echo "failmine_test(${f%.cpp})"
  done
  cat <<'FTR'

# bench_common.hpp is header-only harness glue (no google-benchmark
# symbols), so its parser can be tested without linking the benchmark lib.
target_include_directories(test_bench_common PRIVATE
  ${PROJECT_SOURCE_DIR}/bench)

# The obs subsystem is the only one with lock-free concurrency in hot
# paths, so its tests also run under ASan+UBSan in the tier-1 pass when
# the toolchain supports it. The obs sources are recompiled into the
# sanitized binaries directly so the library code itself is instrumented.
# Skipped when FAILMINE_SANITIZE already sanitizes the whole build.
if(NOT FAILMINE_SANITIZE)
  include(CheckCXXSourceCompiles)
  set(CMAKE_REQUIRED_FLAGS "-fsanitize=address,undefined")
  set(CMAKE_REQUIRED_LINK_OPTIONS -fsanitize=address,undefined)
  check_cxx_source_compiles("int main() { return 0; }"
                            FAILMINE_HAVE_SANITIZERS)
  unset(CMAKE_REQUIRED_FLAGS)
  unset(CMAKE_REQUIRED_LINK_OPTIONS)
  if(FAILMINE_HAVE_SANITIZERS)
    function(failmine_sanitized_obs_test name)
      add_executable(${name}_asan ${name}.cpp
        ${PROJECT_SOURCE_DIR}/src/obs/log.cpp
        ${PROJECT_SOURCE_DIR}/src/obs/metrics.cpp
        ${PROJECT_SOURCE_DIR}/src/obs/session.cpp
        ${PROJECT_SOURCE_DIR}/src/obs/trace.cpp)
      target_include_directories(${name}_asan PRIVATE
        ${PROJECT_SOURCE_DIR}/src)
      target_compile_options(${name}_asan PRIVATE
        -fsanitize=address,undefined -fno-omit-frame-pointer)
      target_link_options(${name}_asan PRIVATE
        -fsanitize=address,undefined)
      target_link_libraries(${name}_asan PRIVATE
        GTest::gtest GTest::gtest_main)
      gtest_discover_tests(${name}_asan TEST_PREFIX "asan."
                           DISCOVERY_TIMEOUT 120)
    endfunction()
    failmine_sanitized_obs_test(test_obs_logger)
    failmine_sanitized_obs_test(test_obs_metrics)
    failmine_sanitized_obs_test(test_obs_trace)
  endif()
endif()
FTR
} > CMakeLists.txt
