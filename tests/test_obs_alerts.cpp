// Tests for obs::alerts — the rule grammar, the extraction functions
// (value / rate / quantile), the pending->firing->resolved state
// machine, and the JSON surface behind GET /alerts.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/alerts.hpp"
#include "obs/metrics.hpp"
#include "obs/tsdb.hpp"
#include "util/error.hpp"

namespace failmine::obs {
namespace {

std::filesystem::path temp_path(const char* name) {
  return std::filesystem::temp_directory_path() /
         (std::string("failmine_alerts_") + std::to_string(::getpid()) + "_" +
          name);
}

// ---- grammar -----------------------------------------------------------

TEST(AlertRuleParser, ParsesFullGrammar) {
  const auto rules = parse_alert_rules(
      "# comment line\n"
      "\n"
      "drops: rate(stream.records_dropped) > 0\n"
      "  p99-slo : p99(stream.shard0.apply_us) >= 5e4 for 10s  # trailing\n"
      "level-low: value(stream.queue_depth) < 1 for 250ms\n");
  ASSERT_EQ(rules.size(), 3u);

  EXPECT_EQ(rules[0].name, "drops");
  EXPECT_EQ(rules[0].fn, AlertFn::kRate);
  EXPECT_EQ(rules[0].metric, "stream.records_dropped");
  EXPECT_EQ(rules[0].op, AlertOp::kGt);
  EXPECT_EQ(rules[0].threshold, 0.0);
  EXPECT_EQ(rules[0].for_ms, 0);

  EXPECT_EQ(rules[1].name, "p99-slo");
  EXPECT_EQ(rules[1].fn, AlertFn::kP99);
  EXPECT_EQ(rules[1].op, AlertOp::kGe);
  EXPECT_EQ(rules[1].threshold, 5e4);
  EXPECT_EQ(rules[1].for_ms, 10000);

  EXPECT_EQ(rules[2].fn, AlertFn::kValue);
  EXPECT_EQ(rules[2].op, AlertOp::kLt);
  EXPECT_EQ(rules[2].for_ms, 250);
}

TEST(AlertRuleParser, ExpressionRoundTrips) {
  const auto rules =
      parse_alert_rules("x: p90(lat.us) > 250 for 2s\ny: value(g) <= 1\n");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].expression(), "p90(lat.us) > 250 for 2s");
  EXPECT_EQ(rules[1].expression(), "value(g) <= 1");
  // Round-trip: re-parsing "name: expression()" yields the same rule.
  const auto again = parse_alert_rules("x: " + rules[0].expression() + "\n");
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].fn, rules[0].fn);
  EXPECT_EQ(again[0].metric, rules[0].metric);
  EXPECT_EQ(again[0].threshold, rules[0].threshold);
  EXPECT_EQ(again[0].for_ms, rules[0].for_ms);
}

TEST(AlertRuleParser, ParsesAndRoundTripsWindowSuffixes) {
  const auto rules = parse_alert_rules(
      "a: rate(drops[30s]) > 1\n"
      "b: p99(lat.us[1500ms]) >= 2 for 5s\n"
      "c: rate(burn[2m]) > 3\n"
      "d: rate(no.window) > 4\n");
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0].window_ms, 30'000);
  EXPECT_EQ(rules[0].metric, "drops");
  EXPECT_EQ(rules[1].window_ms, 1'500);
  EXPECT_EQ(rules[1].metric, "lat.us");
  EXPECT_EQ(rules[1].for_ms, 5'000);
  EXPECT_EQ(rules[2].window_ms, 120'000);
  EXPECT_EQ(rules[3].window_ms, 0);  // 0 = kDefaultAlertWindowMs at eval

  EXPECT_EQ(rules[0].expression(), "rate(drops[30s]) > 1");
  EXPECT_EQ(rules[1].expression(), "p99(lat.us[1500ms]) >= 2 for 5s");
  for (const auto& rule : rules) {
    const auto again = parse_alert_rules("x: " + rule.expression() + "\n");
    ASSERT_EQ(again.size(), 1u) << rule.expression();
    EXPECT_EQ(again[0].metric, rule.metric);
    EXPECT_EQ(again[0].window_ms, rule.window_ms) << rule.expression();
  }
}

TEST(AlertRuleParser, RejectsMalformedWindows) {
  const auto expect_fail = [](const char* text, const char* what) {
    try {
      parse_alert_rules(text);
      ADD_FAILURE() << "expected ParseError for: " << text;
    } catch (const failmine::ParseError& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << e.what();
    }
  };
  expect_fail("x: rate(m[5q]) > 1\n", "window unit");
  expect_fail("x: rate(m[xs]) > 1\n", "window");
  expect_fail("x: rate(m[-5s]) > 1\n", "positive");
  expect_fail("x: rate(m]) > 1\n", "']'");
}

TEST(AlertRuleParser, RejectsMalformedLinesWithLineNumbers) {
  const auto expect_fail = [](const char* text, const char* what) {
    try {
      parse_alert_rules(text);
      ADD_FAILURE() << "expected ParseError for: " << text;
    } catch (const failmine::ParseError& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << e.what();
    }
  };
  expect_fail("no colon here\n", "missing ':'");
  expect_fail("x: frobnicate(m) > 1\n", "unknown fn");
  expect_fail("x: value() > 1\n", "empty metric");
  expect_fail("x: value(m) ~ 1\n", "comparison");
  expect_fail("x: value(m) > banana\n", "threshold");
  expect_fail("x: value(m) > 1 for 5 fortnights\n", "unit");
  expect_fail("ok: value(m) > 1\nbad line\n", "line 2");
}

TEST(AlertRuleParser, LoadsFromFileAndDefaultsParse) {
  const auto path = temp_path("rules");
  {
    std::ofstream out(path);
    out << "a: value(m) > 1\n";
  }
  const auto rules = load_alert_rules_file(path.string());
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].name, "a");
  std::filesystem::remove(path);

  EXPECT_THROW(load_alert_rules_file("/nonexistent/alert/rules"),
               failmine::ObsError);

  const auto defaults = default_alert_rules();
  EXPECT_GE(defaults.size(), 3u);
  for (const auto& rule : defaults) EXPECT_FALSE(rule.name.empty());
}

// ---- engine ------------------------------------------------------------

TEST(AlertEngine, ValueRuleFiresAndResolves) {
  MetricsRegistry reg;
  AlertEngine engine(&reg);
  engine.set_rules(parse_alert_rules("depth: value(q.depth) > 10\n"));

  reg.gauge("q.depth").set(5.0);
  engine.evaluate_now();
  EXPECT_EQ(engine.firing(), 0u);
  ASSERT_EQ(engine.status().size(), 1u);
  EXPECT_EQ(engine.status()[0].state, AlertState::kInactive);

  reg.gauge("q.depth").set(25.0);
  engine.evaluate_now();
  EXPECT_EQ(engine.firing(), 1u);
  EXPECT_EQ(engine.status()[0].state, AlertState::kFiring);
  EXPECT_EQ(engine.status()[0].last_value, 25.0);

  reg.gauge("q.depth").set(3.0);
  engine.evaluate_now();
  EXPECT_EQ(engine.firing(), 0u);
  EXPECT_EQ(engine.status()[0].state, AlertState::kResolved);

  // A fresh breach re-enters from resolved.
  reg.gauge("q.depth").set(99.0);
  engine.evaluate_now();
  EXPECT_EQ(engine.status()[0].state, AlertState::kFiring);
}

TEST(AlertEngine, MissingMetricNeverFires) {
  MetricsRegistry reg;
  AlertEngine engine(&reg);
  engine.set_rules(parse_alert_rules("ghost: value(not.there) > 0\n"));
  engine.evaluate_now();
  EXPECT_EQ(engine.firing(), 0u);
  EXPECT_FALSE(engine.status()[0].has_value);
  EXPECT_NE(engine.to_json().find("\"value\":null"), std::string::npos);
}

TEST(AlertEngine, RateRuleNeedsABaselineThenMeasuresDelta) {
  MetricsRegistry reg;
  AlertEngine engine(&reg);
  engine.set_rules(parse_alert_rules("burn: rate(drops) > 0\n"));

  reg.counter("drops").add(100);
  engine.evaluate_now();  // first evaluation only captures the baseline
  EXPECT_EQ(engine.firing(), 0u);
  EXPECT_FALSE(engine.status()[0].has_value);

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine.evaluate_now();  // no increase since the baseline
  EXPECT_EQ(engine.firing(), 0u);

  reg.counter("drops").add(10);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine.evaluate_now();
  EXPECT_EQ(engine.firing(), 1u);
  EXPECT_GT(engine.status()[0].last_value, 0.0);

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine.evaluate_now();  // counter flat again -> resolved
  EXPECT_EQ(engine.firing(), 0u);
  EXPECT_EQ(engine.status()[0].state, AlertState::kResolved);
}

TEST(AlertEngine, QuantileRuleUsesHistogramAndSkipsEmpty) {
  MetricsRegistry reg;
  AlertEngine engine(&reg);
  engine.set_rules(parse_alert_rules("slow: p99(lat.us) > 100\n"));

  (void)reg.histogram("lat.us", {10.0, 100.0, 1000.0});
  engine.evaluate_now();  // histogram exists but is empty: no verdict
  EXPECT_EQ(engine.firing(), 0u);
  EXPECT_FALSE(engine.status()[0].has_value);

  for (int i = 0; i < 100; ++i) reg.histogram("lat.us").observe(500.0);
  engine.evaluate_now();
  EXPECT_EQ(engine.firing(), 1u);
  EXPECT_GT(engine.status()[0].last_value, 100.0);
}

TEST(AlertEngine, ForDurationHoldsInPendingBeforeFiring) {
  MetricsRegistry reg;
  AlertEngine engine(&reg);
  engine.set_rules(parse_alert_rules("held: value(g) > 0 for 50ms\n"));

  reg.gauge("g").set(1.0);
  engine.evaluate_now();
  EXPECT_EQ(engine.status()[0].state, AlertState::kPending);
  EXPECT_EQ(engine.firing(), 0u);

  // Condition clears during the hold: back to inactive, not firing.
  reg.gauge("g").set(0.0);
  engine.evaluate_now();
  EXPECT_EQ(engine.status()[0].state, AlertState::kInactive);

  // Breach that survives the hold fires.
  reg.gauge("g").set(1.0);
  engine.evaluate_now();
  EXPECT_EQ(engine.status()[0].state, AlertState::kPending);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  engine.evaluate_now();
  EXPECT_EQ(engine.status()[0].state, AlertState::kFiring);
  EXPECT_EQ(engine.firing(), 1u);
}

TEST(AlertEngine, ToJsonListsEveryRule) {
  MetricsRegistry reg;
  AlertEngine engine(&reg);
  engine.set_rules(
      parse_alert_rules("one: value(a) > 1\ntwo: rate(b) > 2 for 3s\n"));
  reg.gauge("a").set(5.0);
  engine.evaluate_now();
  const std::string json = engine.to_json();
  EXPECT_NE(json.find("\"firing\":1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"one\""), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"firing\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"two\""), std::string::npos);
  EXPECT_NE(json.find("\"expr\":\"rate(b) > 2 for 3s\""), std::string::npos);
  EXPECT_NE(json.find("\"for_ms\":3000"), std::string::npos);
}

TEST(AlertEngine, BackgroundThreadEvaluatesAndStopsCleanly) {
  MetricsRegistry reg;
  AlertEngine engine(&reg);
  engine.set_rules(parse_alert_rules("hot: value(g) > 0\n"));
  reg.gauge("g").set(1.0);
  engine.start(/*poll_ms=*/5);
  EXPECT_TRUE(engine.running());
  engine.start(5);  // idempotent
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (engine.firing() == 0 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(engine.firing(), 1u);
  engine.stop();
  EXPECT_FALSE(engine.running());
  engine.stop();  // idempotent
}

TEST(AlertEngine, SetRulesResetsStateAndFiringCount) {
  MetricsRegistry reg;
  AlertEngine engine(&reg);
  engine.set_rules(parse_alert_rules("x: value(g) > 0\n"));
  reg.gauge("g").set(1.0);
  engine.evaluate_now();
  EXPECT_EQ(engine.firing(), 1u);
  engine.set_rules(parse_alert_rules("y: value(g) < 0\n"));
  EXPECT_EQ(engine.firing(), 0u);
  EXPECT_EQ(engine.rule_count(), 1u);
  engine.add_rule(parse_alert_rules("z: value(g) > 100\n")[0]);
  EXPECT_EQ(engine.rule_count(), 2u);
}

// ---- per-label-group evaluation ----------------------------------------

TEST(AlertEngineGroups, SelectorRulesFirePerLabelGroup) {
  MetricsRegistry reg;
  AlertEngine engine(&reg);
  engine.set_rules(parse_alert_rules(
      "depth: value(q.depth{twin=~\"*\"}) > 10\n"));
  reg.gauge("q.depth", {{"twin", "t0"}}).set(5.0);
  reg.gauge("q.depth", {{"twin", "t1"}}).set(25.0);

  // One rule, two matched series, independent state machines.
  engine.evaluate_now();
  EXPECT_EQ(engine.firing(), 1u);
  const auto status = engine.status();
  ASSERT_EQ(status.size(), 2u);
  for (const auto& s : status) {
    EXPECT_EQ(s.rule.name, "depth");
    if (s.series == "q.depth{twin=\"t1\"}") {
      EXPECT_EQ(s.state, AlertState::kFiring);
      EXPECT_DOUBLE_EQ(s.last_value, 25.0);
    } else {
      EXPECT_EQ(s.series, "q.depth{twin=\"t0\"}");
      EXPECT_EQ(s.state, AlertState::kInactive);
    }
  }
  EXPECT_NE(engine.to_json().find("\"series\":\"q.depth{twin=\\\"t1\\\"}\""),
            std::string::npos);

  // Groups resolve independently: t1 clears while t0 breaches.
  reg.gauge("q.depth", {{"twin", "t1"}}).set(1.0);
  reg.gauge("q.depth", {{"twin", "t0"}}).set(99.0);
  engine.evaluate_now();
  EXPECT_EQ(engine.firing(), 1u);
  for (const auto& s : engine.status()) {
    if (s.series == "q.depth{twin=\"t0\"}")
      EXPECT_EQ(s.state, AlertState::kFiring);
    else
      EXPECT_EQ(s.state, AlertState::kResolved);
  }
}

TEST(AlertEngineGroups, NewLabelGroupsJoinARunningRule) {
  MetricsRegistry reg;
  AlertEngine engine(&reg);
  engine.set_rules(
      parse_alert_rules("ghost: value(g.depth{twin=~\"*\"}) > 0\n"));

  // No matching series yet: a single synthetic no-data group keyed by
  // the rule's own selector.
  engine.evaluate_now();
  ASSERT_EQ(engine.status().size(), 1u);
  EXPECT_EQ(engine.status()[0].series, "g.depth{twin=~\"*\"}");
  EXPECT_FALSE(engine.status()[0].has_value);
  EXPECT_EQ(engine.firing(), 0u);

  // The first real match retires the synthetic group; a later twin
  // joins as its own group without disturbing the first.
  reg.gauge("g.depth", {{"twin", "t0"}}).set(1.0);
  engine.evaluate_now();
  ASSERT_EQ(engine.status().size(), 1u);
  EXPECT_EQ(engine.status()[0].series, "g.depth{twin=\"t0\"}");
  EXPECT_EQ(engine.firing(), 1u);

  reg.gauge("g.depth", {{"twin", "t7"}}).set(2.0);
  engine.evaluate_now();
  EXPECT_EQ(engine.status().size(), 2u);
  EXPECT_EQ(engine.firing(), 2u);
}

TEST(AlertEngineGroups, RateRulesKeepPerGroupBaselines) {
  MetricsRegistry reg;
  AlertEngine engine(&reg);
  engine.set_rules(
      parse_alert_rules("burn: rate(drops{twin=~\"*\"}) > 0\n"));
  auto& a = reg.counter("drops", {{"twin", "t0"}});
  auto& b = reg.counter("drops", {{"twin", "t1"}});
  a.add(100);
  b.add(100);
  engine.evaluate_now();  // baselines only
  EXPECT_EQ(engine.firing(), 0u);

  // Only t1's counter moves: only t1's group may fire.
  b.add(50);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine.evaluate_now();
  EXPECT_EQ(engine.firing(), 1u);
  for (const auto& s : engine.status()) {
    if (s.series == "drops{twin=\"t1\"}")
      EXPECT_EQ(s.state, AlertState::kFiring);
    else
      EXPECT_NE(s.state, AlertState::kFiring) << s.series;
  }
}

// ---- history-backed evaluation (obs::tsdb) -----------------------------

// Virtual-clock origin for the manually scraped stores below.
constexpr std::int64_t kT0 = 1'700'000'040'000;

TEST(AlertEngineHistory, RateEvaluatesStoredWindowOnFirstPass) {
  MetricsRegistry reg;
  auto& drops = reg.counter("drops");
  TsdbConfig tc;
  tc.registry = &reg;
  TsdbStore store(tc);
  AlertEngine engine(&reg);
  engine.set_history(&store);
  engine.set_rules(parse_alert_rules("burn: rate(drops[60s]) > 5\n"));

  // No scrapes yet: the attached store is ignored and the legacy path
  // needs its consecutive-evaluation baseline, so no verdict.
  engine.evaluate_now();
  EXPECT_FALSE(engine.status()[0].has_value);

  drops.add(1000);
  store.scrape_once(kT0);
  drops.add(600);
  store.scrape_once(kT0 + 60'000);

  // One evaluation suffices: 600 events over the stored 60 s window.
  engine.evaluate_now();
  EXPECT_EQ(engine.firing(), 1u);
  EXPECT_TRUE(engine.status()[0].has_value);
  EXPECT_DOUBLE_EQ(engine.status()[0].last_value, 10.0);

  // Detaching the store falls back to the legacy baseline semantics.
  engine.set_history(nullptr);
  engine.set_rules(parse_alert_rules("burn: rate(drops[60s]) > 5\n"));
  engine.evaluate_now();
  EXPECT_FALSE(engine.status()[0].has_value);
}

TEST(AlertEngineHistory, LatencySpikeFiresOnlyViaWindowedBuckets) {
  // The regression this PR exists for: a p99 rule reading
  // lifetime-cumulative buckets never sees a short spike, because the
  // spike's 50 observations drown in 100k historical fast ones. The
  // windowed-bucket-delta path must fire on the same data.
  MetricsRegistry reg;
  auto& h = reg.histogram("lat.us", {100.0, 1000.0, 100000.0});
  for (int i = 0; i < 100000; ++i) h.observe(10.0);

  TsdbConfig tc;
  tc.registry = &reg;
  TsdbStore store(tc);
  store.scrape_once(kT0);  // baseline scrape covers the fast flood
  for (int i = 0; i < 50; ++i) h.observe(50'000.0);  // the spike
  store.scrape_once(kT0 + 60'000);

  const char* kRule = "slow: p99(lat.us[1m]) > 1000\n";

  AlertEngine lifetime(&reg);  // no history attached
  lifetime.set_rules(parse_alert_rules(kRule));
  lifetime.evaluate_now();
  EXPECT_EQ(lifetime.firing(), 0u);
  EXPECT_TRUE(lifetime.status()[0].has_value);
  EXPECT_LE(lifetime.status()[0].last_value, 100.0);

  AlertEngine windowed(&reg);
  windowed.set_history(&store);
  windowed.set_rules(parse_alert_rules(kRule));
  windowed.evaluate_now();
  EXPECT_EQ(windowed.firing(), 1u);
  EXPECT_GT(windowed.status()[0].last_value, 1000.0);

  // A later window with no observations abstains ("no data"), it does
  // not report a p99 of 0.
  store.scrape_once(kT0 + 600'000);
  windowed.evaluate_now();
  EXPECT_EQ(windowed.firing(), 0u);
  EXPECT_FALSE(windowed.status()[0].has_value);
}

}  // namespace
}  // namespace failmine::obs
