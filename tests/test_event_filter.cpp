// Unit + property tests for the similarity-based event filter — the
// paper's core instrument (takeaway T-E).

#include "core/event_filter.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "raslog/message_catalog.hpp"
#include "util/error.hpp"

namespace failmine::core {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

raslog::RasEvent make_fatal(std::uint64_t id, util::UnixSeconds t,
                            const char* location,
                            const char* msg = "00010005") {
  raslog::RasEvent e;
  e.record_id = id;
  e.timestamp = t;
  e.message_id = msg;
  const auto& def = raslog::message_by_id(msg);
  e.severity = def.severity;
  e.component = def.component;
  e.category = def.category;
  e.location = topology::Location::parse(location, kMira);
  return e;
}

raslog::RasLog burst_log() {
  // One burst of 5 fatals on the same board within 2 minutes, then a
  // separate fatal a day later on another rack.
  std::vector<raslog::RasEvent> events;
  for (int i = 0; i < 5; ++i)
    events.push_back(make_fatal(static_cast<std::uint64_t>(i + 1),
                                1000 + i * 30, "R00-M0-N03-J04"));
  events.push_back(make_fatal(6, 1000 + 86400, "R11-M1-N09-J01"));
  return raslog::RasLog(std::move(events));
}

TEST(EventFilter, CollapsesBurstToOneCluster) {
  const FilterResult r = filter_events(burst_log(), FilterConfig{});
  EXPECT_EQ(r.input_events, 6u);
  ASSERT_EQ(r.clusters.size(), 2u);
  EXPECT_EQ(r.clusters[0].member_count, 5u);
  EXPECT_EQ(r.clusters[1].member_count, 1u);
  EXPECT_DOUBLE_EQ(r.reduction_factor(), 3.0);
}

TEST(EventFilter, RepresentativeIsEarliestMember) {
  const FilterResult r = filter_events(burst_log(), FilterConfig{});
  EXPECT_EQ(r.clusters[0].representative.record_id, 1u);
  EXPECT_EQ(r.clusters[0].first_time, 1000);
  EXPECT_EQ(r.clusters[0].last_time, 1000 + 4 * 30);
}

TEST(EventFilter, TemporalWindowSplitsDistantEvents) {
  std::vector<raslog::RasEvent> events = {
      make_fatal(1, 0, "R00-M0-N00-J00"),
      make_fatal(2, 5000, "R00-M0-N00-J00"),  // > 900 s later
  };
  const FilterResult r =
      filter_events(raslog::RasLog(std::move(events)), FilterConfig{});
  EXPECT_EQ(r.clusters.size(), 2u);
}

TEST(EventFilter, SlidingWindowChainsCloseEvents) {
  // Consecutive gaps of 600 s with a 900 s window chain into one cluster
  // even though first-to-last exceeds the window.
  std::vector<raslog::RasEvent> events;
  for (int i = 0; i < 5; ++i)
    events.push_back(make_fatal(static_cast<std::uint64_t>(i + 1), i * 600,
                                "R00-M0-N00-J00"));
  const FilterResult r =
      filter_events(raslog::RasLog(std::move(events)), FilterConfig{});
  EXPECT_EQ(r.clusters.size(), 1u);
  EXPECT_EQ(r.clusters[0].member_count, 5u);
}

TEST(EventFilter, SpatialRadiusSeparatesDistantHardware) {
  std::vector<raslog::RasEvent> events = {
      make_fatal(1, 0, "R00-M0-N00-J00"),
      make_fatal(2, 10, "R00-M1-N00-J00"),   // same rack, other midplane
      make_fatal(3, 20, "R01-M0-N00-J00"),   // other rack
  };
  FilterConfig config;
  config.spatial_level = topology::Level::kMidplane;
  const FilterResult r =
      filter_events(raslog::RasLog(std::move(events)), config);
  EXPECT_EQ(r.clusters.size(), 3u);
}

TEST(EventFilter, RackRadiusMergesAcrossMidplanes) {
  std::vector<raslog::RasEvent> events = {
      make_fatal(1, 0, "R00-M0-N00-J00"),
      make_fatal(2, 10, "R00-M1-N00-J00"),
      make_fatal(3, 20, "R01-M0-N00-J00"),
  };
  FilterConfig config;
  config.spatial_level = topology::Level::kRack;
  const FilterResult r =
      filter_events(raslog::RasLog(std::move(events)), config);
  EXPECT_EQ(r.clusters.size(), 2u);
}

TEST(EventFilter, ShallowLocationCoversItsSubtree) {
  // A midplane-level event and a card-level event on that midplane are
  // similar even under a card-level radius, because the shallow location
  // covers the deep one.
  std::vector<raslog::RasEvent> events = {
      make_fatal(1, 0, "R00-M0", "00100006"),
      make_fatal(2, 10, "R00-M0-N00-J00"),
  };
  FilterConfig config;
  config.spatial_level = topology::Level::kComputeCard;
  const FilterResult r =
      filter_events(raslog::RasLog(std::move(events)), config);
  EXPECT_EQ(r.clusters.size(), 1u);
}

TEST(EventFilter, MessageMatchingSplitsDifferentIds) {
  std::vector<raslog::RasEvent> events = {
      make_fatal(1, 0, "R00-M0-N00-J00", "00010005"),
      make_fatal(2, 10, "R00-M0-N00-J00", "00010006"),
  };
  FilterConfig config;
  config.require_same_message = true;
  const FilterResult r =
      filter_events(raslog::RasLog(std::move(events)), config);
  EXPECT_EQ(r.clusters.size(), 2u);
}

TEST(EventFilter, SeveritySelectsInputStream) {
  std::vector<raslog::RasEvent> events = {
      make_fatal(1, 0, "R00-M0-N00-J00"),
      make_fatal(2, 10, "R00-M0-N00-J00", "00010001"),  // INFO
  };
  const FilterResult r =
      filter_events(raslog::RasLog(std::move(events)), FilterConfig{});
  EXPECT_EQ(r.input_events, 1u);
}

TEST(EventFilter, JobAssociationPropagatesToCluster) {
  std::vector<raslog::RasEvent> events = {
      make_fatal(1, 0, "R00-M0-N00-J00"),
      make_fatal(2, 10, "R00-M0-N00-J00"),
  };
  events[1].job_id = 777;
  const FilterResult r =
      filter_events(raslog::RasLog(std::move(events)), FilterConfig{});
  ASSERT_EQ(r.clusters.size(), 1u);
  EXPECT_EQ(r.clusters[0].job_id, 777u);
}

TEST(EventFilter, WidenedWindowNeverIncreasesClusterCount) {
  const raslog::RasLog log = burst_log();
  std::size_t prev = SIZE_MAX;
  for (std::int64_t window : {0, 60, 300, 900, 3600, 86400, 7 * 86400}) {
    FilterConfig config;
    config.window_seconds = window;
    const std::size_t n = filter_events(log, config).clusters.size();
    EXPECT_LE(n, prev) << "window=" << window;
    prev = n;
  }
}

TEST(EventFilter, EmptyLogYieldsNoClusters) {
  const FilterResult r = filter_events(raslog::RasLog(), FilterConfig{});
  EXPECT_EQ(r.input_events, 0u);
  EXPECT_TRUE(r.clusters.empty());
  EXPECT_DOUBLE_EQ(r.reduction_factor(), 0.0);
}

TEST(EventFilter, NegativeWindowRejected) {
  FilterConfig config;
  config.window_seconds = -1;
  EXPECT_THROW(filter_events(raslog::RasLog(), config), failmine::DomainError);
}

TEST(FilteringPipeline, StageCountsAreOrdered) {
  const PipelineCounts p = filtering_pipeline(burst_log(), FilterConfig{});
  EXPECT_EQ(p.raw, 6u);
  // Combined filtering can never produce fewer clusters than either
  // single-criterion filter alone.
  EXPECT_LE(p.temporal_only, p.combined);
  EXPECT_LE(p.spatial_only, p.combined);
  EXPECT_LE(p.combined, p.raw);
  EXPECT_EQ(p.spatial_only, 2u);  // two distinct midplanes
  EXPECT_EQ(p.temporal_only, 2u);
  EXPECT_EQ(p.combined, 2u);
}

TEST(SpatiallySimilar, DirectChecks) {
  FilterConfig config;
  config.spatial_level = topology::Level::kNodeBoard;
  const auto a = make_fatal(1, 0, "R00-M0-N03-J04");
  const auto b = make_fatal(2, 0, "R00-M0-N03-J09");
  const auto c = make_fatal(3, 0, "R00-M0-N04-J04");
  EXPECT_TRUE(spatially_similar(a, b, config));
  EXPECT_FALSE(spatially_similar(a, c, config));
}

}  // namespace
}  // namespace failmine::core
