// Tests for obs::causal — sampled per-record trace contexts.
//
// The stage histograms live in the process-global metrics registry and
// survive reconfiguration, so each test that asserts on histogram
// counts uses test-unique stage names (a fresh configure() zeroes the
// slot ring and the sampled counter, not the histograms).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace failmine::obs {
namespace {

TEST(CausalTraceIdHex, RoundTrips) {
  EXPECT_EQ(causal_trace_id_hex(0), "0000000000000000");
  EXPECT_EQ(causal_trace_id_hex(0xdeadbeefULL), "00000000deadbeef");
  std::uint64_t id = 0;
  ASSERT_TRUE(parse_trace_id(causal_trace_id_hex(0x1234abcd5678ef90ULL), id));
  EXPECT_EQ(id, 0x1234abcd5678ef90ULL);
}

TEST(CausalTraceIdHex, ParseAcceptsPrefixAndRejectsGarbage) {
  std::uint64_t id = 0;
  EXPECT_TRUE(parse_trace_id("0xff", id));
  EXPECT_EQ(id, 0xffu);
  EXPECT_TRUE(parse_trace_id("FF", id));
  EXPECT_EQ(id, 0xffu);
  EXPECT_FALSE(parse_trace_id("", id));
  EXPECT_FALSE(parse_trace_id("0x", id));
  EXPECT_FALSE(parse_trace_id("xyz", id));
  EXPECT_FALSE(parse_trace_id("12345678901234567", id));  // 17 digits
}

TEST(CausalTracer, ConfigureValidates) {
  CausalTracer tracer;
  EXPECT_THROW(tracer.configure({}, 1), failmine::DomainError);
  EXPECT_THROW(
      tracer.configure(std::vector<std::string>(kCausalMaxStages + 1, "s"), 1),
      failmine::DomainError);
  EXPECT_THROW(tracer.configure({"a", "b"}, 1, /*capacity=*/0),
               failmine::DomainError);
}

TEST(CausalTracer, PeriodZeroDisablesSampling) {
  CausalTracer tracer;
  tracer.configure({"in", "out"}, /*sample_period=*/0);
  EXPECT_FALSE(tracer.enabled());
  for (std::uint64_t key = 0; key < 1000; ++key)
    EXPECT_EQ(tracer.maybe_begin(key), 0u);
  EXPECT_EQ(tracer.sampled(), 0u);
}

TEST(CausalTracer, PeriodOneSamplesEverythingDeterministically) {
  CausalTracer tracer;
  tracer.configure({"t1a", "t1b"}, /*sample_period=*/1);
  for (std::uint64_t key = 0; key < 64; ++key)
    EXPECT_NE(tracer.maybe_begin(key), 0u) << key;
  EXPECT_EQ(tracer.sampled(), 64u);
}

TEST(CausalTracer, SamplingIsDeterministicAndRoughlyOneInPeriod) {
  CausalTracer tracer;
  tracer.configure({"t2a", "t2b"}, /*sample_period=*/100, /*capacity=*/8192);
  std::set<std::uint64_t> sampled_keys;
  const std::uint64_t n = 100000;
  for (std::uint64_t key = 0; key < n; ++key)
    if (tracer.maybe_begin(key) != 0) sampled_keys.insert(key);
  // Hash sampling: ~1% with generous slack.
  EXPECT_GT(sampled_keys.size(), n / 200);
  EXPECT_LT(sampled_keys.size(), n / 50);
  // Deterministic: the same keys sample again after a reconfigure.
  tracer.configure({"t2a", "t2b"}, 100, 8192);
  for (std::uint64_t key = 0; key < n; ++key) {
    const bool sampled = tracer.maybe_begin(key) != 0;
    EXPECT_EQ(sampled, sampled_keys.contains(key)) << key;
  }
}

TEST(CausalTracer, StampBuildsMonotoneTimelineResolvableById) {
  CausalTracer& tracer = causal_tracer();
  tracer.configure({"emit", "mid", "done"}, /*sample_period=*/1);
  const std::uint32_t ref = tracer.maybe_begin(42);
  ASSERT_NE(ref, 0u);
  const std::uint64_t id = tracer.trace_id_of(ref);
  ASSERT_NE(id, 0u);
  tracer.stamp(ref, 1);
  tracer.stamp(ref, 2);

  const auto timeline = tracer.find(id);
  ASSERT_TRUE(timeline.has_value());
  EXPECT_EQ(timeline->trace_id, id);
  EXPECT_EQ(timeline->key, 42u);
  ASSERT_EQ(timeline->stamps.size(), 3u);
  EXPECT_EQ(timeline->stamps[0].stage, "emit");
  EXPECT_EQ(timeline->stamps[1].stage, "mid");
  EXPECT_EQ(timeline->stamps[2].stage, "done");
  for (std::size_t i = 1; i < timeline->stamps.size(); ++i)
    EXPECT_GE(timeline->stamps[i].at_us, timeline->stamps[i - 1].at_us);

  const std::string json = timeline->to_json();
  EXPECT_NE(json.find("\"trace_id\":\"" + causal_trace_id_hex(id) + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"done\""), std::string::npos);
}

TEST(CausalTracer, FindMissesUnknownAndRecycledIds) {
  CausalTracer tracer;
  tracer.configure({"t3a", "t3b"}, 1, /*capacity=*/2);
  EXPECT_FALSE(tracer.find(0xabcdef).has_value());
  const std::uint32_t ref = tracer.maybe_begin(1);
  const std::uint64_t id = tracer.trace_id_of(ref);
  EXPECT_TRUE(tracer.find(id).has_value());
  // Capacity 2: two more samples recycle the first slot.
  (void)tracer.maybe_begin(2);
  (void)tracer.maybe_begin(3);
  EXPECT_FALSE(tracer.find(id).has_value());
}

TEST(CausalTracer, StampFeedsStageAndEndToEndHistograms) {
  CausalTracer tracer;
  tracer.configure({"t4emit", "t4hop", "t4end"}, 1);
  Histogram& hop = metrics().histogram("causal.stage.t4hop_us");
  Histogram& end = metrics().histogram("causal.stage.t4end_us");
  Histogram& e2e = metrics().histogram("causal.e2e_us");
  const std::uint64_t hop_before = hop.count();
  const std::uint64_t end_before = end.count();
  const std::uint64_t e2e_before = e2e.count();

  const std::uint32_t ref = tracer.maybe_begin(7);
  ASSERT_NE(ref, 0u);
  tracer.stamp(ref, 1);
  tracer.stamp(ref, 2);  // last stage: also observes e2e

  EXPECT_EQ(hop.count(), hop_before + 1);
  EXPECT_EQ(end.count(), end_before + 1);
  EXPECT_EQ(e2e.count(), e2e_before + 1);

  // The exemplar on the stage histogram carries this trace's id.
  const std::vector<Exemplar> exemplars = hop.exemplars();
  const std::uint64_t id = tracer.trace_id_of(ref);
  bool found = false;
  for (const Exemplar& e : exemplars) found |= e.trace_id == id;
  EXPECT_TRUE(found);
}

TEST(CausalTracer, StampIgnoresInvalidRefsAndStages) {
  CausalTracer tracer;
  tracer.configure({"t5a", "t5b"}, 1);
  tracer.stamp(0, 1);          // ref 0: the not-sampled path
  const std::uint32_t ref = tracer.maybe_begin(9);
  tracer.stamp(ref, 0);        // stage 0 is maybe_begin's
  tracer.stamp(ref, 99);       // out of range
  const auto timeline = tracer.find(tracer.trace_id_of(ref));
  ASSERT_TRUE(timeline.has_value());
  EXPECT_EQ(timeline->stamps.size(), 1u);  // only the emit stamp
}

TEST(CausalTracer, StageStatsNormalizeShares) {
  CausalTracer tracer;
  tracer.configure({"t6a", "t6b", "t6c"}, 1);
  for (std::uint64_t key = 0; key < 32; ++key) {
    const std::uint32_t ref = tracer.maybe_begin(key);
    tracer.stamp(ref, 1);
    tracer.stamp(ref, 2);
  }
  const auto stats = tracer.stage_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].stage, "t6b");
  EXPECT_EQ(stats[1].stage, "t6c");
  double share_sum = 0.0;
  for (const auto& s : stats) {
    EXPECT_EQ(s.count, 32u);
    EXPECT_GE(s.share, 0.0);
    EXPECT_LE(s.share, 1.0);
    share_sum += s.share;
  }
  // Shares sum to 1 whenever any stage time was recorded at all.
  if (share_sum > 0.0) EXPECT_NEAR(share_sum, 1.0, 1e-9);

  const std::string report = tracer.critical_path_text();
  EXPECT_NE(report.find("32 sampled records"), std::string::npos);
  EXPECT_NE(report.find("t6b"), std::string::npos);
  EXPECT_NE(report.find("end-to-end"), std::string::npos);
}

TEST(CausalTracer, ResetDropsTracesButKeepsConfiguration) {
  CausalTracer tracer;
  tracer.configure({"t7a", "t7b"}, 1);
  const std::uint32_t ref = tracer.maybe_begin(5);
  const std::uint64_t id = tracer.trace_id_of(ref);
  ASSERT_TRUE(tracer.find(id).has_value());
  tracer.reset();
  EXPECT_FALSE(tracer.find(id).has_value());
  EXPECT_EQ(tracer.sampled(), 0u);
  EXPECT_TRUE(tracer.enabled());
  EXPECT_NE(tracer.maybe_begin(5), 0u);  // still sampling
}

TEST(CausalTracer, ConcurrentStampAndScrapeIsSafe) {
  CausalTracer tracer;
  tracer.configure({"t8a", "t8b", "t8c"}, 1, /*capacity=*/64);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t key = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint32_t ref = tracer.maybe_begin(++key);
      tracer.stamp(ref, 1);
      tracer.stamp(ref, 2);
    }
  });
  // Readers race the writer: every resolved timeline must be internally
  // consistent (monotone stamps, matching id) even while slots recycle.
  for (int round = 0; round < 200; ++round) {
    for (std::uint64_t key = 1; key < 32; ++key) {
      const auto timeline = tracer.find(tracer.trace_id_of(
          static_cast<std::uint32_t>(key % 64 + 1)));
      if (!timeline.has_value()) continue;
      for (std::size_t i = 1; i < timeline->stamps.size(); ++i)
        EXPECT_GE(timeline->stamps[i].at_us, timeline->stamps[i - 1].at_us);
    }
    (void)tracer.stage_stats();
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace failmine::obs
