// Integration tests for core/joint_analyzer on a simulated trace.

#include "core/joint_analyzer.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace failmine::core {
namespace {

class JointAnalyzerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new sim::SimConfig(sim::SimConfig::test_scale());
    result_ = new sim::SimResult(sim::simulate(*config_));
    analyzer_ = new JointAnalyzer(result_->job_log, result_->task_log,
                                  result_->ras_log, result_->io_log,
                                  config_->machine);
  }
  static void TearDownTestSuite() {
    delete analyzer_;
    delete result_;
    delete config_;
    analyzer_ = nullptr;
    result_ = nullptr;
    config_ = nullptr;
  }
  static sim::SimConfig* config_;
  static sim::SimResult* result_;
  static JointAnalyzer* analyzer_;
};

sim::SimConfig* JointAnalyzerTest::config_ = nullptr;
sim::SimResult* JointAnalyzerTest::result_ = nullptr;
JointAnalyzer* JointAnalyzerTest::analyzer_ = nullptr;

TEST_F(JointAnalyzerTest, DatasetSummaryTotalsMatchLogs) {
  const auto s = analyzer_->dataset_summary();
  EXPECT_EQ(s.jobs, result_->job_log.size());
  EXPECT_EQ(s.tasks, result_->task_log.size());
  EXPECT_EQ(s.ras_events, result_->ras_log.size());
  EXPECT_EQ(s.io_records, result_->io_log.size());
  EXPECT_NEAR(s.span_days, 2001.0, 2.0);
  EXPECT_GT(s.total_core_hours, 0.0);
  EXPECT_EQ(s.ras_by_severity[0] + s.ras_by_severity[1] + s.ras_by_severity[2],
            s.ras_events);
}

TEST_F(JointAnalyzerTest, ExitBreakdownSharesSumToOne) {
  const auto b = analyzer_->exit_breakdown();
  EXPECT_EQ(b.total_jobs, result_->job_log.size());
  double job_share = 0.0, failure_share = 0.0;
  std::uint64_t jobs = 0;
  for (const auto& row : b.rows) {
    job_share += row.share_of_jobs;
    failure_share += row.share_of_failures;
    jobs += row.jobs;
  }
  EXPECT_EQ(jobs, b.total_jobs);
  EXPECT_NEAR(job_share, 1.0, 1e-9);
  EXPECT_NEAR(failure_share, 1.0, 1e-9);
  EXPECT_NEAR(b.user_caused_share + b.system_caused_share, 1.0, 1e-9);
  EXPECT_GT(b.user_caused_share, 0.97);
}

TEST_F(JointAnalyzerTest, WindowCoversEveryRecord) {
  const auto begin = analyzer_->window_begin();
  const auto end = analyzer_->window_end();
  EXPECT_LT(begin, end);
  for (const auto& j : result_->job_log.jobs()) {
    EXPECT_GE(j.submit_time, begin);
    EXPECT_LE(j.end_time, end);
  }
}

TEST_F(JointAnalyzerTest, InterruptionAnalysisCountsEpisodes) {
  const auto fm = analyzer_->interruption_analysis(FilterConfig{});
  // The filter should recover approximately the ground-truth episode count
  // (within 2x: bursts can occasionally split or merge).
  const double truth = static_cast<double>(result_->episodes.size());
  EXPECT_GT(static_cast<double>(fm.mtti.interruptions), 0.5 * truth);
  EXPECT_LT(static_cast<double>(fm.mtti.interruptions), 2.0 * truth);
  EXPECT_GT(fm.filter.reduction_factor(), 3.0);
}

TEST_F(JointAnalyzerTest, RasUserCorrelationsAreStrong) {
  const auto c = analyzer_->ras_user_correlations();
  EXPECT_GT(c.users, 50u);
  EXPECT_GT(c.events_vs_core_hours, 0.5);
  EXPECT_GT(c.events_vs_jobs, 0.3);
}

TEST_F(JointAnalyzerTest, RuntimeStudyProducesRows) {
  const auto rows = analyzer_->runtime_distribution_study();
  EXPECT_GE(rows.size(), 3u);
}

TEST(JointAnalyzerUnit, RejectsEmptyJobLog) {
  const joblog::JobLog jobs;
  const tasklog::TaskLog tasks;
  const raslog::RasLog ras;
  const iolog::IoLog io;
  EXPECT_THROW(JointAnalyzer(jobs, tasks, ras, io,
                             topology::MachineConfig::mira()),
               failmine::DomainError);
}

}  // namespace
}  // namespace failmine::core
