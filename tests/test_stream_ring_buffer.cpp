// Tests for the bounded MPSC ring buffer and the watermark reorderer —
// the ingestion edge of the streaming pipeline.

#include "stream/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "stream/watermark.hpp"
#include "util/error.hpp"

namespace failmine::stream {
namespace {

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0, BackpressurePolicy::kBlock), DomainError);
}

TEST(RingBuffer, FifoWithinCapacity) {
  RingBuffer<int> ring(8, BackpressurePolicy::kBlock);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_EQ(ring.size(), 5u);
  std::vector<int> out;
  EXPECT_EQ(ring.pop_batch(out, 100), 5u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(ring.pushed(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(RingBuffer, DropNewestCountsRejections) {
  RingBuffer<int> ring(2, BackpressurePolicy::kDropNewest);
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
  EXPECT_FALSE(ring.push(3));  // full
  EXPECT_EQ(ring.dropped(), 1u);
  std::vector<int> out;
  ring.pop_batch(out, 1);
  EXPECT_TRUE(ring.push(4));  // space again
  EXPECT_EQ(ring.pushed(), 3u);
}

TEST(RingBuffer, PushBatchDropsOnlyWhatDoesNotFit) {
  RingBuffer<int> ring(3, BackpressurePolicy::kDropNewest);
  EXPECT_EQ(ring.push_batch({1, 2, 3, 4, 5}), 3u);
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(RingBuffer, PushAfterCloseFails) {
  RingBuffer<int> ring(4, BackpressurePolicy::kBlock);
  ring.push(1);
  ring.close();
  EXPECT_FALSE(ring.push(2));
  std::vector<int> out;
  EXPECT_EQ(ring.pop_batch(out, 10), 1u);  // drains what was accepted
  EXPECT_EQ(ring.pop_batch(out, 10), 0u);  // closed-and-empty
}

TEST(RingBuffer, BlockingProducerLosesNothing) {
  // Capacity far below the record count: producers must block, not drop.
  constexpr int kPerProducer = 5000;
  constexpr int kProducers = 4;
  RingBuffer<int> ring(64, BackpressurePolicy::kBlock);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(ring.push(p * kPerProducer + i));
    });

  std::vector<int> all;
  std::vector<int> batch;
  while (all.size() < kProducers * kPerProducer) {
    batch.clear();
    ASSERT_GT(ring.pop_batch(batch, 256), 0u);
    all.insert(all.end(), batch.begin(), batch.end());
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(ring.dropped(), 0u);
  std::sort(all.begin(), all.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) ASSERT_EQ(all[i], i);
}

TEST(RingBuffer, OversizedPushBatchWakesSleepingConsumer) {
  // Regression: push_batch used to defer its not_empty_ notify to the end
  // of the batch. A batch larger than the capacity filled the ring and
  // then slept on not_full_ with the consumer still asleep on not_empty_
  // — a mutual wait neither side could exit.
  constexpr std::size_t kCapacity = 32;
  constexpr std::size_t kTotal = 10 * kCapacity;
  RingBuffer<int> ring(kCapacity, BackpressurePolicy::kBlock);

  std::vector<int> all;
  std::thread consumer([&] {
    std::vector<int> batch;
    while (all.size() < kTotal) {
      batch.clear();
      if (ring.pop_batch(batch, 8) == 0) break;
      all.insert(all.end(), batch.begin(), batch.end());
    }
  });
  // Let the consumer reach its blocking wait on the empty ring before the
  // oversized batch arrives.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::vector<int> values(kTotal);
  std::iota(values.begin(), values.end(), 0);
  EXPECT_EQ(ring.push_batch(std::move(values)), kTotal);
  consumer.join();

  ASSERT_EQ(all.size(), kTotal);
  for (std::size_t i = 0; i < kTotal; ++i)
    ASSERT_EQ(all[i], static_cast<int>(i));  // FIFO preserved throughout
  EXPECT_EQ(ring.dropped(), 0u);
}

// ---- WatermarkReorderer ----------------------------------------------

StreamRecord ras_at(util::UnixSeconds t, std::uint64_t seq) {
  raslog::RasEvent e;
  e.record_id = seq;
  e.timestamp = t;
  return {t, seq, e};
}

TEST(Watermark, RejectsNegativeLateness) {
  EXPECT_THROW(WatermarkReorderer(-1), DomainError);
}

TEST(Watermark, ZeroLatenessPassesThroughInOrder) {
  WatermarkReorderer r(0);
  std::vector<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 5; ++i)
    r.push(ras_at(100 + static_cast<util::UnixSeconds>(i), i),
           [&](StreamRecord&& rec) { seen.push_back(rec.sequence); });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(r.late_records(), 0u);
}

TEST(Watermark, RestoresOrderWithinBound) {
  // Arrival order 3,1,2,4 with skew <= 10; lateness 20 restores 1,2,3,4.
  WatermarkReorderer r(20);
  std::vector<util::UnixSeconds> seen;
  auto emit = [&](StreamRecord&& rec) { seen.push_back(rec.time); };
  r.push(ras_at(103, 3), emit);
  r.push(ras_at(101, 1), emit);
  r.push(ras_at(102, 2), emit);
  r.push(ras_at(140, 4), emit);  // watermark jumps to 120, releasing 101..103
  r.flush(emit);
  EXPECT_EQ(seen, (std::vector<util::UnixSeconds>{101, 102, 103, 140}));
  EXPECT_EQ(r.late_records(), 0u);
}

TEST(Watermark, TiesReleaseInSequenceOrder) {
  WatermarkReorderer r(5);
  std::vector<std::uint64_t> seen;
  auto emit = [&](StreamRecord&& rec) { seen.push_back(rec.sequence); };
  r.push(ras_at(100, 2), emit);
  r.push(ras_at(100, 1), emit);
  r.push(ras_at(100, 3), emit);
  r.flush(emit);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Watermark, CountsBoundViolationsButStillReleases) {
  WatermarkReorderer r(10);
  std::vector<util::UnixSeconds> seen;
  auto emit = [&](StreamRecord&& rec) { seen.push_back(rec.time); };
  r.push(ras_at(200, 1), emit);
  r.push(ras_at(100, 2), emit);  // 90 seconds behind the watermark
  r.flush(emit);
  EXPECT_EQ(r.late_records(), 1u);
  EXPECT_EQ(seen.size(), 2u);  // nothing is dropped
}

TEST(Watermark, LagTracksHeldBackSpan) {
  WatermarkReorderer r(100);
  auto drop = [](StreamRecord&&) {};
  r.push(ras_at(1000, 1), drop);
  r.push(ras_at(1050, 2), drop);
  EXPECT_EQ(r.lag_seconds(), 50);  // 1000 is still buffered
  EXPECT_EQ(r.watermark(), 950);
  EXPECT_EQ(r.buffered(), 2u);
}

}  // namespace
}  // namespace failmine::stream
