// Unit tests for the Nelder-Mead optimizer and the log-logistic fitter
// built on it.

#include "distfit/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "distfit/loglogistic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace failmine::distfit {
namespace {

TEST(NelderMead, MinimizesQuadratic1D) {
  const auto r = nelder_mead(
      [](const std::vector<double>& x) { return (x[0] - 3.0) * (x[0] - 3.0); },
      {0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 3.0, 1e-4);
  EXPECT_NEAR(r.value, 0.0, 1e-8);
}

TEST(NelderMead, MinimizesRosenbrock2D) {
  const auto rosenbrock = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions options;
  options.max_iterations = 10000;
  const auto r = nelder_mead(rosenbrock, {-1.2, 1.0}, options);
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, HandlesInfiniteRegions) {
  // Objective rejects x < 0 with +inf; minimum at x = 2 is still found.
  const auto f = [](const std::vector<double>& x) {
    if (x[0] < 0) return std::numeric_limits<double>::infinity();
    return (x[0] - 2.0) * (x[0] - 2.0);
  };
  const auto r = nelder_mead(f, {5.0});
  EXPECT_NEAR(r.x[0], 2.0, 1e-4);
}

TEST(NelderMead, ValidatesArguments) {
  EXPECT_THROW(nelder_mead([](const std::vector<double>&) { return 0.0; }, {}),
               failmine::DomainError);
  NelderMeadOptions bad;
  bad.max_iterations = 0;
  EXPECT_THROW(
      nelder_mead([](const std::vector<double>&) { return 0.0; }, {1.0}, bad),
      failmine::DomainError);
}

TEST(NelderMead, ReportsIterations) {
  const auto r = nelder_mead(
      [](const std::vector<double>& x) { return x[0] * x[0]; }, {10.0});
  EXPECT_GT(r.iterations, 1);
  EXPECT_LE(r.iterations, 2000);
}

TEST(LogLogisticFit, RecoversParameters) {
  util::Rng rng(2024);
  for (auto [alpha, beta] : {std::pair{2.0, 3.0}, std::pair{500.0, 1.5},
                             std::pair{0.1, 6.0}}) {
    const auto sample = LogLogistic(alpha, beta).sample_many(rng, 20000);
    const LogLogistic fit = fit_loglogistic(sample);
    EXPECT_NEAR(fit.alpha(), alpha, 0.06 * alpha) << alpha << "," << beta;
    EXPECT_NEAR(fit.beta(), beta, 0.06 * beta) << alpha << "," << beta;
  }
}

TEST(LogLogisticFit, BeatsPerturbedParameters) {
  util::Rng rng(7);
  const auto sample = LogLogistic(10.0, 2.0).sample_many(rng, 5000);
  const LogLogistic fit = fit_loglogistic(sample);
  const double best = fit.log_likelihood(sample);
  EXPECT_GE(best,
            LogLogistic(fit.alpha() * 1.15, fit.beta()).log_likelihood(sample));
  EXPECT_GE(best,
            LogLogistic(fit.alpha(), fit.beta() * 1.15).log_likelihood(sample));
}

TEST(LogLogisticFit, RejectsBadSamples) {
  EXPECT_THROW(fit_loglogistic(std::vector<double>{1.0}), failmine::DomainError);
  EXPECT_THROW(fit_loglogistic(std::vector<double>{1.0, -2.0}),
               failmine::DomainError);
  EXPECT_THROW(fit_loglogistic(std::vector<double>{3.0, 3.0}),
               failmine::DomainError);
}

TEST(LogLogistic, InfiniteMomentsForSmallBeta) {
  EXPECT_TRUE(std::isinf(LogLogistic(1.0, 0.9).mean()));
  EXPECT_TRUE(std::isinf(LogLogistic(1.0, 1.8).variance()));
}

TEST(LogLogistic, MedianIsAlpha) {
  const LogLogistic d(7.5, 2.2);
  EXPECT_NEAR(d.quantile(0.5), 7.5, 1e-9);
}

}  // namespace
}  // namespace failmine::distfit
