// Unit tests for stats/special: incomplete gamma, digamma, normal
// CDF/quantile against reference values.

#include "stats/special.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace failmine::stats {
namespace {

TEST(Special, GammaPBoundaries) {
  EXPECT_DOUBLE_EQ(gamma_p(2.0, 0.0), 0.0);
  EXPECT_NEAR(gamma_p(1.0, 1e9), 1.0, 1e-12);
  EXPECT_THROW(gamma_p(0.0, 1.0), failmine::DomainError);
  EXPECT_THROW(gamma_p(1.0, -1.0), failmine::DomainError);
}

TEST(Special, GammaPMatchesExponentialCdf) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10) << "x=" << x;
  }
}

TEST(Special, GammaPMatchesErlang2Cdf) {
  // P(2, x) = 1 - e^{-x}(1 + x).
  for (double x : {0.2, 1.0, 3.0, 7.0}) {
    EXPECT_NEAR(gamma_p(2.0, x), 1.0 - std::exp(-x) * (1.0 + x), 1e-10);
  }
}

TEST(Special, GammaQIsComplement) {
  for (double a : {0.5, 1.0, 3.3, 10.0}) {
    for (double x : {0.1, 1.0, 4.0, 20.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-10);
    }
  }
}

TEST(Special, DigammaKnownValues) {
  constexpr double kEulerMascheroni = 0.5772156649015329;
  EXPECT_NEAR(digamma(1.0), -kEulerMascheroni, 1e-9);
  EXPECT_NEAR(digamma(2.0), 1.0 - kEulerMascheroni, 1e-9);
  EXPECT_NEAR(digamma(0.5), -kEulerMascheroni - 2.0 * std::log(2.0), 1e-9);
  EXPECT_THROW(digamma(0.0), failmine::DomainError);
}

TEST(Special, DigammaRecurrence) {
  // psi(x+1) = psi(x) + 1/x.
  for (double x : {0.3, 1.7, 4.2, 11.0}) {
    EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10);
  }
}

TEST(Special, TrigammaKnownValues) {
  EXPECT_NEAR(trigamma(1.0), 1.6449340668482264, 1e-8);  // pi^2/6
  EXPECT_THROW(trigamma(-1.0), failmine::DomainError);
}

TEST(Special, TrigammaRecurrence) {
  for (double x : {0.4, 2.5, 7.0}) {
    EXPECT_NEAR(trigamma(x + 1.0), trigamma(x) - 1.0 / (x * x), 1e-9);
  }
}

TEST(Special, NormalCdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.96), 0.024997895148220435, 1e-8);
}

TEST(Special, NormalQuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.25, 0.5, 0.75, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << "p=" << p;
  }
  EXPECT_THROW(normal_quantile(0.0), failmine::DomainError);
  EXPECT_THROW(normal_quantile(1.0), failmine::DomainError);
}

TEST(Special, NormalQuantileSymmetry) {
  for (double p : {0.01, 0.1, 0.3}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-9);
  }
}

}  // namespace
}  // namespace failmine::stats
