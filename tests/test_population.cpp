// Unit tests for sim/population.

#include "sim/population.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/error.hpp"

namespace failmine::sim {
namespace {

SimConfig small_config() {
  SimConfig c = SimConfig::test_scale();
  c.user_count = 100;
  c.project_count = 20;
  return c;
}

TEST(Population, GeneratesRequestedUserCount) {
  util::Rng rng(1);
  const Population pop(small_config(), rng);
  EXPECT_EQ(pop.user_count(), 100u);
  EXPECT_EQ(pop.project_count(), 20u);
}

TEST(Population, UsersHaveValidFields) {
  util::Rng rng(2);
  const Population pop(small_config(), rng);
  for (const auto& u : pop.users()) {
    EXPECT_LT(u.project_id, 20u);
    EXPECT_GT(u.failure_multiplier, 0.0);
    EXPECT_GT(u.activity_weight, 0.0);
    EXPECT_GE(u.scale_preference, 0.0);
    EXPECT_LE(u.scale_preference, 1.0);
  }
}

TEST(Population, ActivityWeightedFailureMultiplierIsNormalized) {
  util::Rng rng(3);
  const Population pop(small_config(), rng);
  double w = 0.0, wm = 0.0;
  for (const auto& u : pop.users()) {
    w += u.activity_weight;
    wm += u.activity_weight * u.failure_multiplier;
  }
  EXPECT_NEAR(wm / w, 1.0, 1e-9);
}

TEST(Population, SamplingIsHeavyTailed) {
  util::Rng rng(4);
  const Population pop(small_config(), rng);
  std::map<std::uint32_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[pop.sample_user(rng)];
  // Zipf(1.05) over 100 users: the busiest user should dwarf the median.
  int max_count = 0;
  for (const auto& [id, n] : counts) max_count = std::max(max_count, n);
  EXPECT_GT(max_count, 5000);
}

TEST(Population, SampledUsersAreValidIds) {
  util::Rng rng(5);
  const Population pop(small_config(), rng);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(pop.sample_user(rng), 100u);
}

TEST(Population, UserLookupValidatesId) {
  util::Rng rng(6);
  const Population pop(small_config(), rng);
  EXPECT_NO_THROW(pop.user(99));
  EXPECT_THROW(pop.user(100), failmine::DomainError);
}

TEST(Population, DeterministicForSameSeed) {
  util::Rng a(7), b(7);
  const Population pa(small_config(), a);
  const Population pb(small_config(), b);
  for (std::size_t i = 0; i < pa.user_count(); ++i) {
    EXPECT_EQ(pa.users()[i].project_id, pb.users()[i].project_id);
    EXPECT_DOUBLE_EQ(pa.users()[i].failure_multiplier,
                     pb.users()[i].failure_multiplier);
  }
}

TEST(Population, RejectsInvalidConfig) {
  SimConfig c = small_config();
  c.user_count = 0;
  util::Rng rng(8);
  EXPECT_THROW(Population(c, rng), failmine::DomainError);
  c = small_config();
  c.project_count = c.user_count + 1;
  EXPECT_THROW(Population(c, rng), failmine::DomainError);
}

}  // namespace
}  // namespace failmine::sim
