// Tests for the O(1)-memory streaming CSV readers.

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "joblog/job.hpp"
#include "raslog/event.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace failmine {
namespace {

const topology::MachineConfig kMira = topology::MachineConfig::mira();

class StreamingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string((std::filesystem::temp_directory_path() /
                            ("failmine_stream_" + std::to_string(::getpid())))
                               .string());
    std::filesystem::create_directories(*dir_);
    sim::SimConfig config = sim::SimConfig::test_scale();
    config.scale = 0.002;
    trace_ = new sim::SimResult(sim::simulate(config));
    sim::write_dataset(*trace_, *dir_);
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete trace_;
    delete dir_;
    trace_ = nullptr;
    dir_ = nullptr;
  }
  static std::string* dir_;
  static sim::SimResult* trace_;
};

std::string* StreamingTest::dir_ = nullptr;
sim::SimResult* StreamingTest::trace_ = nullptr;

TEST_F(StreamingTest, RasStreamVisitsEveryEventInFileOrder) {
  std::size_t count = 0;
  util::UnixSeconds prev = 0;
  raslog::RasLog::for_each_csv(*dir_ + "/ras.csv", kMira,
                               [&](const raslog::RasEvent& e) {
                                 EXPECT_GE(e.timestamp, prev);
                                 prev = e.timestamp;
                                 ++count;
                                 return true;
                               });
  EXPECT_EQ(count, trace_->ras_log.size());
}

TEST_F(StreamingTest, RasStreamStopsEarlyOnFalse) {
  std::size_t count = 0;
  raslog::RasLog::for_each_csv(*dir_ + "/ras.csv", kMira,
                               [&](const raslog::RasEvent&) {
                                 return ++count < 10;
                               });
  EXPECT_EQ(count, 10u);
}

TEST_F(StreamingTest, RasStreamAgreesWithMaterializedRead) {
  std::vector<raslog::RasEvent> streamed;
  raslog::RasLog::for_each_csv(*dir_ + "/ras.csv", kMira,
                               [&](const raslog::RasEvent& e) {
                                 streamed.push_back(e);
                                 return true;
                               });
  const auto loaded = raslog::RasLog::read_csv(*dir_ + "/ras.csv", kMira);
  ASSERT_EQ(streamed.size(), loaded.size());
  for (std::size_t i = 0; i < streamed.size(); i += 13)
    EXPECT_EQ(streamed[i], loaded.events()[i]);
}

TEST_F(StreamingTest, JobStreamVisitsEveryJob) {
  std::size_t count = 0;
  std::uint64_t failures = 0;
  joblog::JobLog::for_each_csv(*dir_ + "/jobs.csv",
                               [&](const joblog::JobRecord& j) {
                                 ++count;
                                 failures += j.failed() ? 1 : 0;
                                 return true;
                               });
  EXPECT_EQ(count, trace_->job_log.size());
  EXPECT_EQ(failures, trace_->job_log.failures().size());
}

TEST_F(StreamingTest, JobStreamStopsEarly) {
  std::size_t count = 0;
  joblog::JobLog::for_each_csv(*dir_ + "/jobs.csv",
                               [&](const joblog::JobRecord&) {
                                 return ++count < 5;
                               });
  EXPECT_EQ(count, 5u);
}

TEST(Streaming, MissingFileThrows) {
  EXPECT_THROW(raslog::RasLog::for_each_csv(
                   "/nonexistent/ras.csv", kMira,
                   [](const raslog::RasEvent&) { return true; }),
               IoError);
  EXPECT_THROW(joblog::JobLog::for_each_csv(
                   "/nonexistent/jobs.csv",
                   [](const joblog::JobRecord&) { return true; }),
               IoError);
}

}  // namespace
}  // namespace failmine
